"""Ablation A1 — sample-growth schedule (DESIGN.md §4).

The paper doubles the sample each iteration. This ablation sweeps the
geometric growth factor (1.5 / 2 / 4) and the KDD'19-style linear batch
schedule on the entropy top-k query, measuring the cost trade-off: a
smaller factor stops closer to the minimal sufficient sample but pays for
more iterations; linear batching degenerates to O(N/M0) iterations.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.core.schedule import SampleSchedule, initial_sample_size
from repro.core.topk import swope_top_k_entropy
from repro.data.sampling import PrefixSampler


def _schedule(store, mode, factor):
    m0 = initial_sample_size(
        store.num_rows, store.num_attributes, 1.0 / store.num_rows,
        store.max_support_size(),
    )
    return SampleSchedule.for_query(
        store.num_rows, store.num_attributes, 1.0 / store.num_rows,
        store.max_support_size(),
        growth_factor=factor, mode=mode, initial_size=m0,
    )


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize(
    "mode,factor",
    [("geometric", 1.5), ("geometric", 2.0), ("geometric", 4.0), ("linear", 2.0)],
    ids=["geo1.5", "geo2.0-paper", "geo4.0", "linear"],
)
def test_ablation_schedule(benchmark, dataset_key, mode, factor):
    store = cfg.dataset(dataset_key).store
    schedule = _schedule(store, mode, factor)

    def run():
        sampler = PrefixSampler(store, sequential=True)
        return swope_top_k_entropy(
            store, 4, epsilon=0.1, schedule=schedule, sampler=sampler
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["iterations"] = result.stats.iterations
    benchmark.extra_info["final_sample"] = result.stats.final_sample_size
    assert len(result.attributes) == 4
