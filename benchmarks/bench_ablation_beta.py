"""Ablation A5 — tight vs loose sensitivity β inside the λ bound.

The paper's algorithms use the tight closed-form swap sensitivity
``β = log2(M/(M−1)) + log2(M−1)/M``; its *analysis* upper-bounds it by
``2 log2(M)/M`` (a factor ≈ 2 looser for large M). Since the stopping
sample size scales with β², the loose form roughly doubles λ and pushes
stopping one to two doublings later. This bench runs the same top-k query
with both forms and quantifies the difference.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.core.engine import (
    EntropyScoreProvider,
    adaptive_top_k,
    default_failure_probability,
)
from repro.core.schedule import SampleSchedule
from repro.data.sampling import PrefixSampler


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("beta_mode", ["tight", "loose"])
def test_ablation_beta_sensitivity(benchmark, dataset_key, beta_mode):
    store = cfg.dataset(dataset_key).store
    names = list(store.attributes)
    failure = default_failure_probability(store.num_rows)
    schedule = SampleSchedule.for_query(
        store.num_rows, len(names), failure, store.max_support_size()
    )

    def run():
        sampler = PrefixSampler(store, sequential=True)
        provider = EntropyScoreProvider(
            sampler,
            schedule.per_round_failure(failure, len(names)),
            beta_mode=beta_mode,
        )
        return adaptive_top_k(provider, sampler, names, 4, 0.1, schedule)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["final_sample"] = result.stats.final_sample_size
    assert len(result.attributes) == 4
