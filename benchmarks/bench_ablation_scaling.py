"""Ablation A3 — speedup versus dataset size (DESIGN.md §3 and §4).

The central scaling argument of the reproduction: the adaptive algorithms'
sample complexity is (nearly) independent of N while the exact scan costs
Θ(hN), so SWOPE's advantage *grows* with N. The paper's 10–117× factors at
3.7M–33.7M rows correspond to the top end of this curve; our scaled
datasets sit lower on it. This bench measures the curve directly: the
cells-scanned ratio exact/SWOPE at increasing N on the cdc analogue.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.core.topk import swope_top_k_entropy
from repro.data.sampling import PrefixSampler
from repro.synth.datasets import load_dataset

SCALES = (0.05, 0.1, 0.2, 0.4)

#: Populated across parametrised runs so the final case can assert the
#: monotone-growth claim end-to-end.
_speedups: dict[float, float] = {}


@pytest.mark.parametrize("scale", SCALES)
def test_ablation_scaling_speedup_grows_with_n(benchmark, scale):
    dataset = load_dataset("cdc", scale=scale)
    store = dataset.store

    def run():
        sampler = PrefixSampler(store, sequential=True)
        return swope_top_k_entropy(store, 4, epsilon=0.1, sampler=sampler)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    exact_cells = store.num_attributes * store.num_rows
    speedup = exact_cells / max(1, result.stats.cells_scanned)
    _speedups[scale] = speedup
    benchmark.extra_info["rows"] = store.num_rows
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["speedup_vs_exact"] = round(speedup, 1)
    if scale == SCALES[-1] and len(_speedups) == len(SCALES):
        ordered = [_speedups[s] for s in SCALES]
        # The speedup at the largest N must dominate the smallest N's —
        # the shape claim behind extrapolating to the paper's 31M rows.
        assert ordered[-1] > ordered[0]
