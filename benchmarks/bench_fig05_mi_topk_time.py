"""Fig5 — varying k: top-k on empirical mutual information, query time.

Regenerates the series of the paper's Fig5 (varying k: top-k on empirical mutual information, query time).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_mi_top_k


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("algorithm", cfg.ALGORITHMS)
@pytest.mark.parametrize("x", cfg.TOPK_GRID)
def test_fig05_mi_topk_time(benchmark, dataset_key, algorithm, x):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    target = cfg.targets(dataset_key)[0]
    truth.mutual_informations(store, target)  # warm ground truth outside the timer
    outcome = benchmark.pedantic(
        lambda: run_mi_top_k(
            store, algorithm, target, int(x), epsilon=0.5, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    assert outcome.cells_scanned > 0
