"""Fig7 — varying eta: filtering on empirical mutual information, query time.

Regenerates the series of the paper's Fig7 (varying eta: filtering on empirical mutual information, query time).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_mi_filter


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("algorithm", cfg.ALGORITHMS)
@pytest.mark.parametrize("x", cfg.MI_ETA_GRID)
def test_fig07_mi_filter_time(benchmark, dataset_key, algorithm, x):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    target = cfg.targets(dataset_key)[0]
    truth.mutual_informations(store, target)  # warm ground truth outside the timer
    outcome = benchmark.pedantic(
        lambda: run_mi_filter(
            store, algorithm, target, float(x), epsilon=0.5, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    assert outcome.cells_scanned > 0
