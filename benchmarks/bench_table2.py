"""Table 2 — dataset summary (synthetic analogues vs. the paper).

Benchmarks dataset materialisation and verifies each analogue's shape
against the registry (column counts match the paper exactly; row counts
are the documented scaled-down analogues).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.synth.datasets import DATASETS, dataset_summary, generate

PAPER_SHAPES = {
    "cdc": (3_753_802, 100),
    "hus": (14_768_919, 107),
    "pus": (31_290_943, 179),
    "enem": (33_714_152, 117),
}


@pytest.mark.parametrize("key", sorted(DATASETS))
def test_table2_generation(benchmark, key):
    plan = DATASETS[key]
    # Generate at a small fixed scale so this stays a generation benchmark
    # rather than a memory soak; shape checks below cover the metadata.
    dataset = benchmark.pedantic(
        lambda: generate(plan, scale=0.02), rounds=1, iterations=1
    )
    paper_rows, paper_cols = PAPER_SHAPES[key]
    assert plan.paper_rows == paper_rows
    assert plan.paper_columns == paper_cols
    assert dataset.store.num_attributes == paper_cols
    benchmark.extra_info["rows"] = dataset.store.num_rows
    benchmark.extra_info["columns"] = dataset.store.num_attributes
    benchmark.extra_info["paper_rows"] = paper_rows
    benchmark.extra_info["memory_mb"] = round(
        dataset.store.memory_bytes() / 1e6, 1
    )


def test_table2_summary_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: dataset_summary(scale=cfg.SCALE), rounds=1, iterations=1
    )
    assert [r["dataset"] for r in rows] == ["cdc", "enem", "hus", "pus"]
    for row in rows:
        benchmark.extra_info[str(row["dataset"])] = (
            f"{row['rows']}x{row['columns']}"
            f" (paper {row['paper_rows']}x{row['paper_columns']})"
        )
