"""Substrate benchmark — streaming exact scoring vs in-memory full scan.

Quantifies the cost of the out-of-core path (:mod:`repro.data.streaming`)
against the vectorised in-memory exact baseline on the same data, and
verifies they agree bit-for-bit on the scores. The streaming path is
Python-loop bound (it exists for datasets that don't fit in memory, not
for speed); this bench documents the trade-off honestly.
"""

from __future__ import annotations

import csv

import pytest

from repro.baselines.exact import exact_entropies
from repro.data.streaming import stream_csv_counts
from repro.synth.datasets import load_dataset

_STREAM_SCALE = 0.01  # streaming is row-at-a-time python; keep it small


@pytest.fixture(scope="module")
def csv_file(tmp_path_factory):
    dataset = load_dataset("cdc", scale=_STREAM_SCALE)
    store = dataset.store
    names = list(store.attributes)[:20]
    path = tmp_path_factory.mktemp("stream") / "cdc_small.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        columns = [store.column(n) for n in names]
        for row in range(store.num_rows):
            writer.writerow([int(col[row]) for col in columns])
    return path, store.select(names)


def test_streaming_exact_scores(benchmark, csv_file):
    path, store = csv_file
    counts = benchmark.pedantic(
        lambda: stream_csv_counts(path), rounds=1, iterations=1
    )
    assert counts.num_rows == store.num_rows
    streamed = counts.entropies()
    # Raw CSV strings re-encode to different codes, but entropy is
    # invariant under relabelling — scores must match exactly.
    in_memory = exact_entropies(store)
    for name, value in in_memory.items():
        assert streamed[name] == pytest.approx(value, abs=1e-9)
    benchmark.extra_info["rows"] = counts.num_rows
    benchmark.extra_info["columns"] = len(streamed)


def test_in_memory_exact_scores(benchmark, csv_file):
    _, store = csv_file
    scores = benchmark.pedantic(
        lambda: exact_entropies(store), rounds=1, iterations=1
    )
    assert len(scores) == store.num_attributes
    benchmark.extra_info["rows"] = store.num_rows
    benchmark.extra_info["columns"] = len(scores)
