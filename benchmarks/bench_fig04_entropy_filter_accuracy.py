"""Fig4 — varying eta: filtering on empirical entropy, accuracy.

Regenerates the series of the paper's Fig4 (varying eta: filtering on empirical entropy, accuracy).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy, precision/recall).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_entropy_filter


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("algorithm", cfg.ALGORITHMS)
@pytest.mark.parametrize("x", cfg.ENTROPY_ETA_GRID)
def test_fig04_entropy_filter_accuracy(benchmark, dataset_key, algorithm, x):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    truth.entropies(store)  # warm the ground-truth cache outside the timer
    outcome = benchmark.pedantic(
        lambda: run_entropy_filter(
            store, algorithm, float(x), epsilon=0.05, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    if algorithm == "exact":
        assert outcome.accuracy == 1.0
    else:
        # The paper reports 100% accuracy at the default epsilon; allow a
        # sliver of slack for the approximate answer's legal near-ties.
        assert outcome.accuracy >= 0.5
