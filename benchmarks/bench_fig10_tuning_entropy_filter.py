"""Fig10 — tuning epsilon: entropy filtering at eta = 2.

Regenerates the series of the paper's Fig10 (tuning epsilon: entropy filtering at eta = 2).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_entropy_filter


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("epsilon", cfg.EPSILON_GRID)
def test_fig10_tuning_entropy_filter(benchmark, dataset_key, epsilon):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    truth.entropies(store)  # warm the ground-truth cache outside the timer
    outcome = benchmark.pedantic(
        lambda: run_entropy_filter(
            store, "swope", 2.0, epsilon=epsilon, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    assert outcome.cells_scanned > 0
