"""Fig11 — tuning epsilon: MI top-k at k = 4.

Regenerates the series of the paper's Fig11 (tuning epsilon: MI top-k at k = 4).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_mi_top_k


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("epsilon", cfg.EPSILON_GRID)
def test_fig11_tuning_mi_topk(benchmark, dataset_key, epsilon):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    target = cfg.targets(dataset_key)[0]
    truth.mutual_informations(store, target)  # warm ground truth outside the timer
    outcome = benchmark.pedantic(
        lambda: run_mi_top_k(
            store, "swope", target, 4, epsilon=epsilon, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    assert outcome.cells_scanned > 0
