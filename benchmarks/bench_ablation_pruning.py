"""Ablation A4 — candidate pruning on/off (DESIGN.md §4).

Algorithm 1 lines 15–17 prune candidates whose upper bound falls below the
k-th largest lower bound. Pruning never changes the answer (pruned
attributes provably cannot be top-k) but avoids re-scanning doomed
candidates in later iterations. This bench quantifies the saving.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.core.topk import swope_top_k_entropy
from repro.data.sampling import PrefixSampler


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("prune", [True, False], ids=["prune-on", "prune-off"])
def test_ablation_pruning(benchmark, dataset_key, prune):
    store = cfg.dataset(dataset_key).store

    def run():
        sampler = PrefixSampler(store, sequential=True)
        return swope_top_k_entropy(
            store, 4, epsilon=0.1, sampler=sampler, prune=prune
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["candidates_pruned"] = result.stats.candidates_pruned
    assert len(result.attributes) == 4


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
def test_ablation_pruning_same_answer(benchmark, dataset_key):
    """Pruning is a pure optimisation: both variants return the same set."""
    store = cfg.dataset(dataset_key).store

    def run():
        with_prune = swope_top_k_entropy(
            store, 4, epsilon=0.1,
            sampler=PrefixSampler(store, sequential=True), prune=True,
        )
        without = swope_top_k_entropy(
            store, 4, epsilon=0.1,
            sampler=PrefixSampler(store, sequential=True), prune=False,
        )
        return with_prune, without

    with_prune, without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert with_prune.attributes == without.attributes
    assert with_prune.stats.cells_scanned <= without.stats.cells_scanned
