"""Plan-cache benchmark: cold vs warm vs semantic reuse.

Runs the mixed four-query workload of ``bench_plan.py`` three ways on
each counting backend, against a persistent on-disk cache directory:

* ``cold`` — empty cache directory: every query executes live and the
  partition (counter blocks + retired answers) is written at the end;
* ``warm`` — a fresh executor over the populated directory: every query
  is answered from the cache's retired answers with zero cells scanned;
* ``semantic`` — *dominated* requests never stored verbatim (a smaller
  ``k′ < k`` top-k and a weaker ``η′ > η`` filter) served by replaying
  the stored interval histories, again at zero cells scanned.

Every mode's answers are cross-checked byte-for-byte (attributes,
estimates, bounds, guarantee — everything but the work accounting)
against a cache-free fresh run before timings are trusted: the cache's
contract is bit-identity, not approximation. The run also asserts the
ISSUE's floor — the warm rerun must scan at least 5x fewer cells than
cold (it scans zero), and the semantic path exactly zero.

Output is a pytest-benchmark-shaped JSON dump (``BENCH_cache.json`` at
the repo root by default) that ``scripts/bench_report.py`` accepts:

    python benchmarks/bench_cache.py
    python scripts/bench_report.py BENCH_cache.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.data.column_store import ColumnStore
from repro.durability.atomic import atomic_write_text
from repro.durability.checkpoint import result_to_payload

NUM_ATTRIBUTES = 16
NUM_ROWS = 200_000
SEED = 11
SAMPLER_SEED = 7
REPS = 3
TOP_K = 3
ENTROPY_ETA = 3.0
MI_ETA = 0.3
#: Exclusion-style filter pair: η sits above every attribute's entropy,
#: so the stored run's history decides any weaker η′ > η at the same
#: iterations — the dominated serve that never touches data.
EXCLUDE_ETA = 5.0
EXCLUDE_ETA_DERIVED = 5.5
BACKENDS = ["numpy", "threads"]


def build_store() -> ColumnStore:
    """Mixed-support store with a target and graded MI candidates."""
    rng = np.random.default_rng(SEED)
    n = NUM_ROWS
    target = rng.integers(0, 8, n)
    columns: dict[str, np.ndarray] = {"target": target}
    for i in range(NUM_ATTRIBUTES):
        if i % 4 == 0:  # correlated with the target, graded strength
            keep = rng.random(n) < 0.85 - 0.08 * (i // 4)
            columns[f"a{i:02d}"] = np.where(keep, target, rng.integers(0, 8, n))
        else:  # independent, varied support
            columns[f"a{i:02d}"] = rng.integers(0, 4 + 6 * (i % 4), n)
    return ColumnStore(columns)


def mixed_specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=TOP_K, prune=False,
                  name="topk_h"),
        QuerySpec(kind="filter", score="entropy", threshold=ENTROPY_ETA,
                  name="filter_h"),
        QuerySpec(kind="top_k", score="mutual_information", k=TOP_K,
                  target="target", prune=False, name="topk_mi"),
        QuerySpec(kind="filter", score="mutual_information", threshold=MI_ETA,
                  target="target", name="filter_mi"),
    ]


def semantic_specs() -> list[list[QuerySpec]]:
    """Dominated single-query plans, one executor each (prefix floor 0).

    Each plan's query starts at the same floor its dominating entry was
    stored at, so the family keys line up and the replay can serve.
    """
    return [
        [QuerySpec(kind="top_k", score="entropy", k=TOP_K - 1, prune=False,
                   name="topk_h_derived")],
        [QuerySpec(kind="filter", score="entropy",
                   threshold=EXCLUDE_ETA_DERIVED, name="filter_h_derived")],
    ]


def answers(outcome) -> list[dict]:
    """Result payloads with work accounting stripped (the identity gate)."""
    payloads = []
    for name in outcome:
        payload = result_to_payload(outcome[name])
        payload.pop("stats")
        payloads.append(payload)
    return payloads


def run_plans(
    store: ColumnStore,
    backend: str,
    plans: list[list[QuerySpec]],
    cache_dir: Path | None,
) -> dict:
    """Execute each spec list on its own executor; sum the cells scanned."""
    all_answers: list[dict] = []
    cells = 0
    for specs in plans:
        kwargs = {} if cache_dir is None else {"cache_dir": cache_dir}
        executor = PlanExecutor(
            store, seed=SAMPLER_SEED, backend=backend, **kwargs
        )
        outcome = executor.execute(plan_queries(store, specs))
        cells += outcome.stats.cells_scanned
        all_answers.extend(answers(outcome))
    return {"answers": all_answers, "cells": cells}


def measure(run, reps: int) -> tuple[dict, list[float]]:
    times = []
    outcome: dict = {}
    for _ in range(reps):
        start = time.perf_counter()
        outcome = run()
        times.append(time.perf_counter() - start)
    return outcome, times


def stats_block(times: list[float]) -> dict:
    return {
        "mean": float(np.mean(times)),
        "min": float(np.min(times)),
        "max": float(np.max(times)),
        "stddev": float(np.std(times)),
        "rounds": len(times),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_cache.json"),
        help="where to write the pytest-benchmark-shaped JSON dump",
    )
    args = parser.parse_args(argv)

    store = build_store()
    cold_plans = [
        mixed_specs(),
        [QuerySpec(kind="filter", score="entropy", threshold=EXCLUDE_ETA,
                   name="filter_h_excl")],
    ]
    workload = {
        "num_attributes": NUM_ATTRIBUTES + 1,
        "num_rows": NUM_ROWS,
        "queries": "topk_h,filter_h,topk_mi,filter_mi,+2 dominated",
    }
    print(f"workload: h={NUM_ATTRIBUTES + 1} N={NUM_ROWS:,}, 4 mixed queries"
          " + 2 dominated rewrites")

    benchmarks = []
    for backend in BACKENDS:
        # References: the same workloads with no cache in play.
        fresh_main = run_plans(store, backend, [mixed_specs()], None)
        fresh_semantic = run_plans(store, backend, semantic_specs(), None)

        scratch = Path(tempfile.mkdtemp(prefix="bench-cache-"))
        try:
            def run_cold() -> dict:
                if scratch.exists():
                    shutil.rmtree(scratch)
                return run_plans(store, backend, cold_plans, scratch)

            cold, cold_times = measure(run_cold, REPS)
            warm, warm_times = measure(
                lambda: run_plans(store, backend, [mixed_specs()], scratch),
                REPS,
            )
            semantic, semantic_times = measure(
                lambda: run_plans(store, backend, semantic_specs(), scratch),
                REPS,
            )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

        # The bit-identity gate: every cached path equals a fresh run.
        assert warm["answers"] == fresh_main["answers"], (
            f"{backend}: warm answers diverged from a cache-free run"
        )
        assert semantic["answers"] == fresh_semantic["answers"], (
            f"{backend}: semantic answers diverged from a cache-free run"
        )
        # The work floor: warm >= 5x fewer cells (it scans none at all),
        # semantic exactly zero.
        assert warm["cells"] * 5 <= cold["cells"], (
            f"{backend}: warm rerun scanned {warm['cells']:,} cells,"
            f" less than 5x under cold's {cold['cells']:,}"
        )
        assert semantic["cells"] == 0, (
            f"{backend}: semantic serve scanned {semantic['cells']:,} cells"
        )

        speedup = float(np.mean(cold_times) / np.mean(warm_times))
        for label, times, outcome in (
            ("cold", cold_times, cold),
            ("warm", warm_times, warm),
            ("semantic", semantic_times, semantic),
        ):
            benchmarks.append(
                {
                    "name": f"test_cache[{backend}-{label}]",
                    "stats": stats_block(times),
                    "extra_info": {
                        **workload,
                        "backend": backend,
                        "cells_scanned": outcome["cells"],
                        "cells_ratio_vs_cold": round(
                            cold["cells"] / max(outcome["cells"], 1), 3
                        ),
                        "speedup_vs_cold": round(
                            float(np.mean(cold_times) / np.mean(times)), 3
                        ),
                        "answers_bit_identical": True,
                    },
                }
            )
        print(
            f"  {backend}: cold {np.mean(cold_times) * 1000:.1f}ms"
            f" / {cold['cells']:,} cells,"
            f" warm {np.mean(warm_times) * 1000:.1f}ms"
            f" / {warm['cells']:,} cells ({speedup:.0f}x),"
            f" semantic {np.mean(semantic_times) * 1000:.1f}ms"
            f" / {semantic['cells']:,} cells"
        )

    payload = {
        "machine_info": {"note": "single-core reference box"},
        "benchmarks": benchmarks,
    }
    atomic_write_text(Path(args.output), json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
