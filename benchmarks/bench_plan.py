"""Plan-executor benchmark: one shared scan vs back-to-back queries.

Runs the same heterogeneous four-query workload — entropy top-k, entropy
filter, MI top-k, MI filter — two ways on each counting backend:

* ``sequential`` — the pre-planner usage: four independent ``swope_*``
  calls, each building its own sampler (same seed), each paying for its
  own sample from scratch;
* ``shared`` — the four queries planned together and executed by
  :class:`~repro.core.plan.PlanExecutor` over one retained sampler:
  later queries join the scan at the ratchet frontier and reuse every
  counter the earlier queries grew.

Both the machine-independent cost (attribute cells scanned) and
wall-clock time are reported; the shared scan must read strictly fewer
cells *and* run faster — that is the planner's whole point. Each run
also cross-checks the two paths' answers (same top-k sets, same filter
survivor sets) before timing is trusted.

Output is a pytest-benchmark-shaped JSON dump (``BENCH_plan.json`` at
the repo root by default) that ``scripts/bench_report.py`` accepts:

    python benchmarks/bench_plan.py
    python scripts/bench_report.py BENCH_plan.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.durability.atomic import atomic_write_text
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore

NUM_ATTRIBUTES = 24
NUM_ROWS = 400_000
SEED = 11
SAMPLER_SEED = 7
REPS = 5
TOP_K = 3
ENTROPY_ETA = 3.0
MI_ETA = 0.3
BACKENDS = ["numpy", "threads"]


def build_store() -> tuple[ColumnStore, str]:
    """Mixed-support store with a target and graded MI candidates."""
    rng = np.random.default_rng(SEED)
    n = NUM_ROWS
    target = rng.integers(0, 8, n)
    columns: dict[str, np.ndarray] = {"target": target}
    for i in range(NUM_ATTRIBUTES):
        if i % 4 == 0:  # correlated with the target, graded strength
            keep = rng.random(n) < 0.85 - 0.08 * (i // 4)
            columns[f"a{i:02d}"] = np.where(keep, target, rng.integers(0, 8, n))
        else:  # independent, varied support
            columns[f"a{i:02d}"] = rng.integers(0, 4 + 6 * (i % 4), n)
    return ColumnStore(columns), "target"


def mixed_specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=TOP_K, prune=False,
                  name="topk_h"),
        QuerySpec(kind="filter", score="entropy", threshold=ENTROPY_ETA,
                  name="filter_h"),
        QuerySpec(kind="top_k", score="mutual_information", k=TOP_K,
                  target="target", prune=False, name="topk_mi"),
        QuerySpec(kind="filter", score="mutual_information", threshold=MI_ETA,
                  target="target", name="filter_mi"),
    ]


def run_sequential(store: ColumnStore, target: str, backend: str) -> dict:
    """Four independent queries, each on a fresh sampler (same seed)."""
    common = {"seed": SAMPLER_SEED, "backend": backend}
    results = {
        "topk_h": swope_top_k_entropy(store, TOP_K, prune=False, **common),
        "filter_h": swope_filter_entropy(store, ENTROPY_ETA, **common),
        "topk_mi": swope_top_k_mutual_information(
            store, target, TOP_K, prune=False, **common
        ),
        "filter_mi": swope_filter_mutual_information(
            store, target, MI_ETA, **common
        ),
    }
    cells = sum(r.stats.cells_scanned for r in results.values())
    return {"results": results, "cells": cells}


def run_shared(store: ColumnStore, backend: str) -> dict:
    """The same four queries through the planner's shared scan."""
    executor = PlanExecutor(store, seed=SAMPLER_SEED, backend=backend)
    plan = plan_queries(store, mixed_specs())
    outcome = executor.execute(plan)
    return {
        "results": {name: outcome[name] for name in plan.names},
        "cells": outcome.stats.cells_scanned,
    }


def check_answers_agree(shared: dict, sequential: dict) -> None:
    """Both paths must select the same attributes (per-query)."""
    for name, seq_result in sequential["results"].items():
        shared_result = shared["results"][name]
        if name.startswith("topk"):
            assert shared_result.attributes == seq_result.attributes, (
                f"{name}: shared top-k {shared_result.attributes} !="
                f" sequential {seq_result.attributes}"
            )
        else:
            assert set(shared_result.attributes) == set(seq_result.attributes), (
                f"{name}: shared filter set diverged from sequential"
            )


def measure(run, reps: int) -> tuple[dict, list[float]]:
    times = []
    outcome: dict = {}
    for _ in range(reps):
        start = time.perf_counter()
        outcome = run()
        times.append(time.perf_counter() - start)
    return outcome, times


def stats_block(times: list[float]) -> dict:
    return {
        "mean": float(np.mean(times)),
        "min": float(np.min(times)),
        "max": float(np.max(times)),
        "stddev": float(np.std(times)),
        "rounds": len(times),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_plan.json"),
        help="where to write the pytest-benchmark-shaped JSON dump",
    )
    args = parser.parse_args(argv)

    store, target = build_store()
    workload = {
        "num_attributes": NUM_ATTRIBUTES + 1,
        "num_rows": NUM_ROWS,
        "queries": "topk_h,filter_h,topk_mi,filter_mi",
    }
    print(f"workload: h={NUM_ATTRIBUTES + 1} N={NUM_ROWS:,}, 4 mixed queries")

    benchmarks = []
    for backend in BACKENDS:
        sequential, seq_times = measure(
            lambda: run_sequential(store, target, backend), REPS
        )
        shared, shared_times = measure(lambda: run_shared(store, backend), REPS)
        check_answers_agree(shared, sequential)
        assert shared["cells"] < sequential["cells"], (
            f"{backend}: shared scan read {shared['cells']:,} cells,"
            f" not fewer than sequential's {sequential['cells']:,}"
        )
        speedup = float(np.mean(seq_times) / np.mean(shared_times))
        cells_ratio = sequential["cells"] / shared["cells"]
        for label, times, cells in (
            ("sequential", seq_times, sequential["cells"]),
            ("shared", shared_times, shared["cells"]),
        ):
            benchmarks.append(
                {
                    "name": f"test_plan_mixed[{backend}-{label}]",
                    "stats": stats_block(times),
                    "extra_info": {
                        **workload,
                        "backend": backend,
                        "cells_scanned": cells,
                        "speedup_vs_sequential": round(
                            speedup if label == "shared" else 1.0, 3
                        ),
                        "cells_ratio_vs_sequential": round(
                            cells_ratio if label == "shared" else 1.0, 3
                        ),
                    },
                }
            )
        print(
            f"  {backend}: sequential {np.mean(seq_times) * 1000:.1f}ms"
            f" / {sequential['cells']:,} cells,"
            f" shared {np.mean(shared_times) * 1000:.1f}ms"
            f" / {shared['cells']:,} cells"
            f" -> {speedup:.2f}x faster, {cells_ratio:.2f}x fewer cells"
        )

    payload = {
        "machine_info": {"note": "single-core reference box"},
        "benchmarks": benchmarks,
    }
    atomic_write_text(Path(args.output), json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
