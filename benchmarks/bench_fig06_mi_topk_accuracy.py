"""Fig6 — varying k: top-k on empirical mutual information, accuracy.

Regenerates the series of the paper's Fig6 (varying k: top-k on empirical mutual information, accuracy).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_mi_top_k


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("algorithm", cfg.ALGORITHMS)
@pytest.mark.parametrize("x", cfg.TOPK_GRID)
def test_fig06_mi_topk_accuracy(benchmark, dataset_key, algorithm, x):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    target = cfg.targets(dataset_key)[0]
    truth.mutual_informations(store, target)  # warm ground truth outside the timer
    outcome = benchmark.pedantic(
        lambda: run_mi_top_k(
            store, algorithm, target, int(x), epsilon=0.5, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    if algorithm == "exact":
        assert outcome.accuracy == 1.0
    else:
        # The paper reports 100% accuracy at the default epsilon; allow a
        # sliver of slack for the approximate answer's legal near-ties.
        assert outcome.accuracy >= 0.5
