"""Application benchmark — feature selection cost, SWOPE vs exact engine.

Quantifies the paper's headline motivation end to end: how much does the
approximate MI machinery save inside a real selector? Runs Max-Relevance,
mRMR, and CMIM over a registry dataset with both engines and records the
cells-scanned gap (answers must agree up to planted duplicates).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.applications.feature_selection import (
    cmim_select,
    mrmr_select,
    top_relevance_select,
)

_SELECTORS = {
    "top_relevance": lambda store, label, engine: top_relevance_select(
        store, label, 5, engine=engine, seed=0
    ),
    "mrmr": lambda store, label, engine: mrmr_select(
        store, label, 5, engine=engine, seed=0
    ),
    "cmim": lambda store, label, engine: cmim_select(
        store, label, 5, engine=engine, seed=0
    ),
}


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("engine", ["swope", "exact"])
@pytest.mark.parametrize("selector", sorted(_SELECTORS))
def test_app_feature_selection(benchmark, dataset_key, engine, selector):
    dataset = cfg.dataset(dataset_key)
    label = dataset.mi_targets[0]
    run = _SELECTORS[selector]

    result = benchmark.pedantic(
        lambda: run(dataset.store, label, engine), rounds=1, iterations=1
    )
    assert len(result.features) == 5
    benchmark.extra_info["cells_scanned"] = result.cells_scanned
    benchmark.extra_info["features"] = ",".join(result.features)


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("selector", sorted(_SELECTORS))
def test_app_engines_agree(benchmark, dataset_key, selector):
    """Both engines must pick the same feature set on the planted data."""
    dataset = cfg.dataset(dataset_key)
    label = dataset.mi_targets[0]
    run = _SELECTORS[selector]

    def both():
        return (
            run(dataset.store, label, "swope"),
            run(dataset.store, label, "exact"),
        )

    swope, exact = benchmark.pedantic(both, rounds=1, iterations=1)
    assert set(swope.features) == set(exact.features)
    benchmark.extra_info["saving_x"] = round(
        exact.cells_scanned / max(1, swope.cells_scanned), 2
    )
