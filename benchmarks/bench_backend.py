"""Batched-core benchmark: batched scoring vs the per-attribute path.

Times the adaptive engine's per-iteration scoring sweep — counts,
entropies, and confidence intervals for every live attribute at each
sample size of the paper's doubling schedule — three ways:

* ``scalar`` — the pre-refactor per-attribute path: one
  ``marginal_counts`` / ``entropy_from_counts`` / ``entropy_interval``
  chain per attribute per iteration (λ and bias recomputed every call);
* ``batched-numpy`` — the batched path the engine now uses
  (:meth:`ScoreProvider.intervals`) on the default backend;
* ``batched-threads`` — the same batched path on the thread-pool
  backend (informative only: on a single-core box the pool adds
  overhead and cannot win).

The sampler (whose shuffle is identical before and after the refactor)
is constructed outside the timed region; what is measured is exactly
the code the refactor replaced. Both paths produce bit-identical
intervals — verified here on every run before timing.

Output is a pytest-benchmark-shaped JSON dump (``BENCH_backend.json``
at the repo root by default) that ``scripts/bench_report.py`` accepts:

    python benchmarks/bench_backend.py
    python scripts/bench_report.py BENCH_backend.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.core.bounds import (
    entropy_interval,
    joint_entropy_interval,
    mutual_information_interval,
)
from repro.core.engine import (
    EntropyScoreProvider,
    MutualInformationScoreProvider,
)
from repro.core.estimators import entropy_from_counts, joint_entropy_from_counter
from repro.core.schedule import initial_sample_size
from repro.data.column_store import ColumnStore
from repro.durability.atomic import atomic_write_text
from repro.data.sampling import PrefixSampler

#: Wide workload of the issue's acceptance criterion: h >= 64, N >= 10^6.
NUM_ATTRIBUTES = 64
NUM_ROWS = 1_000_000
SUPPORT_SIZE = 32
SEED = 11
SAMPLER_SEED = 7
FAILURE_PROBABILITY = 0.01
NUM_ITERATIONS = 5
ENTROPY_REPS = 30
MI_REPS = 12


def build_store() -> tuple[ColumnStore, list[str], str]:
    rng = np.random.default_rng(SEED)
    columns = {
        f"a{i}": rng.integers(0, SUPPORT_SIZE, size=NUM_ROWS)
        for i in range(NUM_ATTRIBUTES)
    }
    columns["target"] = rng.integers(0, SUPPORT_SIZE, size=NUM_ROWS)
    store = ColumnStore(columns)
    return store, [f"a{i}" for i in range(NUM_ATTRIBUTES)], "target"


def doubling_schedule(store: ColumnStore) -> list[int]:
    """The engine's own schedule: M0 from the paper's law, then doubling."""
    m = initial_sample_size(
        store.num_rows,
        NUM_ATTRIBUTES,
        FAILURE_PROBABILITY,
        SUPPORT_SIZE,
    )
    schedule = []
    for _ in range(NUM_ITERATIONS):
        schedule.append(min(m, store.num_rows))
        m *= 2
    return schedule


# ----------------------------------------------------------------------
# The three entropy sweeps
# ----------------------------------------------------------------------
def scalar_entropy_sweep(store, names, schedule, p):
    """Pre-refactor per-attribute scoring: one chain per attribute."""
    sampler = PrefixSampler(store, seed=SAMPLER_SEED)
    n = store.num_rows

    def sweep():
        out = {}
        for m in schedule:
            for a in names:
                counts = sampler.marginal_counts(a, m)
                h_hat = entropy_from_counts(counts, m)
                out[a] = entropy_interval(h_hat, store.support_size(a), m, n, p)
        return out

    return sweep


def batched_entropy_sweep(store, names, schedule, p, backend):
    sampler = PrefixSampler(store, seed=SAMPLER_SEED, backend=backend)
    provider = EntropyScoreProvider(sampler, p)

    def sweep():
        out = {}
        for m in schedule:
            out = provider.intervals(names, m)
        return dict(out)

    return sweep


# ----------------------------------------------------------------------
# The three MI sweeps
# ----------------------------------------------------------------------
def scalar_mi_sweep(store, names, target, schedule, p):
    sampler = PrefixSampler(store, seed=SAMPLER_SEED)
    n = store.num_rows
    u_t = store.support_size(target)

    def sweep():
        out = {}
        for m in schedule:
            t_counts = sampler.marginal_counts(target, m)
            t_iv = entropy_interval(
                entropy_from_counts(t_counts, m), u_t, m, n, p
            )
            for a in names:
                counts = sampler.marginal_counts(a, m)
                c_iv = entropy_interval(
                    entropy_from_counts(counts, m), store.support_size(a), m, n, p
                )
                counter = sampler.joint_counts(target, a, m)
                j_hat = joint_entropy_from_counter(counter)
                j_iv = joint_entropy_interval(
                    j_hat, u_t, store.support_size(a), m, n, p
                )
                sample_mi = max(0.0, t_iv.estimate + c_iv.estimate - j_hat)
                out[a] = mutual_information_interval(t_iv, c_iv, j_iv, sample_mi)
        return out

    return sweep


def batched_mi_sweep(store, names, target, schedule, p, backend):
    sampler = PrefixSampler(store, seed=SAMPLER_SEED, backend=backend)
    provider = MutualInformationScoreProvider(sampler, target, p)

    def sweep():
        out = {}
        for m in schedule:
            out = provider.intervals(names, m)
        return dict(out)

    return sweep


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def measure(make_sweep, reps: int) -> tuple[dict, list[float]]:
    """Run ``reps`` fresh sweeps; return the final intervals and times.

    Each rep rebuilds its sampler (outside the timed region — prefix
    counters must start empty for the sweep to do its full work).
    """
    times = []
    result: dict = {}
    for _ in range(reps):
        sweep = make_sweep()
        start = time.perf_counter()
        result = sweep()
        times.append(time.perf_counter() - start)
    return result, times


def stats_block(times: list[float]) -> dict:
    return {
        "mean": float(np.mean(times)),
        "min": float(np.min(times)),
        "max": float(np.max(times)),
        "stddev": float(np.std(times)),
        "rounds": len(times),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_backend.json"),
        help="where to write the pytest-benchmark-shaped JSON dump",
    )
    args = parser.parse_args(argv)

    store, names, target = build_store()
    schedule = doubling_schedule(store)
    p_entropy = FAILURE_PROBABILITY / (2 * NUM_ATTRIBUTES)
    p_mi = FAILURE_PROBABILITY / (6 * NUM_ATTRIBUTES)
    workload = {
        "num_attributes": NUM_ATTRIBUTES,
        "num_rows": NUM_ROWS,
        "support_size": SUPPORT_SIZE,
        "schedule": ",".join(str(m) for m in schedule),
    }
    print(f"workload: h={NUM_ATTRIBUTES} N={NUM_ROWS} u={SUPPORT_SIZE}")
    print(f"schedule: {schedule}")

    benchmarks = []

    def run_family(family, reps, variants):
        scalar_result, scalar_times = None, None
        for label, make_sweep in variants:
            result, times = measure(make_sweep, reps)
            if label == "scalar":
                scalar_result, scalar_times = result, times
                speedup = 1.0
            else:
                assert result == scalar_result, (
                    f"{family}[{label}] diverged from the scalar path"
                )
                speedup = float(np.mean(scalar_times) / np.mean(times))
            entry = {
                "name": f"test_backend_{family}[{label}]",
                "stats": stats_block(times),
                "extra_info": {**workload, "speedup_vs_scalar": round(speedup, 3)},
            }
            benchmarks.append(entry)
            print(
                f"  {family}[{label}]: mean {np.mean(times) * 1000:.2f}ms"
                f"  ({speedup:.2f}x vs scalar)"
            )

    print("entropy sweep:")
    run_family(
        "entropy_sweep",
        ENTROPY_REPS,
        [
            ("scalar", lambda: scalar_entropy_sweep(store, names, schedule, p_entropy)),
            (
                "batched-numpy",
                lambda: batched_entropy_sweep(store, names, schedule, p_entropy, "numpy"),
            ),
            (
                "batched-threads",
                lambda: batched_entropy_sweep(store, names, schedule, p_entropy, "threads"),
            ),
        ],
    )
    print("mi sweep:")
    run_family(
        "mi_sweep",
        MI_REPS,
        [
            ("scalar", lambda: scalar_mi_sweep(store, names, target, schedule, p_mi)),
            (
                "batched-numpy",
                lambda: batched_mi_sweep(store, names, target, schedule, p_mi, "numpy"),
            ),
            (
                "batched-threads",
                lambda: batched_mi_sweep(store, names, target, schedule, p_mi, "threads"),
            ),
        ],
    )

    payload = {"machine_info": {"note": "single-core reference box"}, "benchmarks": benchmarks}
    atomic_write_text(Path(args.output), json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    headline = next(
        b["extra_info"]["speedup_vs_scalar"]
        for b in benchmarks
        if b["name"] == "test_backend_entropy_sweep[batched-numpy]"
    )
    print(f"headline entropy speedup: {headline:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
