"""Census-track benchmark: SWOPE vs exact on the skewed wide table.

Runs the ``skewed`` census scenario — Zipf-skewed identifier columns
around and above the u = 1000 preprocessing cutoff plus mid-entropy
demographic columns — end to end on each counting backend: manifested
generation, support partitioning, the scenario's plan under SWOPE, and
the same queries under exact full scans.

Agreement is asserted *in-bench* before any timing is trusted: every
query must return the exact answer set (accuracy 1.0) and hold its
Definition 5/6 guarantee; a violation aborts the run rather than
producing a fast-but-wrong number.

Output is a pytest-benchmark-shaped JSON dump (``BENCH_census.json`` at
the repo root by default) that ``scripts/bench_report.py`` accepts:

    python benchmarks/bench_census.py
    python scripts/bench_report.py BENCH_census.json
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.baselines import exact_filter_entropy, exact_top_k_entropy
from repro.core.plan import PlanExecutor
from repro.data.filters import partition_by_support
from repro.durability.atomic import atomic_write_text
from repro.experiments.runner import GroundTruthCache
from repro.experiments.workloads import census_plan, run_scenario
from repro.synth.census import generate_census

SCENARIO = "skewed"
SEED = 0
SCALE = 1.0  # the registry size: 60k rows, supports 16..4000
REPS = 3
BACKENDS = ["numpy", "threads"]


def measure(run, reps: int) -> tuple[object, list[float]]:
    times = []
    outcome: object = None
    for _ in range(reps):
        start = time.perf_counter()
        outcome = run()
        times.append(time.perf_counter() - start)
    return outcome, times


def stats_block(times: list[float]) -> dict:
    return {
        "mean": float(np.mean(times)),
        "min": float(np.min(times)),
        "max": float(np.max(times)),
        "stddev": float(np.std(times)),
        "rounds": len(times),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_census.json"
        ),
        help="where to write the pytest-benchmark-shaped JSON dump",
    )
    args = parser.parse_args(argv)

    dataset = generate_census(SCENARIO, seed=SEED, scale=SCALE)
    kept, dropped = partition_by_support(dataset.store)
    workload = {
        "scenario": SCENARIO,
        "num_rows": kept.num_rows,
        "kept_columns": len(kept.attributes),
        "dropped_columns": ",".join(dropped),
        "manifest_sha256": dataset.fingerprint[:16],
        "queries": ",".join(
            str(entry["name"]) for entry in dataset.scenario.queries
        ),
    }
    print(
        f"workload: census/{SCENARIO} N={kept.num_rows:,},"
        f" {len(kept.attributes)} kept columns"
        f" (dropped over u=1000: {', '.join(dropped)})"
    )

    truth = GroundTruthCache()
    benchmarks = []
    for backend in BACKENDS:
        # The agreement gate: the scored run must be exact-equivalent
        # with zero guarantee violations before timings mean anything.
        outcome = run_scenario(
            SCENARIO, seed=SEED, scale=SCALE, backend=backend,
            truth=truth, dataset=dataset,
        )
        for query in outcome.queries:
            assert query.accuracy == 1.0, (
                f"{backend}/{query.name}: SWOPE answer"
                f" {query.answer} != exact {query.exact_answer}"
            )
            assert query.guarantee_held, (
                f"{backend}/{query.name}: guarantee violated:"
                f" {query.violations}"
            )

        plan = census_plan(dataset.scenario, kept)

        def run_swope() -> int:
            executor = PlanExecutor(kept, seed=SEED, backend=backend)
            return executor.execute(plan).stats.cells_scanned

        swope_cells, swope_times = measure(run_swope, REPS)

        def run_exact() -> int:
            cells = 0
            for spec in plan.specs:
                candidates = list(spec.attributes or ())
                if spec.kind == "top_k":
                    exact = exact_top_k_entropy(
                        kept, spec.k or 1, attributes=candidates
                    )
                else:
                    exact = exact_filter_entropy(
                        kept, spec.threshold or 0.0, attributes=candidates
                    )
                cells += exact.stats.cells_scanned
            return cells

        exact_cells, exact_times = measure(run_exact, REPS)
        assert exact_cells == outcome.exact_cells

        speedup_cells = int(str(exact_cells)) / max(int(str(swope_cells)), 1)
        benchmarks.append(
            {
                "name": f"test_census[{backend}-swope]",
                "stats": stats_block(swope_times),
                "extra_info": {
                    **workload,
                    "backend": backend,
                    "algorithm": "swope",
                    "cells_scanned": int(str(swope_cells)),
                    "cells_ratio_vs_exact": round(speedup_cells, 3),
                    "accuracy": 1.0,
                    "guarantee_violations": 0,
                },
            }
        )
        benchmarks.append(
            {
                "name": f"test_census[{backend}-exact]",
                "stats": stats_block(exact_times),
                "extra_info": {
                    **workload,
                    "backend": backend,
                    "algorithm": "exact",
                    "cells_scanned": int(str(exact_cells)),
                    "cells_ratio_vs_exact": 1.0,
                    "accuracy": 1.0,
                    "guarantee_violations": 0,
                },
            }
        )
        print(
            f"  {backend}: swope {np.mean(swope_times) * 1000:.1f}ms"
            f" / {int(str(swope_cells)):,} cells,"
            f" exact {np.mean(exact_times) * 1000:.1f}ms"
            f" / {int(str(exact_cells)):,} cells"
            f" ({speedup_cells:.1f}x fewer cells, agreement exact)"
        )

    payload = {
        "machine_info": {"note": "single-core reference box"},
        "benchmarks": benchmarks,
    }
    atomic_write_text(Path(args.output), json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
