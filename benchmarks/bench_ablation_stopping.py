"""Ablation A2 — stopping rule, everything else held fixed (DESIGN.md §4).

This is the paper's core contribution isolated: the SWOPE relative-error
stopping rule versus the KDD'19 exact stopping rule, on the *same*
substrate (same bounds, same doubling schedule, same sequential sampler).
Any cost difference here is attributable purely to the stopping rules.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.core.filtering import swope_filter_entropy
from repro.core.topk import swope_top_k_entropy
from repro.data.sampling import PrefixSampler


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("rule", ["swope-approximate", "kdd19-exact"])
def test_ablation_stopping_topk(benchmark, dataset_key, rule):
    store = cfg.dataset(dataset_key).store

    def run():
        sampler = PrefixSampler(store, sequential=True)
        if rule == "swope-approximate":
            return swope_top_k_entropy(store, 4, epsilon=0.1, sampler=sampler)
        return entropy_rank_top_k(store, 4, sampler=sampler)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["final_sample"] = result.stats.final_sample_size


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("rule", ["swope-approximate", "kdd19-exact"])
def test_ablation_stopping_filter(benchmark, dataset_key, rule):
    store = cfg.dataset(dataset_key).store

    def run():
        sampler = PrefixSampler(store, sequential=True)
        if rule == "swope-approximate":
            return swope_filter_entropy(store, 2.0, epsilon=0.05, sampler=sampler)
        return entropy_filter(store, 2.0, sampler=sampler)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_scanned"] = result.stats.cells_scanned
    benchmark.extra_info["answer_size"] = len(result.attributes)
