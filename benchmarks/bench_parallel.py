"""Process-parallel counting and out-of-core storage benchmark.

Two measurements, both recorded to ``BENCH_parallel.json`` (a
pytest-benchmark-shaped dump that ``scripts/bench_report.py`` accepts):

* ``entropy_sweep`` — the per-iteration scoring sweep (counts, entropies,
  confidence intervals for every attribute) on the issue's h=64/N=1e6
  workload, at *large* sample prefixes where counting dominates, under
  the ``numpy`` backend vs :class:`~repro.data.backends.ProcessBackend`
  at 4 workers. The two interval sets are asserted exactly equal before
  any time is reported; the >= 2.5x speedup acceptance gate is asserted
  only on boxes with >= 4 CPU cores (a single-core box cannot express a
  parallel speedup — the honest number and the core count are recorded
  either way).
* ``out_of_core`` — builds a multi-GB on-disk
  :class:`~repro.data.mmap_store.MmapStore` chunk by chunk (default
  10^8 rows x 16 int16 columns ~ 3.2 GB), then runs the mixed example
  plan (``examples/plan_mixed.json``) against it in a *fresh child
  process* and reports the child's peak RSS. The acceptance gate is
  peak RSS < 25% of the dataset's on-disk bytes — the plan must stream,
  not materialise. Agreement is separately pinned at a small N where an
  in-memory run is cheap: the mmap-backed plan's answers must be
  bit-identical to the in-memory plan's.

Run (the out-of-core phase needs ~2x the dataset bytes free on disk):

    python benchmarks/bench_parallel.py
    python benchmarks/bench_parallel.py --ooc-rows 1000000   # quick pass
    python scripts/bench_report.py BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.engine import EntropyScoreProvider
from repro.core.plan import PlanExecutor, load_plan, plan_queries
from repro.data.backends import NumpyBackend, ProcessBackend
from repro.data.column_store import ColumnStore
from repro.data.mmap_store import MmapStore, MmapStoreWriter
from repro.data.sampling import PrefixSampler
from repro.durability.atomic import atomic_write_text
from repro.testing.chaos import plan_fingerprint

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The issue's acceptance workload: h >= 64 attributes, N >= 10^6 rows.
NUM_ATTRIBUTES = 64
NUM_ROWS = 1_000_000
SUPPORT_SIZE = 32
SEED = 11
SAMPLER_SEED = 7
FAILURE_PROBABILITY = 0.01
#: Large prefixes — the regime the process backend exists for. The tiny
#: early-iteration prefixes of the adaptive schedule are covered by the
#: serial fallback (see ProcessBackend.min_parallel_cells).
SWEEP_SCHEDULE = [1 << 17, 1 << 18, 1 << 19, NUM_ROWS]
SWEEP_REPS = 5
PROCESS_WORKERS = 4
SPEEDUP_FLOOR = 2.5

#: Out-of-core workload: 16 int16 columns -> 32 bytes/row; 10^8 rows is
#: ~3.2 GB on disk, far past any sensible in-memory materialisation.
#: Supports avoid u=4 (uniform entropy exactly 2.0 bits — the example
#: plan's filter threshold, which no finite sample could ever decide),
#: and the three noisy copies of the MI target give the MI queries
#: clearly separated positives, so the plan converges at M << N — the
#: paper's premise, and what keeps the out-of-core working set small.
OOC_ROWS = 100_000_000
OOC_CHUNK_ROWS = 4_000_000
OOC_NOISY_KEEP = {"mi_noisy_00": 0.85, "mi_noisy_01": 0.6, "mi_noisy_02": 0.4}
OOC_SUPPORTS = {
    "mi_base_00": 8,
    "mi_noisy_00": 8,
    "mi_noisy_01": 8,
    "mi_noisy_02": 8,
    **{
        f"col_{i:02d}": u
        for i, u in enumerate(
            [3, 6, 12, 16, 24, 32, 48, 64, 9, 14, 20, 28], start=4
        )
    },
}
RSS_FRACTION_CEILING = 0.25
#: Below this dataset size the interpreter's own baseline RSS dominates
#: and the 25% fraction stops being a statement about streaming.
RSS_GATE_MIN_BYTES = 1 << 30
AGREEMENT_ROWS = 200_000


# ----------------------------------------------------------------------
# Part A — process-parallel entropy sweep
# ----------------------------------------------------------------------
def build_sweep_store() -> tuple[ColumnStore, list[str]]:
    rng = np.random.default_rng(SEED)
    columns = {
        f"a{i}": rng.integers(0, SUPPORT_SIZE, size=NUM_ROWS)
        for i in range(NUM_ATTRIBUTES)
    }
    return ColumnStore(columns), [f"a{i}" for i in range(NUM_ATTRIBUTES)]


def entropy_sweep(store, names, backend):
    """One full scoring sweep over the large-prefix schedule."""
    sampler = PrefixSampler(store, seed=SAMPLER_SEED, backend=backend)
    provider = EntropyScoreProvider(
        sampler, FAILURE_PROBABILITY / (2 * NUM_ATTRIBUTES)
    )

    def sweep():
        out = {}
        for m in SWEEP_SCHEDULE:
            out = provider.intervals(names, m)
        return dict(out)

    return sweep


def measure(make_sweep, reps: int) -> tuple[dict, list[float]]:
    times = []
    result: dict = {}
    for _ in range(reps):
        sweep = make_sweep()
        start = time.perf_counter()
        result = sweep()
        times.append(time.perf_counter() - start)
    return result, times


def stats_block(times: list[float]) -> dict:
    return {
        "mean": float(np.mean(times)),
        "min": float(np.min(times)),
        "max": float(np.max(times)),
        "stddev": float(np.std(times)),
        "rounds": len(times),
    }


def run_sweep_family(benchmarks: list[dict]) -> None:
    store, names = build_sweep_store()
    cores = os.cpu_count() or 1
    workload = {
        "num_attributes": NUM_ATTRIBUTES,
        "num_rows": NUM_ROWS,
        "support_size": SUPPORT_SIZE,
        "schedule": ",".join(str(m) for m in SWEEP_SCHEDULE),
        "cpu_count": cores,
        "process_workers": PROCESS_WORKERS,
    }
    print(
        f"entropy sweep: h={NUM_ATTRIBUTES} N={NUM_ROWS} u={SUPPORT_SIZE}"
        f" schedule={SWEEP_SCHEDULE} (cpu_count={cores})"
    )
    numpy_result, numpy_times = measure(
        lambda: entropy_sweep(store, names, NumpyBackend()), SWEEP_REPS
    )
    benchmarks.append(
        {
            "name": "test_parallel_entropy_sweep[numpy]",
            "stats": stats_block(numpy_times),
            "extra_info": {**workload, "speedup_vs_numpy": 1.0},
        }
    )
    print(f"  numpy:       mean {np.mean(numpy_times) * 1000:.1f}ms")

    process = ProcessBackend(max_workers=PROCESS_WORKERS, min_parallel_cells=0)
    try:
        process_result, process_times = measure(
            lambda: entropy_sweep(store, names, process), SWEEP_REPS
        )
    finally:
        process.close()
    # Bit-identity first, speed second: a fast wrong answer is worthless.
    assert process_result == numpy_result, (
        "process backend diverged from numpy on the entropy sweep"
    )
    speedup = float(np.mean(numpy_times) / np.mean(process_times))
    benchmarks.append(
        {
            "name": f"test_parallel_entropy_sweep[process-{PROCESS_WORKERS}]",
            "stats": stats_block(process_times),
            "extra_info": {
                **workload,
                "speedup_vs_numpy": round(speedup, 3),
                "agreement": "bit-identical intervals vs numpy",
            },
        }
    )
    print(
        f"  process({PROCESS_WORKERS}):  mean"
        f" {np.mean(process_times) * 1000:.1f}ms  ({speedup:.2f}x vs numpy,"
        " intervals bit-identical)"
    )
    if cores >= PROCESS_WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"process backend speedup {speedup:.2f}x is below the"
            f" {SPEEDUP_FLOOR}x acceptance floor on a {cores}-core box"
        )
    else:
        print(
            f"  (speedup floor {SPEEDUP_FLOOR}x not asserted: only {cores}"
            f" core(s) available, {PROCESS_WORKERS} required)"
        )


# ----------------------------------------------------------------------
# Part B — out-of-core mixed plan, peak RSS in a fresh child process
# ----------------------------------------------------------------------
def generate_chunk(rng: np.random.Generator, length: int) -> dict:
    base = rng.integers(0, OOC_SUPPORTS["mi_base_00"], size=length)
    chunk = {"mi_base_00": base}
    for name, keep_rate in OOC_NOISY_KEEP.items():
        keep = rng.random(length) < keep_rate
        chunk[name] = np.where(
            keep, base, rng.integers(0, OOC_SUPPORTS[name], size=length)
        )
    for name, support in OOC_SUPPORTS.items():
        if name not in chunk:
            chunk[name] = rng.integers(0, support, size=length)
    return chunk


def build_ooc_store(directory: Path, num_rows: int) -> MmapStore:
    rng = np.random.default_rng(SEED)
    writer = MmapStoreWriter(directory, OOC_SUPPORTS, num_rows)
    started = time.perf_counter()
    while writer.rows_written < num_rows:
        length = min(OOC_CHUNK_ROWS, num_rows - writer.rows_written)
        writer.append(generate_chunk(rng, length))
    store = writer.finalize()
    print(
        f"  built {num_rows:,} rows x {len(OOC_SUPPORTS)} columns"
        f" ({store.disk_bytes():,} bytes) in"
        f" {time.perf_counter() - started:.1f}s"
    )
    return store


#: Runs in a fresh interpreter so the high-water mark measures only the
#: plan execution over the mmap store — not the build, not the parent.
#: Peak RSS comes from ``VmHWM`` (per-address-space, reset by execve)
#: rather than ``ru_maxrss``, which Linux carries across fork+exec: a
#: child forked from the parent that just wrote the 3.2 GB store would
#: otherwise inherit the builder's high-water mark and dwarf its own.
_CHILD_SOURCE = """
import json, re, resource, sys, time
from repro.core.plan import PlanExecutor, load_plan, plan_queries
from repro.data.mmap_store import MmapStore
from repro.testing.chaos import plan_fingerprint

def peak_rss_kib():
    try:
        with open("/proc/self/status") as handle:
            return int(re.search(r"VmHWM:\\s+(\\d+) kB", handle.read()).group(1))
    except (OSError, AttributeError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

store_dir, plan_path, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = MmapStore.open(store_dir)
plan = plan_queries(store, load_plan(plan_path))
started = time.perf_counter()
outcome = PlanExecutor(store, seed=seed, sequential=True).execute(plan)
elapsed = time.perf_counter() - started
print(json.dumps({
    "peak_rss_kib": peak_rss_kib(),
    "plan_fingerprint": plan_fingerprint(outcome),
    "plan_seconds": elapsed,
    "cells_scanned": outcome.stats.cells_scanned,
}))
"""


def run_plan_in_child(store_dir: Path, plan_path: Path) -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SOURCE, str(store_dir), str(plan_path), str(SEED)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def check_small_n_agreement(workdir: Path, plan_path: Path) -> None:
    """mmap-backed plan answers == in-memory plan answers at small N."""
    rng = np.random.default_rng(SEED)
    chunk = generate_chunk(rng, AGREEMENT_ROWS)
    memory_store = ColumnStore(chunk, support_sizes=dict(OOC_SUPPORTS))
    disk_store = MmapStore.from_column_store(memory_store, workdir / "agree")
    specs = load_plan(plan_path)
    reference = plan_fingerprint(
        PlanExecutor(memory_store, seed=SEED).execute(
            plan_queries(memory_store, specs)
        )
    )
    candidate = plan_fingerprint(
        PlanExecutor(disk_store, seed=SEED).execute(
            plan_queries(disk_store, specs)
        )
    )
    assert candidate == reference, (
        "mmap-backed plan diverged from the in-memory plan at small N"
    )


def run_out_of_core(benchmarks: list[dict], num_rows: int) -> None:
    plan_path = REPO_ROOT / "examples" / "plan_mixed.json"
    workdir = Path(tempfile.mkdtemp(prefix="bench_parallel_"))
    try:
        print(f"out-of-core: building {num_rows:,}-row mmap store...")
        check_small_n_agreement(workdir, plan_path)
        print(
            f"  small-N agreement ({AGREEMENT_ROWS:,} rows): mmap plan =="
            " in-memory plan"
        )
        store = build_ooc_store(workdir / "store", num_rows)
        disk_bytes = store.disk_bytes()
        child = run_plan_in_child(workdir / "store", plan_path)
        rss_bytes = int(child["peak_rss_kib"]) * 1024
        fraction = rss_bytes / disk_bytes
        print(
            f"  mixed plan in child process: {child['plan_seconds']:.2f}s,"
            f" {child['cells_scanned']:,} cells, peak RSS"
            f" {rss_bytes / 2**20:.0f} MiB = {fraction:.1%} of"
            f" {disk_bytes / 2**30:.2f} GiB on disk"
        )
        if disk_bytes >= RSS_GATE_MIN_BYTES:
            assert fraction < RSS_FRACTION_CEILING, (
                f"peak RSS {fraction:.1%} of dataset size breaches the"
                f" {RSS_FRACTION_CEILING:.0%} out-of-core ceiling"
            )
        else:
            print(
                "  (RSS ceiling not asserted: dataset below"
                f" {RSS_GATE_MIN_BYTES / 2**30:.0f} GiB, interpreter baseline"
                " dominates)"
            )
        benchmarks.append(
            {
                "name": "test_parallel_out_of_core[plan_mixed]",
                "stats": stats_block([float(child["plan_seconds"])]),
                "extra_info": {
                    "num_rows": num_rows,
                    "num_columns": len(OOC_SUPPORTS),
                    "disk_bytes": disk_bytes,
                    "peak_rss_bytes": rss_bytes,
                    "rss_fraction_of_dataset": round(fraction, 4),
                    "cells_scanned": int(child["cells_scanned"]),
                    "agreement": "plan bit-identical mmap vs memory at"
                    f" N={AGREEMENT_ROWS}",
                },
            }
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO_ROOT / "BENCH_parallel.json"),
        help="where to write the pytest-benchmark-shaped JSON dump",
    )
    parser.add_argument(
        "--ooc-rows",
        type=int,
        default=OOC_ROWS,
        help="rows in the out-of-core store (default 10^8; lower for a"
        " quick pass — the RSS ceiling is only asserted above"
        f" {RSS_GATE_MIN_BYTES / 2**30:.0f} GiB on disk)",
    )
    parser.add_argument(
        "--skip-ooc",
        action="store_true",
        help="skip the out-of-core phase (no multi-GB disk use)",
    )
    args = parser.parse_args(argv)

    benchmarks: list[dict] = []
    run_sweep_family(benchmarks)
    if not args.skip_ooc:
        run_out_of_core(benchmarks, args.ooc_rows)

    payload = {
        "machine_info": {
            "cpu_count": os.cpu_count() or 1,
            "note": "speedup floor asserted only at >= 4 cores; RSS ceiling"
            " only at >= 1 GiB on disk",
        },
        "benchmarks": benchmarks,
    }
    atomic_write_text(Path(args.output), json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
