"""Shared configuration for the benchmark suite.

Every figure bench runs over the same dataset set, scale, and ground-truth
cache, controlled by environment variables so a full-fat replication run
is one command away:

* ``REPRO_BENCH_SCALE`` — row-count multiplier for the registry datasets
  (default 0.2: cdc 60k, enem 100k rows — a single-core-friendly suite).
  Use ``1.0`` for the EXPERIMENTS.md reference numbers.
* ``REPRO_BENCH_DATASETS`` — comma-separated registry keys
  (default ``cdc,enem``; the paper runs all four: ``cdc,hus,pus,enem``).
* ``REPRO_BENCH_TARGETS`` — MI targets averaged per measurement
  (default 1; the paper uses 20).

Benchmarks record, via ``benchmark.extra_info``, the paper's companion
metrics next to wall-clock: cells scanned, sample fraction, and accuracy —
so one run regenerates both the (a) time panels and the (b) accuracy
panels of each figure.
"""

from __future__ import annotations

import os

from repro.experiments.runner import GroundTruthCache
from repro.synth.datasets import SyntheticDataset, load_dataset

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))
DATASET_KEYS = [
    key
    for key in os.environ.get("REPRO_BENCH_DATASETS", "cdc,enem").split(",")
    if key
]
NUM_TARGETS = int(os.environ.get("REPRO_BENCH_TARGETS", "1"))

#: Paper parameter grids (Section 6.1).
TOPK_GRID = (1, 2, 4, 8, 10)
ENTROPY_ETA_GRID = (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
MI_ETA_GRID = (0.1, 0.2, 0.3, 0.4, 0.5)
EPSILON_GRID = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5)
ALGORITHMS = ("swope", "entropy_rank", "exact")

_truth = GroundTruthCache()


def dataset(key: str) -> SyntheticDataset:
    """Load (memoised) one registry dataset at the bench scale."""
    return load_dataset(key, scale=SCALE)


def truth() -> GroundTruthCache:
    """The session-wide exact-score cache."""
    return _truth


def targets(key: str) -> list[str]:
    """The MI target attributes benchmarked for one dataset."""
    return list(dataset(key).mi_targets)[: max(1, NUM_TARGETS)]


def record(benchmark, outcome) -> None:
    """Attach the paper's companion metrics to a benchmark entry."""
    benchmark.extra_info["cells_scanned"] = int(outcome.cells_scanned)
    benchmark.extra_info["sample_fraction"] = round(outcome.sample_fraction, 4)
    benchmark.extra_info["accuracy"] = round(outcome.accuracy, 4)
    for key, value in outcome.extra.items():
        benchmark.extra_info[key] = round(value, 4)
