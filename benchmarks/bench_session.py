"""Feature benchmark — QuerySession amortisation across queries.

Beyond the paper: the prefix substrate lets a session of related queries
share samples. This bench runs the same three-query exploration once with
a shared session and once with fresh samplers, and records the saving.
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.core.filtering import swope_filter_entropy
from repro.core.session import QuerySession
from repro.core.topk import swope_top_k_entropy
from repro.data.sampling import PrefixSampler


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("mode", ["session", "fresh"])
def test_session_amortisation(benchmark, dataset_key, mode):
    store = cfg.dataset(dataset_key).store

    def run_session():
        session = QuerySession(store, sequential=True)
        session.top_k_entropy(4, epsilon=0.1)
        session.filter_entropy(2.0, epsilon=0.05)
        session.filter_entropy(1.0, epsilon=0.05)
        return session.cells_scanned

    def run_fresh():
        total = 0
        total += swope_top_k_entropy(
            store, 4, epsilon=0.1,
            sampler=PrefixSampler(store, sequential=True),
        ).stats.cells_scanned
        for threshold in (2.0, 1.0):
            total += swope_filter_entropy(
                store, threshold, epsilon=0.05,
                sampler=PrefixSampler(store, sequential=True),
            ).stats.cells_scanned
        return total

    cells = benchmark.pedantic(
        run_session if mode == "session" else run_fresh, rounds=1, iterations=1
    )
    benchmark.extra_info["cells_scanned"] = int(cells)
    # Sessions can never exceed one full read per cell for entropy queries.
    if mode == "session":
        assert cells <= store.num_attributes * store.num_rows
