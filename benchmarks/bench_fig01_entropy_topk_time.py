"""Fig1 — varying k: top-k on empirical entropy, query time.

Regenerates the series of the paper's Fig1 (varying k: top-k on empirical entropy, query time).
Wall-clock is the benchmark metric; ``extra_info`` carries the paper's
companion metrics (cells scanned, sample fraction, accuracy).
"""

from __future__ import annotations

import pytest

import _bench_config as cfg
from repro.experiments.runner import run_entropy_top_k


@pytest.mark.parametrize("dataset_key", cfg.DATASET_KEYS)
@pytest.mark.parametrize("algorithm", cfg.ALGORITHMS)
@pytest.mark.parametrize("x", cfg.TOPK_GRID)
def test_fig01_entropy_topk_time(benchmark, dataset_key, algorithm, x):
    store = cfg.dataset(dataset_key).store
    truth = cfg.truth()
    truth.entropies(store)  # warm the ground-truth cache outside the timer
    outcome = benchmark.pedantic(
        lambda: run_entropy_top_k(
            store, algorithm, int(x), epsilon=0.1, truth=truth
        ),
        rounds=1,
        iterations=1,
    )
    cfg.record(benchmark, outcome)
    assert outcome.cells_scanned > 0
