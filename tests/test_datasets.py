"""Tests for the synthetic census-like dataset registry."""

from __future__ import annotations

import pytest

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.data.filters import PAPER_MAX_SUPPORT
from repro.exceptions import ParameterError
from repro.synth.datasets import (
    DATASETS,
    build_plan,
    dataset_summary,
    generate,
    load_dataset,
)


class TestRegistry:
    def test_four_paper_datasets(self):
        assert set(DATASETS) == {"cdc", "hus", "pus", "enem"}

    def test_column_counts_match_paper(self):
        assert DATASETS["cdc"].num_columns == 100
        assert DATASETS["hus"].num_columns == 107
        assert DATASETS["pus"].num_columns == 179
        assert DATASETS["enem"].num_columns == 117

    def test_paper_shapes_recorded(self):
        assert DATASETS["pus"].paper_rows == 31_290_943
        assert DATASETS["enem"].paper_columns == 117

    def test_supports_respect_paper_cutoff(self):
        for plan in DATASETS.values():
            for column in plan.columns:
                assert column.support_size <= PAPER_MAX_SUPPORT

    def test_mi_targets_are_group_bases(self):
        plan = DATASETS["cdc"]
        assert len(plan.mi_targets) == 2
        assert all(t.startswith("mi_base_") for t in plan.mi_targets)

    def test_pus_has_three_mi_groups(self):
        assert len(DATASETS["pus"].mi_targets) == 3

    def test_column_names_unique(self):
        for plan in DATASETS.values():
            names = [c.name for c in plan.columns]
            assert len(names) == len(set(names))


class TestBuildPlan:
    def test_too_few_columns_rejected(self):
        with pytest.raises(ParameterError, match="cannot hold"):
            build_plan("tiny", "t", 1000, 10, 0, 0, seed=1, mi_groups=2)

    def test_filler_fills_exact_budget(self):
        plan = build_plan("x", "t", 1000, 150, 0, 0, seed=2, mi_groups=2)
        assert plan.num_columns == 150


class TestGeneration:
    @pytest.fixture(scope="class")
    def small_cdc(self):
        return load_dataset("cdc", scale=0.02, cached=False)

    def test_shape(self, small_cdc):
        assert small_cdc.store.num_rows == 6000
        assert small_cdc.store.num_attributes == 100

    def test_twins_have_top_entropies(self, small_cdc):
        scores = exact_entropies(small_cdc.store)
        ranking = sorted(scores, key=lambda a: -scores[a])
        assert all(name.startswith("top_twin_") for name in ranking[:11])

    def test_anchor_entropies_near_plan(self, small_cdc):
        scores = exact_entropies(small_cdc.store)
        for column in small_cdc.plan.columns:
            if column.kind == "anchor":
                assert scores[column.name] == pytest.approx(
                    column.target_entropy, abs=0.15
                )

    def test_mi_members_ranked_as_planned(self, small_cdc):
        target = small_cdc.mi_targets[0]
        scores = exact_mutual_informations(small_cdc.store, target)
        members = sorted(
            (c for c in small_cdc.plan.columns
             if c.kind == "mi_member" and c.base == target),
            key=lambda c: -c.target_mi,
        )
        # Realised MI ordering of the ranked members must match the plan.
        ranked = [m.name for m in members if m.target_mi >= 1.0]
        realised = sorted(ranked, key=lambda name: -scores[name])
        assert realised == ranked

    def test_generation_is_deterministic(self):
        a = load_dataset("cdc", scale=0.005, cached=False)
        b = load_dataset("cdc", scale=0.005, cached=False)
        assert (a.store.column("top_twin_a_00") == b.store.column("top_twin_a_00")).all()

    def test_cache_returns_same_object(self):
        a = load_dataset("cdc", scale=0.004)
        b = load_dataset("cdc", scale=0.004)
        assert a is b

    def test_scale_floor(self):
        dataset = load_dataset("cdc", scale=1e-9, cached=False)
        assert dataset.store.num_rows == 1000

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            generate(DATASETS["cdc"], scale=0.0)

    def test_unknown_key(self):
        with pytest.raises(ParameterError, match="unknown dataset"):
            load_dataset("nope")


class TestSummary:
    def test_all_datasets_listed(self):
        rows = dataset_summary()
        assert [r["dataset"] for r in rows] == ["cdc", "enem", "hus", "pus"]

    def test_scale_applied(self):
        rows = dataset_summary(["cdc"], scale=0.1)
        assert rows[0]["rows"] == 30_000

    def test_paper_columns_present(self):
        rows = dataset_summary(["pus"])
        assert rows[0]["paper_columns"] == 179
