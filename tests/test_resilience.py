"""Tests for query budgets, cancellation, and graceful degradation.

The resilience contract: a truncated run still returns intervals that are
valid Lemma 3 bounds (they contain the exact scores), labels itself
honestly through :class:`GuaranteeStatus`, and — in sessions — leaves the
shared sampler in a state later queries can build on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.cli import main
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import (
    validate_epsilon,
    validate_failure_probability,
    validate_threshold,
)
from repro.core.results import GuaranteeStatus
from repro.core.session import QuerySession
from repro.core import (
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)
from repro.data.column_store import ColumnStore
from repro.exceptions import (
    BudgetExceededError,
    ParameterError,
    QueryCancelledError,
)


@pytest.fixture()
def hard_store(rng):
    """Close, high entropies: the adaptive loops need many iterations."""
    n = 20000
    base = rng.integers(0, 64, n)
    return ColumnStore(
        {
            "a": rng.integers(0, 200, n),
            "b": rng.integers(0, 180, n),
            "c": rng.integers(0, 160, n),
            "base": base,
            "follower": np.where(
                rng.random(n) < 0.6, base, rng.integers(0, 64, n)
            ),
        }
    )


TINY_CELLS = QueryBudget(max_cells=1000)


class TestValidators:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_epsilon_rejects_non_finite(self, bad):
        with pytest.raises(ParameterError):
            validate_epsilon(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_threshold_rejects_non_finite(self, bad):
        # float("nan") < 0.0 is False, so the old range check let NaN
        # into the filtering loop where it could never be decided.
        with pytest.raises(ParameterError):
            validate_threshold(bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_failure_probability_rejects_non_finite(self, bad):
        with pytest.raises(ParameterError):
            validate_failure_probability(bad)

    def test_valid_values_still_pass(self):
        assert validate_epsilon(0.1) == 0.1
        assert validate_threshold(0.0) == 0.0
        assert validate_failure_probability(0.01) == 0.01


class TestQueryBudget:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_ms": 0},
            {"deadline_ms": -1.0},
            {"deadline_ms": float("nan")},
            {"max_cells": 0},
            {"max_cells": 2.5},
            {"max_sample_size": -10},
        ],
    )
    def test_rejects_bad_limits(self, kwargs):
        with pytest.raises(ParameterError):
            QueryBudget(**kwargs)

    def test_unlimited(self):
        assert QueryBudget().unlimited
        assert not QueryBudget(max_cells=10).unlimited

    def test_precedence_deadline_first(self):
        budget = QueryBudget(deadline_ms=1.0, max_cells=10, max_sample_size=10)
        reason = budget.exhausted(
            elapsed_seconds=1.0, cells_used=100, next_sample_size=100
        )
        assert reason == "deadline"

    def test_cell_budget_then_sample_cap(self):
        budget = QueryBudget(max_cells=10, max_sample_size=10)
        assert (
            budget.exhausted(elapsed_seconds=0, cells_used=10, next_sample_size=5)
            == "cell_budget"
        )
        assert (
            budget.exhausted(elapsed_seconds=0, cells_used=5, next_sample_size=11)
            == "sample_cap"
        )
        assert (
            budget.exhausted(elapsed_seconds=0, cells_used=5, next_sample_size=10)
            is None
        )


class TestCancellationToken:
    def test_cancel_is_sticky_and_first_reason_wins(self):
        token = CancellationToken()
        assert not token.cancelled
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_raise_if_cancelled(self):
        token = CancellationToken()
        token.raise_if_cancelled()  # no-op while not cancelled
        token.cancel("shutdown")
        with pytest.raises(QueryCancelledError, match="shutdown"):
            token.raise_if_cancelled()


class TestGuaranteeStatus:
    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            GuaranteeStatus(
                guarantee_met=False,
                stopping_reason="solar_flare",
                requested_epsilon=0.1,
                achieved_epsilon=0.2,
            )

    def test_met_flag_must_mirror_reason(self):
        with pytest.raises(ValueError):
            GuaranteeStatus(
                guarantee_met=True,
                stopping_reason="deadline",
                requested_epsilon=0.1,
                achieved_epsilon=0.2,
            )


class TestDegradedTopK:
    def test_cell_budget_returns_valid_intervals(self, hard_store):
        exact = exact_entropies(hard_store)
        for seed in range(4):
            result = swope_top_k_entropy(
                hard_store, 2, epsilon=0.01, seed=seed, budget=TINY_CELLS
            )
            status = result.guarantee
            assert status is not None
            assert not status.guarantee_met
            assert status.stopping_reason == "cell_budget"
            assert np.isfinite(status.achieved_epsilon)
            assert status.achieved_epsilon > status.requested_epsilon
            # The degraded answer's intervals are still valid Lemma 3
            # bounds: they contain the exact scores.
            for est in result.estimates:
                assert est.lower <= exact[est.attribute] <= est.upper

    def test_deadline_truncates(self, hard_store):
        result = swope_top_k_entropy(
            hard_store, 2, epsilon=0.001, seed=0,
            budget=QueryBudget(deadline_ms=1e-6),
        )
        assert result.guarantee.stopping_reason == "deadline"
        assert result.stats.iterations == 1  # stopped at the first checkpoint
        assert len(result.attributes) == 2

    def test_sample_cap(self, hard_store):
        result = swope_top_k_entropy(
            hard_store, 2, epsilon=0.001, seed=0,
            budget=QueryBudget(max_sample_size=500),
        )
        assert result.guarantee.stopping_reason == "sample_cap"
        assert result.stats.final_sample_size <= 500

    def test_strict_raises_with_partial(self, hard_store):
        with pytest.raises(BudgetExceededError) as excinfo:
            swope_top_k_entropy(
                hard_store, 2, epsilon=0.01, seed=0,
                budget=TINY_CELLS, strict=True,
            )
        err = excinfo.value
        assert err.stopping_reason == "cell_budget"
        assert err.partial is not None
        assert err.partial.guarantee.stopping_reason == "cell_budget"

    def test_cancellation(self, hard_store):
        token = CancellationToken()
        token.cancel()
        result = swope_top_k_entropy(
            hard_store, 2, epsilon=0.01, seed=0, cancellation=token
        )
        assert result.guarantee.stopping_reason == "cancelled"
        with pytest.raises(QueryCancelledError):
            swope_top_k_entropy(
                hard_store, 2, epsilon=0.01, seed=0,
                cancellation=token, strict=True,
            )

    def test_mi_topk_budgeted(self, hard_store):
        exact = exact_mutual_informations(hard_store, "base")
        result = swope_top_k_mutual_information(
            hard_store, "base", 2, epsilon=0.05, seed=0,
            budget=QueryBudget(max_cells=3000),
        )
        assert not result.guarantee.guarantee_met
        for est in result.estimates:
            assert est.lower <= exact[est.attribute] <= est.upper

    def test_unbudgeted_matches_unlimited_budget(self, hard_store):
        # The per-iteration checks must not perturb an un-truncated run.
        plain = swope_top_k_entropy(hard_store, 2, epsilon=0.1, seed=5)
        huge = swope_top_k_entropy(
            hard_store, 2, epsilon=0.1, seed=5,
            budget=QueryBudget(max_cells=10**12),
        )
        assert plain.guarantee.stopping_reason == "converged"
        assert plain.guarantee.guarantee_met
        assert plain.guarantee.achieved_epsilon <= 0.1
        assert huge.attributes == plain.attributes
        assert huge.estimates == plain.estimates
        assert huge.stats.final_sample_size == plain.stats.final_sample_size


class TestDegradedFilter:
    def test_entropy_filter_converged_guarantee(self, hard_store):
        result = swope_filter_entropy(hard_store, 5.0, epsilon=0.1, seed=0)
        assert result.guarantee.stopping_reason == "converged"
        assert result.guarantee.undecided == ()

    def test_mi_filter_budget_records_undecided(self, hard_store):
        exact = exact_mutual_informations(hard_store, "base")
        result = swope_filter_mutual_information(
            hard_store, "base", 0.3, epsilon=0.05, seed=0,
            budget=QueryBudget(max_cells=2000),
        )
        status = result.guarantee
        assert not status.guarantee_met
        assert status.stopping_reason == "cell_budget"
        assert status.undecided  # something was cut off mid-decision
        assert np.isfinite(status.achieved_epsilon)
        assert status.achieved_epsilon >= status.requested_epsilon
        # Every candidate got a best-effort estimate with valid bounds.
        assert set(result.estimates) == {"a", "b", "c", "follower"}
        for name, est in result.estimates.items():
            assert est.lower <= exact[name] <= est.upper
        # Undecided attributes were resolved by midpoint.
        for name in status.undecided:
            est = result.estimates[name]
            assert (name in result) == (est.estimate >= 0.3)

    def test_filter_strict_raises(self, hard_store):
        with pytest.raises(BudgetExceededError) as excinfo:
            swope_filter_mutual_information(
                hard_store, "base", 0.3, epsilon=0.05, seed=0,
                budget=QueryBudget(max_cells=2000), strict=True,
            )
        assert excinfo.value.partial.guarantee.undecided


class TestSessionResilience:
    def test_session_default_budget_applies(self, hard_store):
        session = QuerySession(hard_store, seed=0, budget=TINY_CELLS)
        assert session.default_budget is TINY_CELLS
        result = session.top_k_entropy(2, epsilon=0.01)
        assert result.guarantee.stopping_reason == "cell_budget"

    def test_per_query_override_lifts_budget(self, hard_store):
        session = QuerySession(hard_store, seed=0, budget=TINY_CELLS)
        result = session.top_k_entropy(2, epsilon=0.1, budget=None)
        assert result.guarantee.stopping_reason == "converged"

    def test_ratchet_monotone_after_truncation(self, hard_store):
        session = QuerySession(hard_store, seed=0)
        floors = [session.sample_floor]
        truncated = session.top_k_entropy(2, epsilon=0.01, budget=TINY_CELLS)
        floors.append(session.sample_floor)
        assert floors[-1] == truncated.stats.final_sample_size
        session.filter_entropy(5.0, epsilon=0.1)
        floors.append(session.sample_floor)
        session.top_k_entropy(1, epsilon=0.5)
        floors.append(session.sample_floor)
        assert floors == sorted(floors)

    def test_queries_work_after_truncated_query(self, hard_store):
        # The truncated query grew shared prefix counters; later queries
        # must start at or above that prefix, not try to shrink it.
        session = QuerySession(hard_store, seed=0)
        session.top_k_entropy(2, epsilon=0.01, budget=TINY_CELLS)
        result = session.top_k_entropy(2, epsilon=0.3)
        assert result.guarantee.stopping_reason == "converged"
        exact = exact_entropies(hard_store)
        for est in result.estimates:
            assert est.lower <= exact[est.attribute] <= est.upper

    def test_strict_failure_still_ratchets_floor(self, hard_store):
        session = QuerySession(hard_store, seed=0)
        with pytest.raises(BudgetExceededError):
            session.top_k_entropy(2, epsilon=0.01, budget=TINY_CELLS, strict=True)
        assert session.sample_floor > 0
        assert session.marginal_cells() > 0
        # And the session is still usable.
        result = session.top_k_entropy(2, epsilon=0.3)
        assert result.guarantee.guarantee_met


class TestCliBudgets:
    def test_budgeted_query_reports_guarantee(self, capsys):
        code = main(
            ["query", "topk-entropy", "--dataset", "cdc", "--scale", "0.05",
             "--epsilon", "0.01", "--max-cells", "1000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "guarantee: NOT met (cell_budget)" in out

    def test_unbudgeted_query_reports_converged(self, capsys):
        code = main(
            ["query", "topk-entropy", "--dataset", "cdc", "--scale", "0.01"]
        )
        assert code == 0
        assert "guarantee: met (converged)" in capsys.readouterr().out

    def test_strict_budget_exit_code(self, capsys):
        code = main(
            ["query", "topk-entropy", "--dataset", "cdc", "--scale", "0.05",
             "--epsilon", "0.01", "--max-cells", "1000", "--strict"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
