"""Property-based tests for semantic answer reuse (``repro.cache``).

The dominance lattice the cache exploits — a stored filter at ``η``
answers any ``η′ >= η``, a stored top-``k`` answers any ``k′ <= k`` —
is a *claim about the engine*, not just about the replay code. These
properties pin it end to end against randomly generated stores and
query shapes:

* whenever the cache serves a dominated request, the served answer is
  byte-identical (attributes, estimates, bounds, guarantee) to the
  answer a fresh cache-free run produces;
* a served answer never claims a stronger guarantee than a fresh run
  would (equal ``guarantee_met``/``stopping_reason``, achieved epsilon
  within the requested bound);
* refusal is always an available outcome — a lookup either serves
  bit-identically or returns ``None``; it never approximates.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import PlanCache
from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.durability.checkpoint import result_to_payload
from repro.data.column_store import ColumnStore

SEED = 3


def _store(data_seed: int, n: int) -> ColumnStore:
    rng = np.random.default_rng(data_seed)
    target = rng.integers(0, 4, n)
    keep = rng.random(n) < 0.6
    return ColumnStore(
        {
            "a": rng.integers(0, 16, n),
            "b": rng.integers(0, 6, n),
            "c": rng.integers(0, 2, n),
            "target": target,
            "noisy": np.where(keep, target, rng.integers(0, 4, n)),
        }
    )


def _answer(result) -> list[dict]:
    payloads = []
    for name in result:
        payload = result_to_payload(result[name])
        payload.pop("stats")  # work accounting differs by construction
        payloads.append(payload)
    return payloads


def _serve(store: ColumnStore, stored: QuerySpec, derived: QuerySpec):
    """Populate an in-memory cache with ``stored``, then query ``derived``.

    Returns ``(served_plan_result, was_hit)`` where ``was_hit`` reports
    whether the derived query touched zero cells (exact or semantic
    serve) or fell back to a fresh execution.
    """
    cache = PlanCache()
    PlanExecutor(store, seed=SEED, cache=cache).execute(
        plan_queries(store, [stored])
    )
    executor = PlanExecutor(store, seed=SEED, cache=cache)
    served = executor.execute(plan_queries(store, [derived]))
    return served, served.stats.cells_scanned == 0


@settings(max_examples=20, deadline=None)
@given(
    data_seed=st.integers(min_value=0, max_value=2**16),
    n=st.sampled_from([200, 400, 700]),
    k_stored=st.integers(min_value=2, max_value=4),
    k_derived=st.integers(min_value=1, max_value=4),
)
def test_topk_dominance_serves_fresh_answer(
    data_seed: int, n: int, k_stored: int, k_derived: int
) -> None:
    store = _store(data_seed, n)
    stored = QuerySpec(
        kind="top_k", score="entropy", k=k_stored, epsilon=0.1, prune=False
    )
    derived = QuerySpec(
        kind="top_k", score="entropy", k=k_derived, epsilon=0.1, prune=False
    )
    served, hit = _serve(store, stored, derived)
    fresh = PlanExecutor(store, seed=SEED).execute(
        plan_queries(store, [derived])
    )
    # Served or refused, the answer equals the fresh run's.
    assert _answer(served) == _answer(fresh)
    if k_derived <= k_stored:
        # Dominated k' is always servable from the stored history: the
        # k'-th largest upper bound is no smaller and the answer set's
        # worst width no larger, so the stored stopping iteration stops
        # the derived run too.
        assert hit


@settings(max_examples=20, deadline=None)
@given(
    data_seed=st.integers(min_value=0, max_value=2**16),
    n=st.sampled_from([200, 400, 700]),
    eta_stored=st.sampled_from([1.5, 2.0, 2.5, 5.0]),
    eta_derived=st.sampled_from([1.5, 2.0, 2.5, 3.0, 5.5]),
)
def test_filter_dominance_serves_fresh_answer(
    data_seed: int, n: int, eta_stored: float, eta_derived: float
) -> None:
    store = _store(data_seed, n)
    stored = QuerySpec(
        kind="filter", score="entropy", threshold=eta_stored, epsilon=0.1
    )
    derived = QuerySpec(
        kind="filter", score="entropy", threshold=eta_derived, epsilon=0.1
    )
    served, _hit = _serve(store, stored, derived)
    fresh = PlanExecutor(store, seed=SEED).execute(
        plan_queries(store, [derived])
    )
    # Replay may serve (η' >= η with covering history) or refuse; either
    # way the answer is the fresh run's, byte for byte.
    assert _answer(served) == _answer(fresh)


@settings(max_examples=15, deadline=None)
@given(
    data_seed=st.integers(min_value=0, max_value=2**16),
    k_derived=st.integers(min_value=1, max_value=3),
)
def test_served_guarantee_never_stronger(data_seed: int, k_derived: int) -> None:
    store = _store(data_seed, 300)
    stored = QuerySpec(
        kind="top_k", score="entropy", k=3, epsilon=0.1, prune=False
    )
    derived = QuerySpec(
        kind="top_k", score="entropy", k=k_derived, epsilon=0.1, prune=False
    )
    served, hit = _serve(store, stored, derived)
    assert hit
    fresh = PlanExecutor(store, seed=SEED).execute(
        plan_queries(store, [derived])
    )
    for name in served:
        got = served[name].guarantee
        want = fresh[name].guarantee
        assert got is not None and want is not None
        assert got.guarantee_met == want.guarantee_met
        assert got.stopping_reason == want.stopping_reason
        assert got.achieved_epsilon == want.achieved_epsilon
        assert got.achieved_epsilon <= got.requested_epsilon
