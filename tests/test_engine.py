"""Unit tests for :mod:`repro.core.engine` (providers + generic loops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import (
    EntropyScoreProvider,
    MutualInformationScoreProvider,
    default_failure_probability,
    validate_epsilon,
    validate_failure_probability,
    validate_k,
    validate_threshold,
)
from repro.core.estimators import entropy_from_counts
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError


class TestValidation:
    def test_epsilon_domain(self):
        assert validate_epsilon(0.5) == 0.5
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ParameterError):
                validate_epsilon(bad)

    def test_failure_probability_domain(self):
        assert validate_failure_probability(0.01) == 0.01
        for bad in (0.0, 1.0):
            with pytest.raises(ParameterError):
                validate_failure_probability(bad)

    def test_k_domain(self):
        assert validate_k(3) == 3
        for bad in (0, -1, 2.5):
            with pytest.raises(ParameterError):
                validate_k(bad)

    def test_threshold_domain(self):
        assert validate_threshold(0.0) == 0.0
        with pytest.raises(ParameterError):
            validate_threshold(-0.1)

    def test_default_failure_probability_is_one_over_n(self):
        assert default_failure_probability(1000) == 0.001

    def test_default_failure_probability_floored_for_tiny_n(self):
        assert default_failure_probability(1) == 0.5


class TestEntropyProvider:
    def test_interval_consistent_with_counts(self, small_store):
        sampler = PrefixSampler(small_store, seed=0)
        provider = EntropyScoreProvider(sampler, 0.01)
        iv = provider.interval("wide", 1000)
        counts = PrefixSampler(small_store, seed=0).marginal_counts("wide", 1000)
        assert iv.estimate == pytest.approx(entropy_from_counts(counts))
        assert iv.lower <= iv.estimate <= iv.upper

    def test_interval_tightens_with_sample_size(self, small_store):
        sampler = PrefixSampler(small_store, seed=0)
        provider = EntropyScoreProvider(sampler, 0.01)
        wide = provider.interval("wide", 200)
        narrow = provider.interval("wide", 4000)
        assert narrow.width < wide.width

    def test_interval_exact_at_full_sample(self, small_store):
        sampler = PrefixSampler(small_store, seed=0)
        provider = EntropyScoreProvider(sampler, 0.01)
        iv = provider.interval("narrow", small_store.num_rows)
        exact = entropy_from_counts(small_store.value_counts("narrow"))
        assert iv.lower == pytest.approx(exact)
        assert iv.upper == pytest.approx(exact)


class TestMIProvider:
    def test_target_interval_cached_per_sample_size(self, correlated_store):
        sampler = PrefixSampler(correlated_store, seed=0)
        provider = MutualInformationScoreProvider(sampler, "target", 0.001)
        provider.interval("noisy", 500)
        cost = sampler.cells_scanned
        # A second candidate at the same sample size must not re-read the
        # target column.
        provider.interval("independent", 500)
        extra = sampler.cells_scanned - cost
        assert extra == 500 + 2 * 500  # candidate marginal + joint pair

    def test_interval_brackets_sample_mi(self, correlated_store):
        sampler = PrefixSampler(correlated_store, seed=0)
        provider = MutualInformationScoreProvider(sampler, "target", 0.001)
        iv = provider.interval("copy", 2000)
        assert iv.lower <= iv.estimate <= iv.upper

    def test_candidate_equal_target_rejected(self, correlated_store):
        sampler = PrefixSampler(correlated_store, seed=0)
        provider = MutualInformationScoreProvider(sampler, "target", 0.001)
        with pytest.raises(SchemaError):
            provider.interval("target", 100)

    def test_unknown_target_rejected(self, correlated_store):
        sampler = PrefixSampler(correlated_store, seed=0)
        with pytest.raises(SchemaError):
            MutualInformationScoreProvider(sampler, "ghost", 0.001)

    def test_exact_at_full_sample(self, correlated_store):
        n = correlated_store.num_rows
        sampler = PrefixSampler(correlated_store, seed=0)
        provider = MutualInformationScoreProvider(sampler, "target", 0.001)
        iv = provider.interval("copy", n)
        h_target = entropy_from_counts(correlated_store.value_counts("target"))
        assert iv.lower == pytest.approx(h_target)
        assert iv.upper == pytest.approx(h_target)
