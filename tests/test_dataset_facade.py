"""Tests for the Dataset facade and the QueryTrace diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Dataset, QueryTrace
from repro.data.column_store import ColumnStore
from repro.exceptions import SchemaError, UnknownAttributeError


@pytest.fixture(scope="module")
def survey() -> Dataset:
    rng = np.random.default_rng(2)
    n = 4000
    region = rng.integers(0, 40, n)
    income = np.where(rng.random(n) < 0.7, region % 8, rng.integers(0, 8, n))
    return Dataset.from_table(
        {
            "region": [f"r{v}" for v in region],
            "income": income.tolist(),
            "flag": (rng.random(n) < 0.1).astype(int).tolist(),
        }
    )


class TestConstruction:
    def test_from_table(self, survey):
        assert survey.num_rows == 4000
        assert survey.attributes == ("region", "income", "flag")
        assert survey.encoder is not None

    def test_from_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\nx,1\ny,2\nx,1\n")
        ds = Dataset.from_csv(path)
        assert ds.num_rows == 3
        assert ds.decode("a", ds.store.column("a")[:2]) == ["x", "y"]

    def test_wrap_pre_encoded_store(self):
        store = ColumnStore({"a": np.array([0, 1, 1])})
        ds = Dataset(store)
        assert ds.encoder is None
        with pytest.raises(SchemaError, match="no encoder"):
            ds.decode("a", [0])


class TestQueries:
    def test_top_k_entropy(self, survey):
        result = survey.top_k_entropy(1, seed=0)
        assert result.attributes == ["region"]

    def test_filter_entropy(self, survey):
        result = survey.filter_entropy(2.0, seed=0)
        assert "region" in result
        assert "flag" not in result

    def test_mi_queries(self, survey):
        top = survey.top_k_mutual_information("income", 1, seed=0)
        assert top.attributes == ["region"]
        kept = survey.filter_mutual_information("income", 0.5, seed=0)
        assert "region" in kept

    def test_exact_scores(self, survey):
        entropies = survey.entropies()
        assert set(entropies) == set(survey.attributes)
        mis = survey.mutual_informations("income")
        assert set(mis) == {"region", "flag"}
        assert mis["region"] > mis["flag"]


class TestConveniences:
    def test_value_distribution_decoded(self, survey):
        dist = survey.value_distribution("region")
        assert all(isinstance(k, str) and k.startswith("r") for k in dist)
        assert sum(dist.values()) == survey.num_rows

    def test_value_distribution_without_encoder(self):
        ds = Dataset(ColumnStore({"a": np.array([0, 0, 2])}))
        assert ds.value_distribution("a") == {0: 2, 2: 1}

    def test_without_high_support(self, survey):
        filtered = survey.without_high_support(max_support=10)
        assert "region" not in filtered.attributes
        assert "income" in filtered.attributes
        # the encoder travels with the filtered view
        assert filtered.encoder is survey.encoder


class TestQueryTrace:
    def test_topk_trace_structure(self, survey):
        trace = QueryTrace()
        survey.top_k_entropy(1, seed=0, epsilon=0.05, trace=trace)
        assert trace.iterations
        sizes = [t.sample_size for t in trace.iterations]
        assert sizes == sorted(sizes)
        assert all(not t.stopped for t in trace.iterations[:-1])
        assert trace.iterations[-1].stopped

    def test_widths_monotone_down(self, survey):
        trace = QueryTrace()
        survey.top_k_entropy(1, seed=0, epsilon=0.05, trace=trace)
        widths = [w for _, w in trace.widths("region")]
        assert len(widths) >= 2
        assert all(a >= b - 1e-9 for a, b in zip(widths, widths[1:]))

    def test_filter_trace_records_decisions(self, survey):
        trace = QueryTrace()
        survey.filter_entropy(2.0, seed=0, trace=trace)
        decided = [a for t in trace.iterations for a in t.decided]
        assert sorted(decided) == sorted(survey.attributes)

    def test_mi_trace(self, survey):
        trace = QueryTrace()
        survey.top_k_mutual_information("income", 1, seed=0, trace=trace)
        assert trace.iterations
        assert "region" in trace.iterations[0].bounds

    def test_widths_for_unknown_attribute_raises(self, survey):
        trace = QueryTrace()
        survey.top_k_entropy(1, seed=0, trace=trace)
        with pytest.raises(UnknownAttributeError, match="ghost"):
            trace.widths("ghost")

    def test_widths_for_pruned_attribute_still_works(self, survey):
        # An attribute decided early stops appearing in later iterations'
        # bounds but must not be treated as unknown.
        trace = QueryTrace()
        survey.filter_entropy(2.0, seed=0, trace=trace)
        for attribute in survey.attributes:
            assert trace.widths(attribute)
