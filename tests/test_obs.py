"""Unit tests for the observability subsystem (:mod:`repro.obs`)."""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.budget import QueryBudget
from repro.core.engine import QueryTrace
from repro.core.filtering import swope_filter_entropy
from repro.core.schedule import SampleSchedule
from repro.core.session import QuerySession
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, QueryInterruptedError
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    InMemorySink,
    IterationEvent,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    PruneEvent,
    QueryEndEvent,
    QueryStartEvent,
    TraceSink,
    global_registry,
    header_record,
    reset_global_registry,
    serialize_event,
)


@pytest.fixture
def store(rng: np.random.Generator) -> ColumnStore:
    n = 3000
    return ColumnStore(
        {
            "wide": rng.integers(0, 128, n),
            "medium": rng.integers(0, 16, n),
            "narrow": rng.integers(0, 3, n),
            "flat": np.zeros(n, dtype=np.int64),
        }
    )


class TestEvents:
    def test_header_record(self):
        assert header_record() == {
            "event": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
        }

    def test_as_dict_includes_discriminator_and_lists_tuples(self):
        event = PruneEvent(sample_size=64, pruned=("a", "b"), survivors=3)
        assert event.as_dict() == {
            "event": "prune",
            "sample_size": 64,
            "pruned": ["a", "b"],
            "survivors": 3,
        }

    def test_iteration_event_renders_bounds_as_lists(self):
        event = IterationEvent(
            index=0,
            sample_size=16,
            candidates=("a",),
            bounds={"a": (0.5, 1.5)},
        )
        assert event.as_dict()["bounds"] == {"a": [0.5, 1.5]}

    def test_serialize_event_is_canonical(self):
        # Key order of the input dict must not leak into the rendering.
        assert serialize_event({"b": 1, "a": 2}) == '{"a":2,"b":1}'
        event = QueryEndEvent(
            stopping_reason="converged",
            guarantee_met=True,
            requested_epsilon=0.1,
            achieved_epsilon=0.05,
            iterations=3,
            final_sample_size=128,
            cells_scanned=999,
            answer=("x",),
        )
        line = serialize_event(event)
        assert json.loads(line) == event.as_dict()
        assert ", " not in line  # minimal separators


class TestSinks:
    def test_null_sink_is_disabled(self):
        assert NullSink.enabled is False
        assert isinstance(NullSink(), TraceSink)

    def test_in_memory_sink_collects_in_order(self):
        sink = InMemorySink()
        sink.emit(PruneEvent(sample_size=1, pruned=("a",), survivors=1))
        sink.emit(QueryEndEvent("converged", True, 0.1, 0.1, 1, 1, 1, ()))
        assert len(sink) == 2
        assert sink.kinds() == ["prune", "query_end"]
        assert [type(e).event for e in sink] == sink.kinds()
        assert len(sink.of_kind("prune")) == 1
        assert sink.of_kind("iteration") == []

    def test_jsonl_sink_owns_path(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(PruneEvent(sample_size=2, pruned=("a",), survivors=0))
            assert sink.event_count == 1
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == header_record()
        assert json.loads(lines[1])["event"] == "prune"

    def test_jsonl_sink_borrows_file_object(self):
        buffer = io.StringIO()
        sink = JsonlSink(buffer)
        sink.close()
        assert not buffer.closed  # borrowed, never closed
        assert json.loads(buffer.getvalue()) == header_record()


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "help")
        c.inc()
        c.inc(2.0)
        assert reg.counter("hits") is c
        assert c.value == 3.0

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ParameterError, match="cannot decrease"):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ParameterError, match="already registered"):
            reg.gauge("x")

    def test_invalid_name_raises(self):
        with pytest.raises(ParameterError, match="invalid metric name"):
            MetricsRegistry().counter("bad name!")

    def test_gauge_set_and_inc(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(-2)
        assert g.value == 3.0

    def test_histogram_buckets_are_inclusive_upper_bounds(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        for value in (0.5, 1.0, 1.5, 99.0):
            h.observe(value)
        assert h.cumulative_counts() == [2, 3, 4]  # le=1, le=2, +Inf
        assert h.sum == pytest.approx(102.0)
        assert h.count == 4

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ParameterError, match="ascending"):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_get_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert reg.get("a").metric_type == "gauge"
        with pytest.raises(ParameterError, match="no metric"):
            reg.get("missing")

    def test_render_prometheus(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "Requests served").inc(7)
        reg.histogram("lat", buckets=(0.5,)).observe(0.1)
        text = reg.render_prometheus()
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 7" in text
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_as_dict_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        dumped = json.loads(json.dumps(reg.as_dict()))
        assert dumped["c"]["value"] == 1.0
        assert dumped["h"]["buckets"] == {"1": 1, "+Inf": 1}

    def test_global_registry_is_a_singleton_until_reset(self):
        reset_global_registry()
        first = global_registry()
        assert global_registry() is first
        reset_global_registry()
        assert global_registry() is not first


class TestEngineEmission:
    def test_event_stream_shape(self, store):
        sink = InMemorySink()
        result = swope_top_k_entropy(
            store, 2, seed=3,
            schedule=SampleSchedule(store.num_rows, 64), trace=sink,
        )
        kinds = sink.kinds()
        assert kinds[0] == "query_start"
        assert kinds[-1] == "query_end"
        start = sink.of_kind("query_start")[0]
        assert isinstance(start, QueryStartEvent)
        assert start.kind == "top_k"
        assert start.score == "entropy"
        assert start.k == 2
        iterations = sink.of_kind("iteration")
        sizes = [e.sample_size for e in iterations]
        assert sizes == sorted(sizes)
        end = sink.of_kind("query_end")[0]
        assert end.answer == tuple(result.attributes)
        assert end.iterations == result.stats.iterations
        assert end.cells_scanned == result.stats.cells_scanned
        assert result.stats.trace_event_count == len(sink)

    def test_prune_event(self, store):
        sink = InMemorySink()
        swope_top_k_entropy(
            store, 1, seed=3, prune=True,
            schedule=SampleSchedule(store.num_rows, 64), trace=sink,
        )
        prunes = sink.of_kind("prune")
        assert prunes, "separated entropies should let pruning fire"
        for event in prunes:
            assert event.pruned
            assert event.survivors >= 1

    def test_filter_decided_events_cover_all_attributes(self, store):
        sink = InMemorySink()
        result = swope_filter_entropy(
            store, 2.5, seed=3,
            schedule=SampleSchedule(store.num_rows, 64), trace=sink,
        )
        assert result.guarantee is not None and result.guarantee.guarantee_met
        decided = [a for e in sink.of_kind("iteration") for a in e.decided]
        assert sorted(decided) == sorted(store.attributes)
        assert sink.of_kind("iteration")[-1].stopped

    def test_degraded_run_emits_budget_degradation(self, store):
        sink = InMemorySink()
        registry = MetricsRegistry()
        result = swope_top_k_entropy(
            store, 2, seed=3, budget=QueryBudget(max_sample_size=64),
            schedule=SampleSchedule(store.num_rows, 64),
            trace=sink, metrics=registry,
        )
        assert result.guarantee is not None
        assert not result.guarantee.guarantee_met
        degradations = sink.of_kind("budget_degradation")
        assert [e.reason for e in degradations] == ["sample_cap"]
        end = sink.of_kind("query_end")[0]
        assert end.stopping_reason == "sample_cap"
        assert registry.counter("queries_degraded_total").value == 1.0

    def test_strict_run_still_reaches_sink_and_metrics(self, store):
        sink = InMemorySink()
        registry = MetricsRegistry()
        with pytest.raises(QueryInterruptedError):
            swope_top_k_entropy(
                store, 2, seed=3, strict=True,
                budget=QueryBudget(max_sample_size=64),
                schedule=SampleSchedule(store.num_rows, 64),
                trace=sink, metrics=registry,
            )
        assert sink.kinds()[-1] == "query_end"
        assert registry.counter("queries_total").value == 1.0
        assert registry.counter("queries_degraded_total").value == 1.0

    def test_disabled_sink_emits_nothing(self, store):
        sink = NullSink()
        result = swope_top_k_entropy(store, 2, seed=3, trace=sink)
        baseline = swope_top_k_entropy(store, 2, seed=3)
        assert result.stats.trace_event_count == 0
        assert result.attributes == baseline.attributes

    def test_legacy_query_trace_still_works(self, store):
        trace = QueryTrace()
        result = swope_top_k_entropy(store, 2, seed=3, trace=trace)
        assert trace.iterations
        assert result.stats.trace_event_count == 0

    def test_metrics_without_trace(self, store):
        registry = MetricsRegistry()
        result = swope_top_k_entropy(store, 2, seed=3, metrics=registry)
        assert registry.counter("cells_scanned_total").value == float(
            result.stats.cells_scanned
        )
        assert registry.histogram("query_wall_seconds").count == 1


class TestSessionWiring:
    def test_session_default_sink_and_registry(self, store):
        sink = InMemorySink()
        registry = MetricsRegistry()
        session = QuerySession(store, seed=5, trace=sink, metrics=registry)
        assert session.default_trace is sink
        assert session.default_metrics is registry
        session.top_k_entropy(1)
        session.filter_entropy(2.5)
        assert registry.counter("queries_total").value == 2.0
        assert sink.kinds().count("query_start") == 2
        assert sink.kinds().count("query_end") == 2

    def test_per_query_override_silences_one_query(self, store):
        sink = InMemorySink()
        session = QuerySession(store, seed=5, trace=sink)
        session.top_k_entropy(1, trace=None)
        assert len(sink) == 0
        session.top_k_entropy(1)
        assert sink.kinds().count("query_start") == 1


class TestCli:
    def test_query_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "query", "topk-entropy", "--dataset", "cdc", "--scale", "0.02",
            "-k", "2", "--seed", "5",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "--emit-metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote {trace_path}" in out
        assert f"wrote {metrics_path}" in out
        assert "metrics: queries_total=1" in out
        lines = trace_path.read_text().splitlines()
        assert json.loads(lines[0]) == header_record()
        assert json.loads(lines[-1])["event"] == "query_end"
        dumped = json.loads(metrics_path.read_text())
        assert dumped["queries_total"]["value"] == 1.0

    def test_metrics_out_prom_renders_prometheus_text(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        code = main([
            "query", "filter-entropy", "--dataset", "cdc", "--scale", "0.02",
            "--eta", "2.0", "--seed", "5", "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE queries_total counter" in text
        assert "queries_total 1" in text

    def test_strict_failure_still_writes_trace_and_metrics(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "query", "topk-entropy", "--dataset", "cdc", "--scale", "0.02",
            "--seed", "5", "--max-sample", "32", "--strict",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 2
        events = [json.loads(l)["event"] for l in trace_path.read_text().splitlines()]
        assert "budget_degradation" in events
        assert events[-1] == "query_end"
        dumped = json.loads(metrics_path.read_text())
        assert dumped["queries_degraded_total"]["value"] == 1.0
