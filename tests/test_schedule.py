"""Unit tests for :mod:`repro.core.schedule`."""

from __future__ import annotations

import math

import pytest

from repro.core.schedule import (
    MIN_INITIAL_SAMPLE,
    SampleSchedule,
    initial_sample_size,
    max_iterations,
)
from repro.exceptions import ParameterError


class TestInitialSampleSize:
    def test_matches_paper_formula(self):
        n, h, pf, u = 1_000_000, 100, 1e-6, 1000
        log2n = math.log2(n)
        expected = math.ceil(
            math.log(h * log2n / pf) * log2n**2 / math.log2(u) ** 2
        )
        assert initial_sample_size(n, h, pf, u) == expected

    def test_clamped_below(self):
        # Huge u_max makes the formula tiny; the floor kicks in.
        assert initial_sample_size(10_000, 2, 0.5, 2**40) == MIN_INITIAL_SAMPLE

    def test_clamped_to_population(self):
        assert initial_sample_size(20, 100, 1e-9, 2) == 20

    def test_constant_dataset_u_max_clamped(self):
        # u_max = 1 would divide by log2(1) = 0.
        assert initial_sample_size(1000, 5, 0.01, 1) >= MIN_INITIAL_SAMPLE

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            initial_sample_size(0, 5, 0.01, 10)
        with pytest.raises(ParameterError):
            initial_sample_size(100, 0, 0.01, 10)
        with pytest.raises(ParameterError):
            initial_sample_size(100, 5, 0.0, 10)


class TestMaxIterations:
    def test_formula(self):
        assert max_iterations(1024, 16) == math.ceil(math.log2(1024 / 16)) + 1

    def test_initial_equals_population(self):
        assert max_iterations(1000, 1000) == 1

    def test_invalid(self):
        with pytest.raises(ParameterError):
            max_iterations(100, 0)
        with pytest.raises(ParameterError):
            max_iterations(100, 101)


class TestGeometricSchedule:
    def test_doubling_ends_at_population(self):
        schedule = SampleSchedule(population_size=1000, initial_size=100)
        assert schedule.sizes == (100, 200, 400, 800, 1000)

    def test_strictly_increasing(self):
        schedule = SampleSchedule(population_size=100_000, initial_size=16)
        sizes = schedule.sizes
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 100_000

    def test_single_step_when_initial_is_population(self):
        schedule = SampleSchedule(population_size=500, initial_size=500)
        assert schedule.sizes == (500,)
        assert schedule.num_iterations == 1

    def test_custom_growth_factor(self):
        schedule = SampleSchedule(
            population_size=1000, initial_size=100, growth_factor=4.0
        )
        assert schedule.sizes == (100, 400, 1000)

    def test_fractional_growth_always_advances(self):
        schedule = SampleSchedule(
            population_size=10, initial_size=2, growth_factor=1.1
        )
        assert schedule.sizes[-1] == 10
        assert all(a < b for a, b in zip(schedule.sizes, schedule.sizes[1:]))

    def test_growth_factor_must_exceed_one(self):
        with pytest.raises(ParameterError):
            SampleSchedule(population_size=100, initial_size=10, growth_factor=1.0)

    def test_invalid_initial(self):
        with pytest.raises(ParameterError):
            SampleSchedule(population_size=100, initial_size=0)
        with pytest.raises(ParameterError):
            SampleSchedule(population_size=100, initial_size=101)


class TestLinearSchedule:
    def test_linear_batches(self):
        schedule = SampleSchedule(
            population_size=1000, initial_size=300, mode="linear"
        )
        assert schedule.sizes == (300, 600, 900, 1000)

    def test_unknown_mode(self):
        with pytest.raises(ParameterError):
            SampleSchedule(population_size=100, initial_size=10, mode="magic")


class TestFailureBudget:
    def test_per_round_failure_sums_to_total(self):
        schedule = SampleSchedule(population_size=1000, initial_size=100)
        pf = 0.01
        per = schedule.per_round_failure(pf, num_attributes=7)
        assert per * schedule.num_iterations * 7 == pytest.approx(pf)

    def test_mi_budget_uses_three_bounds(self):
        schedule = SampleSchedule(population_size=1000, initial_size=100)
        one = schedule.per_round_failure(0.01, 7, bounds_per_attribute=1)
        three = schedule.per_round_failure(0.01, 7, bounds_per_attribute=3)
        assert three == pytest.approx(one / 3)

    def test_invalid_budget_inputs(self):
        schedule = SampleSchedule(population_size=1000, initial_size=100)
        with pytest.raises(ParameterError):
            schedule.per_round_failure(0.0, 5)
        with pytest.raises(ParameterError):
            schedule.per_round_failure(0.1, 0)
        with pytest.raises(ParameterError):
            schedule.per_round_failure(0.1, 5, bounds_per_attribute=0)


class TestForQuery:
    def test_uses_paper_m0_by_default(self):
        schedule = SampleSchedule.for_query(100_000, 50, 0.001, 100)
        assert schedule.initial_size == initial_sample_size(100_000, 50, 0.001, 100)

    def test_initial_override(self):
        schedule = SampleSchedule.for_query(1000, 5, 0.01, 10, initial_size=128)
        assert schedule.initial_size == 128

    def test_override_clamped_to_population(self):
        schedule = SampleSchedule.for_query(100, 5, 0.01, 10, initial_size=5000)
        assert schedule.initial_size == 100
