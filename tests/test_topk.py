"""Tests for SWOPE entropy top-k (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies
from repro.core.schedule import SampleSchedule
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError
from repro.experiments.accuracy import check_top_k_guarantee


class TestBasicBehaviour:
    def test_returns_k_attributes_ordered_by_upper_bound(self, small_store):
        result = swope_top_k_entropy(small_store, k=2, seed=0)
        assert len(result.attributes) == 2
        uppers = [e.upper for e in result.estimates]
        assert uppers == sorted(uppers, reverse=True)

    def test_finds_exact_top_k_on_separated_data(self, small_store):
        # entropies: wide ~7.6 > medium ~5.6 > narrow ~2.0 > skewed ~0.3
        result = swope_top_k_entropy(small_store, k=2, seed=0)
        assert result.attributes == ["wide", "medium"]

    def test_k_larger_than_attribute_count(self, small_store):
        result = swope_top_k_entropy(small_store, k=100, seed=0)
        assert len(result.attributes) == small_store.num_attributes
        assert result.k == 100

    def test_k_equals_one(self, small_store):
        result = swope_top_k_entropy(small_store, k=1, seed=0)
        assert result.attributes == ["wide"]

    def test_restricted_attribute_list(self, small_store):
        result = swope_top_k_entropy(
            small_store, k=1, seed=0, attributes=["narrow", "skewed"]
        )
        assert result.attributes == ["narrow"]

    def test_unknown_attribute_rejected(self, small_store):
        with pytest.raises(SchemaError):
            swope_top_k_entropy(small_store, k=1, attributes=["ghost"])

    def test_invalid_parameters(self, small_store):
        with pytest.raises(ParameterError):
            swope_top_k_entropy(small_store, k=0)
        with pytest.raises(ParameterError):
            swope_top_k_entropy(small_store, k=1, epsilon=0.0)
        with pytest.raises(ParameterError):
            swope_top_k_entropy(small_store, k=1, epsilon=1.0)
        with pytest.raises(ParameterError):
            swope_top_k_entropy(small_store, k=1, failure_probability=2.0)

    def test_deterministic_given_seed(self, small_store):
        a = swope_top_k_entropy(small_store, k=2, seed=42)
        b = swope_top_k_entropy(small_store, k=2, seed=42)
        assert a.attributes == b.attributes
        assert a.stats.final_sample_size == b.stats.final_sample_size

    def test_estimates_within_bounds(self, small_store):
        result = swope_top_k_entropy(small_store, k=3, seed=0)
        for est in result.estimates:
            assert est.lower <= est.estimate <= est.upper


class TestStats:
    def test_stats_populated(self, small_store):
        result = swope_top_k_entropy(small_store, k=2, seed=0)
        stats = result.stats
        assert stats.population_size == small_store.num_rows
        assert 1 <= stats.final_sample_size <= small_store.num_rows
        assert stats.iterations >= 1
        assert stats.cells_scanned > 0
        assert stats.wall_seconds >= 0.0

    def test_never_samples_beyond_population(self, small_store):
        result = swope_top_k_entropy(small_store, k=2, epsilon=0.01, seed=0)
        assert result.stats.final_sample_size <= small_store.num_rows

    def test_larger_epsilon_stops_earlier(self, small_store):
        tight = swope_top_k_entropy(small_store, k=2, epsilon=0.05, seed=0)
        loose = swope_top_k_entropy(small_store, k=2, epsilon=0.8, seed=0)
        assert (
            loose.stats.final_sample_size <= tight.stats.final_sample_size
        )

    def test_pruning_counts_recorded(self, small_store):
        result = swope_top_k_entropy(small_store, k=1, epsilon=0.01, seed=0)
        loose = swope_top_k_entropy(
            small_store, k=1, epsilon=0.01, seed=0, prune=False
        )
        assert loose.stats.candidates_pruned == 0
        assert result.stats.candidates_pruned >= 0

    def test_prune_does_not_change_answer(self, small_store):
        pruned = swope_top_k_entropy(small_store, k=2, epsilon=0.05, seed=7)
        unpruned = swope_top_k_entropy(
            small_store, k=2, epsilon=0.05, seed=7, prune=False
        )
        assert pruned.attributes == unpruned.attributes


class TestGuarantee:
    def test_definition5_holds_on_separated_data(self, small_store):
        epsilon = 0.2
        exact = exact_entropies(small_store)
        for seed in range(5):
            result = swope_top_k_entropy(
                small_store, k=2, epsilon=epsilon, seed=seed
            )
            assert check_top_k_guarantee(result, exact, epsilon) == []

    def test_definition5_holds_with_near_ties(self):
        rng = np.random.default_rng(3)
        n = 4000
        # Two nearly identical high-entropy columns: the exact top-1 set is
        # ambiguous, but Definition 5 must hold for whichever is returned.
        store = ColumnStore(
            {
                "t1": rng.integers(0, 64, n),
                "t2": rng.integers(0, 64, n),
                "low": rng.integers(0, 3, n),
            }
        )
        exact = exact_entropies(store)
        epsilon = 0.3
        for seed in range(5):
            result = swope_top_k_entropy(store, k=1, epsilon=epsilon, seed=seed)
            assert check_top_k_guarantee(result, exact, epsilon) == []

    def test_all_constant_columns(self):
        store = ColumnStore(
            {"c1": np.zeros(100, dtype=int), "c2": np.zeros(100, dtype=int)}
        )
        result = swope_top_k_entropy(store, k=1, seed=0)
        assert len(result.attributes) == 1
        assert result.estimates[0].estimate == pytest.approx(0.0, abs=1e-6)


class TestCustomScheduleAndSampler:
    def test_custom_schedule_respected(self, small_store):
        schedule = SampleSchedule(
            population_size=small_store.num_rows, initial_size=small_store.num_rows
        )
        result = swope_top_k_entropy(small_store, k=2, schedule=schedule, seed=0)
        assert result.stats.iterations == 1
        assert result.stats.final_sample_size == small_store.num_rows

    def test_sequential_sampler(self, small_store):
        sampler = PrefixSampler(small_store, sequential=True)
        result = swope_top_k_entropy(small_store, k=2, sampler=sampler)
        assert result.attributes == ["wide", "medium"]
