"""Tests for SVG plotting and run-comparison (regression) modules."""

from __future__ import annotations

import copy
import xml.etree.ElementTree as ET

import pytest

from repro.exceptions import ParameterError
from repro.experiments.figures import run_figure
from repro.experiments.plotting import figure_svg, save_figure_svg
from repro.experiments.regression import compare_runs


@pytest.fixture(scope="module")
def small_run():
    return run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)


@pytest.fixture(scope="module")
def eps_run():
    return run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)


class TestFigureSvg:
    def test_valid_xml(self, small_run):
        svg = figure_svg(small_run, "seconds")
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_panel_per_dataset(self, small_run):
        svg = figure_svg(small_run)
        # one titled rect frame per dataset panel
        assert svg.count("<rect") == len(small_run.datasets)

    def test_one_polyline_per_algorithm(self, small_run):
        svg = figure_svg(small_run, "cells_scanned")
        assert svg.count("<polyline") == len(small_run.spec.algorithms)

    def test_markers_cover_every_point(self, small_run):
        svg = figure_svg(small_run)
        expected = len(small_run.spec.algorithms) * len(small_run.spec.x_values)
        assert svg.count("<circle") == expected

    def test_legend_names_algorithms(self, small_run):
        svg = figure_svg(small_run)
        for algorithm in small_run.spec.algorithms:
            assert algorithm in svg

    def test_accuracy_metric_linear_axis(self, small_run):
        svg = figure_svg(small_run, "accuracy")
        assert "accuracy" in svg
        ET.fromstring(svg)  # still valid

    def test_unknown_metric_rejected(self, small_run):
        with pytest.raises(ParameterError, match="unknown metric"):
            figure_svg(small_run, "vibes")

    def test_empty_run_rejected(self, small_run):
        empty = copy.copy(small_run)
        empty.points = []
        with pytest.raises(ParameterError, match="no measurements"):
            figure_svg(empty)

    def test_save_to_file(self, small_run, tmp_path):
        path = tmp_path / "fig.svg"
        save_figure_svg(small_run, path, metric="seconds")
        assert path.read_text().startswith("<svg")

    def test_single_algorithm_sweep(self, eps_run):
        svg = figure_svg(eps_run, "cells_scanned")
        assert svg.count("<polyline") == 1


class TestCompareRuns:
    def test_identical_runs_ok(self, small_run):
        comparison = compare_runs(small_run, small_run)
        assert comparison.ok
        assert all(d.cells_ratio == pytest.approx(1.0) for d in comparison.deltas)
        assert "OK" in comparison.summary()

    def test_cost_regression_detected(self, small_run):
        worse = copy.deepcopy(small_run)
        for point in worse.points:
            if point.algorithm == "swope":
                point.cells_scanned *= 2.0
        comparison = compare_runs(small_run, worse, cells_tolerance=0.25)
        assert not comparison.ok
        assert all(d.algorithm == "swope" for d in comparison.regressions)
        assert "regression" in comparison.summary()

    def test_accuracy_regression_detected(self, small_run):
        worse = copy.deepcopy(small_run)
        worse.points[0].accuracy -= 0.5
        comparison = compare_runs(small_run, worse)
        assert not comparison.ok
        assert len(comparison.regressions) == 1

    def test_improvements_not_flagged(self, small_run):
        better = copy.deepcopy(small_run)
        for point in better.points:
            point.cells_scanned *= 0.5
        assert compare_runs(small_run, better).ok

    def test_tolerance_respected(self, small_run):
        slightly_worse = copy.deepcopy(small_run)
        for point in slightly_worse.points:
            point.cells_scanned *= 1.1
        assert compare_runs(small_run, slightly_worse, cells_tolerance=0.25).ok
        assert not compare_runs(
            small_run, slightly_worse, cells_tolerance=0.05
        ).ok

    def test_different_figures_rejected(self, small_run, eps_run):
        with pytest.raises(ParameterError, match="cannot compare"):
            compare_runs(small_run, eps_run)

    def test_disjoint_points_rejected(self, small_run):
        other = copy.deepcopy(small_run)
        for point in other.points:
            point.dataset = "never-seen"
        with pytest.raises(ParameterError, match="share no"):
            compare_runs(small_run, other)

    def test_subset_comparison_allowed(self, small_run):
        subset = copy.deepcopy(small_run)
        subset.points = subset.points[:3]
        comparison = compare_runs(small_run, subset)
        assert len(comparison.deltas) == 3
