"""Tests for conditional mutual information and the CMIM selector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.feature_selection import cmim_select
from repro.baselines.exact import exact_joint_entropy, exact_mutual_information
from repro.core.conditional import (
    conditional_mutual_information,
    joint_entropy_of,
)
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError


@pytest.fixture(scope="module")
def chain_store():
    """A Markov chain X -> Y -> Z (CMI identities are known exactly).

    Y is a noisy copy of X, Z a noisy copy of Y, W independent.
    """
    rng = np.random.default_rng(31)
    n = 12_000
    x = rng.integers(0, 4, n)
    y = np.where(rng.random(n) < 0.8, x, rng.integers(0, 4, n))
    z = np.where(rng.random(n) < 0.8, y, rng.integers(0, 4, n))
    w = rng.integers(0, 4, n)
    return ColumnStore({"x": x, "y": y, "z": z, "w": w})


class TestJointEntropyOf:
    def test_single_attribute_is_marginal_entropy(self, chain_store):
        from repro.baselines.exact import exact_entropy

        assert joint_entropy_of(chain_store, ["x"]) == pytest.approx(
            exact_entropy(chain_store, "x")
        )

    def test_pair_matches_pairwise_implementation(self, chain_store):
        assert joint_entropy_of(chain_store, ["x", "y"]) == pytest.approx(
            exact_joint_entropy(chain_store, "x", "y")
        )

    def test_order_invariant(self, chain_store):
        a = joint_entropy_of(chain_store, ["x", "y", "z"])
        b = joint_entropy_of(chain_store, ["z", "x", "y"])
        assert a == pytest.approx(b)

    def test_monotone_in_attribute_set(self, chain_store):
        # H(X) <= H(X,Y) <= H(X,Y,Z)
        h1 = joint_entropy_of(chain_store, ["x"])
        h2 = joint_entropy_of(chain_store, ["x", "y"])
        h3 = joint_entropy_of(chain_store, ["x", "y", "z"])
        assert h1 <= h2 + 1e-9 <= h3 + 2e-9

    def test_duplicates_rejected(self, chain_store):
        with pytest.raises(ParameterError, match="duplicate"):
            joint_entropy_of(chain_store, ["x", "x"])

    def test_unknown_rejected(self, chain_store):
        with pytest.raises(SchemaError):
            joint_entropy_of(chain_store, ["ghost"])

    def test_empty_rejected(self, chain_store):
        with pytest.raises(ParameterError):
            joint_entropy_of(chain_store, [])

    def test_sparse_path_matches_dense(self):
        # Force the sparse (unique-based) path with huge nominal supports.
        rng = np.random.default_rng(0)
        n = 2000
        store = ColumnStore(
            {
                "a": rng.integers(0, 900, n),
                "b": rng.integers(0, 900, n),
                "c": rng.integers(0, 900, n),
            },
            support_sizes={"a": 1000, "b": 1000, "c": 1000},
        )
        # radix 1e9 > dense limit -> sparse; compare against a pairwise
        # dense computation of the same quantity using smaller radix.
        h_abc = joint_entropy_of(store, ["a", "b", "c"])
        codes = (
            store.column("a").astype(np.int64) * 1000 + store.column("b")
        ) * 1000 + store.column("c")
        _, counts = np.unique(codes, return_counts=True)
        from repro.core.estimators import entropy_from_counts

        assert h_abc == pytest.approx(entropy_from_counts(counts))


class TestConditionalMI:
    def test_chain_rule_identity(self, chain_store):
        # I(X;Z|Y) should be ~0 for a Markov chain X -> Y -> Z.
        cmi = conditional_mutual_information(chain_store, "x", "z", "y")
        assert 0.0 <= cmi < 0.02

    def test_conditioning_on_independent_preserves_mi(self, chain_store):
        mi = exact_mutual_information(chain_store, "x", "y")
        cmi = conditional_mutual_information(chain_store, "x", "y", "w")
        assert cmi == pytest.approx(mi, abs=0.02)

    def test_non_negative(self, chain_store):
        for triple in [("x", "y", "z"), ("y", "z", "x"), ("x", "w", "y")]:
            assert conditional_mutual_information(chain_store, *triple) >= 0.0

    def test_symmetric_in_first_two(self, chain_store):
        a = conditional_mutual_information(chain_store, "x", "z", "y")
        b = conditional_mutual_information(chain_store, "z", "x", "y")
        assert a == pytest.approx(b, abs=1e-9)

    def test_distinct_attributes_required(self, chain_store):
        with pytest.raises(ParameterError, match="distinct"):
            conditional_mutual_information(chain_store, "x", "x", "y")


class TestCmimSelect:
    @pytest.fixture(scope="class")
    def cmim_store(self):
        """Label depends on x1 and x2; x1_dup duplicates x1.

        CMIM must prefer {x1-or-dup, x2} over {x1, x1_dup}: after picking
        x1, I(x1_dup; label | x1) = 0 exactly.
        """
        rng = np.random.default_rng(41)
        n = 10_000
        x1 = rng.integers(0, 4, n)
        x2 = rng.integers(0, 4, n)
        label = (x1 >= 2).astype(np.int64) * 2 + (x2 >= 2).astype(np.int64)
        flip = rng.random(n) < 0.03
        label = np.where(flip, rng.integers(0, 4, n), label)
        return ColumnStore(
            {
                "x1": x1,
                "x1_dup": x1.copy(),
                "x2": x2,
                "noise": rng.integers(0, 4, n),
                "label": label,
            }
        )

    @pytest.mark.parametrize("engine", ["swope", "exact"])
    def test_skips_redundant_duplicate(self, cmim_store, engine):
        result = cmim_select(cmim_store, "label", 2, engine=engine, seed=0)
        assert len(result.features) == 2
        assert not {"x1", "x1_dup"} <= set(result.features)
        assert "x2" in result.features

    def test_mrmr_comparison_same_data(self, cmim_store):
        # Both criteria should dodge the duplicate here; CMIM does so via
        # conditional MI (exactly 0), mRMR via subtraction.
        from repro.applications.feature_selection import mrmr_select

        cmim = cmim_select(cmim_store, "label", 2, engine="exact")
        mrmr = mrmr_select(cmim_store, "label", 2, engine="exact")
        normalise = lambda fs: {"x1" if f == "x1_dup" else f for f in fs}
        assert normalise(cmim.features) == normalise(mrmr.features)

    def test_parameter_validation(self, cmim_store):
        with pytest.raises(ParameterError):
            cmim_select(cmim_store, "label", 0)
        with pytest.raises(ParameterError, match="shortlist"):
            cmim_select(cmim_store, "label", 3, shortlist=1)
        with pytest.raises(ParameterError, match="engine"):
            cmim_select(cmim_store, "label", 1, engine="magic")

    def test_cells_accounted(self, cmim_store):
        result = cmim_select(cmim_store, "label", 2, engine="exact")
        assert result.cells_scanned > 0
        assert result.details["shortlist"] == 6.0
