"""Executable-documentation test: every tutorial snippet must run.

Extracts the ``python`` code fences from docs/TUTORIAL.md and executes
them in order in one shared namespace (they build on each other), so the
tutorial can never drift from the API.
"""

from __future__ import annotations

import contextlib
import io
import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


@pytest.fixture(scope="module")
def snippets() -> list[str]:
    text = TUTORIAL.read_text()
    found = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(found) >= 8, "tutorial lost its code fences"
    return found


def test_tutorial_snippets_execute_in_order(snippets):
    namespace: dict = {}
    captured = io.StringIO()
    with contextlib.redirect_stdout(captured):
        for index, snippet in enumerate(snippets):
            try:
                exec(compile(snippet, f"<tutorial-{index}>", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure reporting
                pytest.fail(f"tutorial snippet {index} failed: {exc}\n{snippet}")
    output = captured.getvalue()
    # The tutorial's printed walkthrough should include the dataset banner
    # and at least one answer list.
    assert "Dataset(" in output
    assert "[" in output


def test_tutorial_mentions_all_doc_siblings():
    text = TUTORIAL.read_text()
    for sibling in ("THEORY.md", "DATAGEN.md", "API.md"):
        assert sibling in text
