"""Tests for SWOPE mutual-information top-k (Algorithm 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_mutual_informations
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError
from repro.experiments.accuracy import check_top_k_guarantee


class TestBasicBehaviour:
    def test_copy_beats_noise_beats_independent(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=2, seed=0
        )
        assert result.attributes == ["copy", "noisy"]
        assert result.target == "target"

    def test_target_never_in_answer(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=3, seed=0
        )
        assert "target" not in result.attributes

    def test_k_clamped_to_candidates(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=50, seed=0
        )
        assert len(result.attributes) == 3

    def test_explicit_candidates(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=1, seed=0,
            candidates=["noisy", "independent"],
        )
        assert result.attributes == ["noisy"]

    def test_unknown_target_rejected(self, correlated_store):
        with pytest.raises(SchemaError):
            swope_top_k_mutual_information(correlated_store, "ghost", k=1)

    def test_target_in_candidates_rejected(self, correlated_store):
        with pytest.raises(ParameterError):
            swope_top_k_mutual_information(
                correlated_store, "target", k=1, candidates=["target", "copy"]
            )

    def test_unknown_candidate_rejected(self, correlated_store):
        with pytest.raises(SchemaError):
            swope_top_k_mutual_information(
                correlated_store, "target", k=1, candidates=["ghost"]
            )

    def test_single_attribute_store_rejected(self):
        store = ColumnStore({"only": np.zeros(10, dtype=int)})
        with pytest.raises(ParameterError, match="at least one candidate"):
            swope_top_k_mutual_information(store, "only", k=1)

    def test_deterministic_given_seed(self, correlated_store):
        a = swope_top_k_mutual_information(correlated_store, "target", k=2, seed=5)
        b = swope_top_k_mutual_information(correlated_store, "target", k=2, seed=5)
        assert a.attributes == b.attributes
        assert a.stats.cells_scanned == b.stats.cells_scanned


class TestStatsAndBounds:
    def test_estimates_within_bounds(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=3, seed=0
        )
        for est in result.estimates:
            assert est.lower <= est.estimate <= est.upper
            assert est.lower >= 0.0

    def test_cells_include_joint_reads(self, correlated_store):
        result = swope_top_k_mutual_information(
            correlated_store, "target", k=1, seed=0
        )
        # At minimum: target column + each candidate + each pair at M0.
        m0 = result.stats.final_sample_size
        assert result.stats.cells_scanned >= m0


class TestGuarantee:
    def test_definition5_holds(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        epsilon = 0.5
        for seed in range(4):
            result = swope_top_k_mutual_information(
                correlated_store, "target", k=2, epsilon=epsilon, seed=seed
            )
            assert check_top_k_guarantee(result, exact, epsilon) == []

    def test_independent_columns_only(self):
        rng = np.random.default_rng(9)
        n = 3000
        store = ColumnStore(
            {
                "t": rng.integers(0, 4, n),
                "a": rng.integers(0, 4, n),
                "b": rng.integers(0, 4, n),
            }
        )
        result = swope_top_k_mutual_information(store, "t", k=1, seed=0)
        assert len(result.attributes) == 1
        # True MI is ~0; any answer is acceptable, the estimate must be small.
        assert result.estimates[0].estimate < 0.5
