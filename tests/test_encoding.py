"""Unit tests for :mod:`repro.data.encoding`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.encoding import CategoricalEncoder, encode_column, encode_table
from repro.exceptions import EncodingError


class TestEncodeColumn:
    def test_first_appearance_order(self):
        codes, vocab = encode_column(["b", "a", "b", "c"])
        assert codes.tolist() == [0, 1, 0, 2]
        assert vocab == ["b", "a", "c"]

    def test_empty_column(self):
        codes, vocab = encode_column([])
        assert codes.size == 0
        assert vocab == []

    def test_mixed_hashable_types(self):
        codes, vocab = encode_column([None, 1, "1", None])
        assert codes.tolist() == [0, 1, 2, 0]
        assert vocab == [None, 1, "1"]

    def test_numpy_input(self):
        codes, vocab = encode_column(np.array([5, 7, 5]))
        assert codes.tolist() == [0, 1, 0]

    def test_unhashable_value_raises(self):
        with pytest.raises(EncodingError, match="unhashable"):
            encode_column([[1, 2], [3]])

    def test_deterministic(self):
        first, _ = encode_column(["x", "y", "x"])
        second, _ = encode_column(["x", "y", "x"])
        assert first.tolist() == second.tolist()


class TestCategoricalEncoder:
    def test_fit_transform_builds_store(self):
        store, encoder = encode_table({"color": ["r", "g", "r"], "n": [1, 2, 3]})
        assert store.num_rows == 3
        assert store.support_size("color") == 2
        assert store.support_size("n") == 3
        assert encoder.vocabularies["color"] == ["r", "g"]

    def test_decode_round_trip(self):
        store, encoder = encode_table({"color": ["r", "g", "b", "g"]})
        codes = store.column("color")
        assert encoder.decode("color", codes) == ["r", "g", "b", "g"]

    def test_decode_value(self):
        _, encoder = encode_table({"c": ["x", "y"]})
        assert encoder.decode_value("c", 1) == "y"

    def test_decode_unknown_attribute_raises(self):
        encoder = CategoricalEncoder()
        with pytest.raises(EncodingError, match="never encoded"):
            encoder.decode("ghost", [0])

    def test_decode_out_of_range_raises(self):
        _, encoder = encode_table({"c": ["x"]})
        with pytest.raises(EncodingError, match="out of range"):
            encoder.decode("c", [5])

    def test_decode_negative_raises(self):
        _, encoder = encode_table({"c": ["x"]})
        with pytest.raises(EncodingError, match="out of range"):
            encoder.decode("c", [-1])

    def test_multiple_tables_accumulate_vocabularies(self):
        encoder = CategoricalEncoder()
        encoder.fit_transform({"a": ["x"]})
        encoder.fit_transform({"b": ["y"]})
        assert set(encoder.vocabularies) == {"a", "b"}
