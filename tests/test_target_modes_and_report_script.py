"""Tests for MI target modes and the bench-report script."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.exceptions import ParameterError
from repro.experiments.figures import run_figure
from repro.synth.datasets import load_dataset

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS_DIR))


class TestRandomTargets:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("cdc", scale=0.01)

    def test_deterministic_given_seed(self, dataset):
        assert dataset.random_targets(5, seed=3) == dataset.random_targets(5, seed=3)

    def test_distinct_and_valid(self, dataset):
        targets = dataset.random_targets(10, seed=1)
        assert len(set(targets)) == 10
        assert all(t in dataset.store for t in targets)

    def test_count_validation(self, dataset):
        with pytest.raises(ParameterError):
            dataset.random_targets(0)
        with pytest.raises(ParameterError):
            dataset.random_targets(dataset.store.num_attributes + 1)

    def test_run_figure_random_mode(self):
        run = run_figure(
            "fig5", datasets=["cdc"], scale=0.01, num_targets=1,
            seed=0, target_mode="random",
        )
        assert len(run.points) == 15  # 5 ks x 3 algorithms

    def test_run_figure_unknown_mode_rejected(self):
        with pytest.raises(ParameterError, match="target_mode"):
            run_figure("fig5", datasets=["cdc"], scale=0.01, target_mode="magic")

    def test_engineered_and_random_may_differ(self, dataset):
        engineered = set(dataset.mi_targets)
        random = set(dataset.random_targets(5, seed=9))
        # Not a strict inequality (random could hit a base), but the
        # random picks must not be *defined* by the engineered list.
        assert random - engineered or engineered - random


class TestBenchReportScript:
    @pytest.fixture()
    def dump(self, tmp_path):
        payload = {
            "benchmarks": [
                {
                    "name": "test_fig01_entropy_topk_time[1-swope-cdc]",
                    "stats": {"mean": 0.0123},
                    "extra_info": {"cells_scanned": 1000, "accuracy": 1.0},
                },
                {
                    "name": "test_fig01_entropy_topk_time[1-exact-cdc]",
                    "stats": {"mean": 0.5},
                    "extra_info": {"cells_scanned": 30000, "accuracy": 1.0},
                },
                {
                    "name": "test_other_bench",
                    "stats": {"mean": 120.0},
                    "extra_info": {},
                },
            ]
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(payload))
        return path

    def test_render_groups_and_rows(self, dump):
        import bench_report

        text = bench_report.render(json.loads(dump.read_text()))
        assert "fig01_entropy_topk_time (2 benchmarks)" in text
        assert "1-swope-cdc" in text
        assert "cells_scanned" in text
        assert "30,000" in text
        assert "12.3ms" in text
        assert "120.0s" in text  # >100s path

    def test_main_prints(self, dump, capsys):
        import bench_report

        assert bench_report.main([str(dump)]) == 0
        assert "fig01" in capsys.readouterr().out

    def test_main_missing_file(self, tmp_path, capsys):
        import bench_report

        assert bench_report.main([str(tmp_path / "ghost.json")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_main_invalid_json(self, tmp_path, capsys):
        import bench_report

        path = tmp_path / "bad.json"
        path.write_text("{nope")
        assert bench_report.main([str(path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err
