"""Property-based tests of the full query algorithms (hypothesis).

Fuzzes the four SWOPE queries and the two exact-answer baselines over
randomly-shaped small stores — skewed columns, constants, binary flags,
duplicated columns, tiny supports — and asserts the *contracts*, not
point answers:

* SWOPE answers always satisfy Definitions 5/6 against exact scores;
* the baselines always return the exact answer;
* invariants of the result objects hold (ordering, bounds, stats).

Sizes are deliberately tiny (hundreds of rows) so hypothesis can explore
many shapes; the statistical heavy lifting lives in test_guarantees.py.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
)

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def stores(draw) -> ColumnStore:
    """A random small store with adversarially mixed column shapes."""
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    num_rows = draw(st.integers(min_value=50, max_value=400))
    num_columns = draw(st.integers(min_value=2, max_value=6))
    columns: dict[str, np.ndarray] = {}
    for index in range(num_columns):
        kind = draw(st.sampled_from(["uniform", "skewed", "constant", "binary", "dup"]))
        if kind == "constant":
            col = np.zeros(num_rows, dtype=np.int64)
        elif kind == "binary":
            col = (rng.random(num_rows) < draw(st.floats(0.01, 0.99))).astype(np.int64)
        elif kind == "skewed":
            u = draw(st.integers(2, 30))
            col = np.minimum(
                rng.geometric(draw(st.floats(0.05, 0.9)), num_rows) - 1, u - 1
            ).astype(np.int64)
        elif kind == "dup" and columns:
            col = next(iter(columns.values())).copy()
        else:
            u = draw(st.integers(2, 50))
            col = rng.integers(0, u, num_rows)
        columns[f"c{index}"] = col
    return ColumnStore(columns)


class TestTopKContract:
    @given(store=stores(), k=st.integers(1, 4), epsilon=st.floats(0.05, 0.9))
    @_SETTINGS
    def test_definition5_always_holds(self, store, k, epsilon):
        exact = exact_entropies(store)
        result = swope_top_k_entropy(store, k, epsilon=epsilon, seed=0)
        assert check_top_k_guarantee(result, exact, epsilon) == []
        assert len(result.attributes) == min(k, store.num_attributes)
        uppers = [e.upper for e in result.estimates]
        assert uppers == sorted(uppers, reverse=True)
        for est in result.estimates:
            assert est.lower <= est.estimate <= est.upper
        assert 1 <= result.stats.final_sample_size <= store.num_rows

    @given(store=stores(), k=st.integers(1, 3))
    @_SETTINGS
    def test_entropy_rank_always_exact(self, store, k):
        exact = exact_entropies(store)
        result = entropy_rank_top_k(store, k, seed=0)
        k_eff = min(k, store.num_attributes)
        returned_scores = sorted((exact[a] for a in result.attributes), reverse=True)
        true_scores = sorted(exact.values(), reverse=True)[:k_eff]
        # With exact ties the chosen *names* may differ; the score
        # multiset must match exactly.
        assert returned_scores == pytest.approx(true_scores, abs=1e-9)


class TestFilterContract:
    @given(
        store=stores(),
        threshold=st.floats(0.0, 6.0),
        epsilon=st.floats(0.05, 0.9),
    )
    @_SETTINGS
    def test_definition6_always_holds(self, store, threshold, epsilon):
        exact = exact_entropies(store)
        result = swope_filter_entropy(store, threshold, epsilon=epsilon, seed=0)
        assert check_filter_guarantee(result, exact, epsilon) == []
        assert set(result.estimates) == set(store.attributes)

    @given(store=stores(), threshold=st.floats(0.0, 6.0))
    @_SETTINGS
    def test_entropy_filter_always_exact(self, store, threshold):
        exact = exact_entropies(store)
        result = entropy_filter(store, threshold, seed=0)
        expected = {a for a, s in exact.items() if s >= threshold}
        assert result.answer_set() == expected


class TestMIContract:
    @given(store=stores(), epsilon=st.floats(0.2, 0.9))
    @_SETTINGS
    def test_mi_topk_definition5(self, store, epsilon):
        target = store.attributes[0]
        if store.num_attributes < 2:
            return
        exact = exact_mutual_informations(store, target)
        result = swope_top_k_mutual_information(
            store, target, 1, epsilon=epsilon, seed=0
        )
        assert check_top_k_guarantee(result, exact, epsilon) == []
        assert target not in result.attributes
