"""Tests for the newer CLI subcommands: select, compare, figure --svg/--save."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestSelectCommand:
    def test_mrmr(self, capsys):
        code = main(
            ["select", "mrmr", "--dataset", "cdc", "--scale", "0.01", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mrmr selected 3 features" in out
        assert "cells scanned" in out

    def test_relevance(self, capsys):
        code = main(
            ["select", "relevance", "--dataset", "cdc", "--scale", "0.01",
             "-k", "2", "--engine", "exact"]
        )
        assert code == 0
        assert "engine: exact" in capsys.readouterr().out

    def test_cmim(self, capsys):
        code = main(
            ["select", "cmim", "--dataset", "cdc", "--scale", "0.01", "-k", "2"]
        )
        assert code == 0
        assert "cmim selected 2 features" in capsys.readouterr().out

    def test_explicit_label(self, capsys):
        code = main(
            ["select", "relevance", "--dataset", "cdc", "--scale", "0.01",
             "-k", "1", "--label", "mi_base_01"]
        )
        assert code == 0
        assert "mi_base_01" in capsys.readouterr().out

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["select", "magic"])


class TestFigureArtifacts:
    def test_svg_and_save(self, tmp_path, capsys):
        svg_path = tmp_path / "fig.svg"
        json_path = tmp_path / "run.json"
        code = main(
            ["figure", "fig9", "--datasets", "cdc", "--scale", "0.01",
             "--svg", str(svg_path), "--save", str(json_path)]
        )
        assert code == 0
        assert svg_path.read_text().startswith("<svg")
        payload = json.loads(json_path.read_text())
        assert payload["figure"] == "fig9"
        out = capsys.readouterr().out
        assert f"wrote {svg_path}" in out

    def test_svg_metric_choice(self, tmp_path):
        svg_path = tmp_path / "acc.svg"
        code = main(
            ["figure", "fig9", "--datasets", "cdc", "--scale", "0.01",
             "--svg", str(svg_path), "--svg-metric", "accuracy"]
        )
        assert code == 0
        assert "accuracy" in svg_path.read_text()


class TestCompareCommand:
    @pytest.fixture()
    def saved_run(self, tmp_path):
        path = tmp_path / "ref.json"
        main(
            ["figure", "fig9", "--datasets", "cdc", "--scale", "0.01",
             "--save", str(path)]
        )
        return path

    def test_identical_runs_pass(self, saved_run, capsys):
        code = main(["compare", str(saved_run), str(saved_run)])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, saved_run, tmp_path, capsys):
        payload = json.loads(saved_run.read_text())
        for point in payload["points"]:
            point["cells_scanned"] *= 10
        worse = tmp_path / "worse.json"
        worse.write_text(json.dumps(payload))
        code = main(["compare", str(saved_run), str(worse)])
        assert code == 1
        assert "regression" in capsys.readouterr().out

    def test_missing_file_is_handled(self, tmp_path, capsys):
        code = main(["compare", str(tmp_path / "ghost.json"), str(tmp_path / "g2.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFigureLatexFlag:
    def test_latex_artifact(self, tmp_path):
        tex_path = tmp_path / "fig.tex"
        code = main(
            ["figure", "fig9", "--datasets", "cdc", "--scale", "0.01",
             "--latex", str(tex_path)]
        )
        assert code == 0
        tex = tex_path.read_text()
        assert "\\begin{tabular}" in tex
        assert "swope" in tex


class TestDescribeCommand:
    def test_describe(self, capsys):
        code = main(["describe", "--dataset", "cdc", "--scale", "0.01", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top_twin" in out
        assert "entropy" in out

    def test_describe_sort_by_name(self, capsys):
        code = main(
            ["describe", "--dataset", "cdc", "--scale", "0.01",
             "--top", "3", "--sort", "name"]
        )
        assert code == 0
        assert "ent_anchor_00" in capsys.readouterr().out
