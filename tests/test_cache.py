"""Tests for the persistent cross-plan cache (``repro.cache``).

Covers the three layers the ISSUE's bit-identity gate cares about:

* the on-disk partition format — roundtrip, plus every degradation path
  (corruption, schema skew, checksum mismatch, foreign partition) must
  fall back to an *empty* partition, never an error;
* executor integration — a cache-warm run produces byte-identical
  answers to the cold run at zero scanned cells, counter blocks
  warm-start fresh queries, and metrics reconcile against RunStats;
* semantic reuse — dominated requests (``k′ <= k``, ``η′ >= η``) are
  served from a stored history bit-identically to a fresh run.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cache import (
    CACHE_FORMAT,
    CACHE_SCHEMA_VERSION,
    CachePartition,
    PlanCache,
    partition_filename,
)
from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.core.results import GuaranteeStatus
from repro.durability.checkpoint import result_to_payload
from repro.exceptions import ParameterError
from repro.obs.metrics import MetricsRegistry
from repro.data.column_store import ColumnStore

SEED = 11


def _store() -> ColumnStore:
    rng = np.random.default_rng(42)
    n = 600
    target = rng.integers(0, 5, n)
    keep = rng.random(n) < 0.7
    return ColumnStore(
        {
            "wide": rng.integers(0, 32, n),
            "medium": rng.integers(0, 8, n),
            "narrow": rng.integers(0, 3, n),
            "target": target,
            "noisy": np.where(keep, target, rng.integers(0, 5, n)),
        }
    )


def _specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=2, epsilon=0.1, prune=False),
        QuerySpec(kind="filter", score="entropy", threshold=2.0, epsilon=0.1),
        QuerySpec(
            kind="top_k", score="mutual_information", k=2, epsilon=0.5,
            target="target", prune=False,
        ),
    ]


def _payloads(result) -> list[dict]:
    """Answer payloads with work accounting stripped.

    A served answer legitimately differs from the run that produced it
    in ``cells_scanned``/``cells_saved``/timings — the bit-identity gate
    is about the *answer*: attributes, estimates, bounds, guarantee.
    """
    payloads = []
    for name in result:
        payload = result_to_payload(result[name])
        payload.pop("stats")
        payloads.append(payload)
    return payloads


def _partition_path(store: ColumnStore, directory: Path, seed: int = SEED) -> Path:
    executor = PlanExecutor(store, seed=seed)
    return directory / partition_filename(
        executor._store_fingerprint(), executor._sampler.shuffle_fingerprint()
    )


# ----------------------------------------------------------------------
# Partition store: roundtrip and degradation paths
# ----------------------------------------------------------------------


def test_partition_roundtrip(tmp_path: Path) -> None:
    store = _store()
    cache = PlanCache(tmp_path)
    executor = PlanExecutor(store, seed=SEED, cache=cache)
    cold = executor.execute(plan_queries(store, _specs()))

    path = _partition_path(store, tmp_path)
    assert path.exists()
    document = json.loads(path.read_text())
    assert document["format"] == CACHE_FORMAT
    assert document["schema_version"] == CACHE_SCHEMA_VERSION

    # A fresh cache over the same directory serves every answer back.
    warm_exec = PlanExecutor(store, seed=SEED, cache=PlanCache(tmp_path))
    warm = warm_exec.execute(plan_queries(store, _specs()))
    assert _payloads(warm) == _payloads(cold)
    assert warm.stats.cells_scanned == 0


def test_in_memory_cache_flush_is_noop(tmp_path: Path) -> None:
    store = _store()
    cache = PlanCache()
    PlanExecutor(store, seed=SEED, cache=cache).execute(
        plan_queries(store, _specs()[:1])
    )
    cache.flush()  # no directory: nothing written anywhere
    assert list(tmp_path.iterdir()) == []


@pytest.mark.parametrize(
    "tamper",
    ["garbage", "wrong_format", "stale_schema", "bad_checksum", "foreign"],
)
def test_defective_partition_degrades_to_cold(tmp_path: Path, tamper: str) -> None:
    store = _store()
    spec = _specs()[0]
    cold_exec = PlanExecutor(store, seed=SEED, cache=PlanCache(tmp_path))
    cold = cold_exec.execute(plan_queries(store, [spec]))
    path = _partition_path(store, tmp_path)
    document = json.loads(path.read_text())

    if tamper == "garbage":
        path.write_text("{not json")
    elif tamper == "wrong_format":
        document["format"] = "something-else"
        path.write_text(json.dumps(document))
    elif tamper == "stale_schema":
        document["schema_version"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(document))
    elif tamper == "bad_checksum":
        document["payload"]["answers"] = []
        path.write_text(json.dumps(document))  # sha256 now stale
    elif tamper == "foreign":
        document["payload"]["fingerprint"] = "0" * 64
        # Re-seal so only the partition identity is wrong.
        import hashlib

        canonical = json.dumps(
            document["payload"], sort_keys=True, separators=(",", ":")
        )
        document["sha256"] = hashlib.sha256(canonical.encode()).hexdigest()
        path.write_text(json.dumps(document))

    # The defective file must behave exactly like no cache at all: the
    # run goes cold (scans cells) but still lands on the same answer.
    warm_exec = PlanExecutor(store, seed=SEED, cache=PlanCache(tmp_path))
    warm = warm_exec.execute(plan_queries(store, [spec]))
    assert warm.stats.cells_scanned > 0
    assert _payloads(warm) == _payloads(cold)


def test_partition_requires_fingerprints() -> None:
    with pytest.raises(TypeError):
        CachePartition("fp", "shuffle")  # type: ignore[misc]
    with pytest.raises(TypeError):
        PlanCache().partition("fp", "shuffle")  # type: ignore[misc]


def test_executor_rejects_cache_and_cache_dir(tmp_path: Path) -> None:
    with pytest.raises(ParameterError):
        PlanExecutor(_store(), seed=SEED, cache=PlanCache(), cache_dir=tmp_path)


# ----------------------------------------------------------------------
# Executor integration: the bit-identity gate
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend", ["numpy", "threads"])
def test_cold_warm_bit_identity(tmp_path: Path, backend: str) -> None:
    store = _store()
    cold_exec = PlanExecutor(
        store, seed=SEED, backend=backend, cache_dir=tmp_path
    )
    cold = cold_exec.execute(plan_queries(store, _specs()))
    assert cold.stats.cells_scanned > 0

    warm_exec = PlanExecutor(
        store, seed=SEED, backend=backend, cache_dir=tmp_path
    )
    warm = warm_exec.execute(plan_queries(store, _specs()))
    assert warm.stats.cells_scanned == 0
    assert _payloads(warm) == _payloads(cold)


def test_counter_blocks_warm_start_new_queries(tmp_path: Path) -> None:
    store = _store()
    # Cold: a top-k entropy query counts every candidate marginal.
    cold = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    cold.execute(
        plan_queries(
            store,
            [QuerySpec(kind="top_k", score="entropy", k=2, epsilon=0.1,
                       prune=False)],
        )
    )
    # Warm: a *different* query (never cached as an answer) over the same
    # attributes seeds its counters from the cached blocks.
    warm = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    result = warm.execute(
        plan_queries(
            store,
            [QuerySpec(kind="filter", score="entropy", threshold=1.5,
                       epsilon=0.1)],
        )
    )
    (stats,) = [result[name].stats for name in result]
    assert stats.cells_saved > 0
    # Both paths agree with a cache-free run, byte for byte.
    bare = PlanExecutor(store, seed=SEED)
    fresh = bare.execute(
        plan_queries(
            store,
            [QuerySpec(kind="filter", score="entropy", threshold=1.5,
                       epsilon=0.1)],
        )
    )
    assert _payloads(result) == _payloads(fresh)


def test_metrics_reconcile_with_run_stats(tmp_path: Path) -> None:
    store = _store()
    PlanExecutor(store, seed=SEED, cache_dir=tmp_path).execute(
        plan_queries(store, _specs())
    )
    registry = MetricsRegistry()
    warm_exec = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    warm = warm_exec.execute(plan_queries(store, _specs()), metrics=registry)
    assert registry.counter("cache_lookups_total").value == len(_specs())
    assert registry.counter("cache_hits_total").value == len(_specs())
    assert registry.counter("cache_misses_total").value == 0
    saved = sum(warm[name].stats.cells_saved for name in warm)
    assert registry.counter("cache_cells_saved_total").value == saved
    assert saved > 0


def test_cold_run_records_misses(tmp_path: Path) -> None:
    store = _store()
    registry = MetricsRegistry()
    PlanExecutor(store, seed=SEED, cache_dir=tmp_path).execute(
        plan_queries(store, _specs()), metrics=registry
    )
    assert registry.counter("cache_lookups_total").value == len(_specs())
    assert registry.counter("cache_misses_total").value == len(_specs())
    assert registry.counter("cache_hits_total").value == 0


# ----------------------------------------------------------------------
# Semantic reuse
# ----------------------------------------------------------------------


def test_semantic_topk_smaller_k_served_bit_identical(tmp_path: Path) -> None:
    store = _store()
    tk3 = QuerySpec(kind="top_k", score="entropy", k=3, epsilon=0.1, prune=False)
    tk1 = QuerySpec(kind="top_k", score="entropy", k=1, epsilon=0.1, prune=False)
    PlanExecutor(store, seed=SEED, cache_dir=tmp_path).execute(
        plan_queries(store, [tk3])
    )
    registry = MetricsRegistry()
    served_exec = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    served = served_exec.execute(plan_queries(store, [tk1]), metrics=registry)
    assert served.stats.cells_scanned == 0
    assert registry.counter("cache_answers_reused_total").value == 1

    fresh = PlanExecutor(store, seed=SEED).execute(plan_queries(store, [tk1]))
    assert _payloads(served) == _payloads(fresh)


def test_semantic_filter_higher_threshold_served(tmp_path: Path) -> None:
    store = _store()
    # η = 5.2 sits above every attribute's entropy, so the stored run
    # excludes everything — and exclusion against η decides exclusion
    # against any η′ > η at the same recorded iteration, so the replay
    # serves the weaker η′ = 6.0 without touching data.
    f_lo = QuerySpec(kind="filter", score="entropy", threshold=5.2, epsilon=0.1)
    f_hi = QuerySpec(kind="filter", score="entropy", threshold=6.0, epsilon=0.1)
    PlanExecutor(store, seed=SEED, cache_dir=tmp_path).execute(
        plan_queries(store, [f_lo])
    )
    served_exec = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    served = served_exec.execute(plan_queries(store, [f_hi]))
    assert served.stats.cells_scanned == 0

    fresh = PlanExecutor(store, seed=SEED).execute(plan_queries(store, [f_hi]))
    assert _payloads(served) == _payloads(fresh)


def test_semantic_refusal_falls_back_bit_identical(tmp_path: Path) -> None:
    store = _store()
    # A stored η = 2.0 run stops as soon as the η-decisions land; the
    # tighter-margin η′ = 2.2 usually needs bounds the history never
    # recorded. Whether the replay serves or refuses, the answer must
    # equal a fresh run's, byte for byte.
    f_lo = QuerySpec(kind="filter", score="entropy", threshold=2.0, epsilon=0.1)
    f_hi = QuerySpec(kind="filter", score="entropy", threshold=2.2, epsilon=0.1)
    PlanExecutor(store, seed=SEED, cache_dir=tmp_path).execute(
        plan_queries(store, [f_lo])
    )
    served_exec = PlanExecutor(store, seed=SEED, cache_dir=tmp_path)
    served = served_exec.execute(plan_queries(store, [f_hi]))
    fresh = PlanExecutor(store, seed=SEED).execute(plan_queries(store, [f_hi]))
    assert _payloads(served) == _payloads(fresh)


def test_put_answer_refuses_nonconverged() -> None:
    store = _store()
    part = CachePartition(fingerprint="f" * 64, shuffle="s" * 64)
    fresh = PlanExecutor(store, seed=SEED).execute(
        plan_queries(store, _specs()[:1])
    )
    (result,) = [fresh[name] for name in fresh]
    degraded = type(result)(
        attributes=result.attributes,
        estimates=result.estimates,
        stats=result.stats,
        k=result.k,
        target=result.target,
        guarantee=GuaranteeStatus(
            guarantee_met=False,
            stopping_reason="cell_budget",
            requested_epsilon=0.1,
            achieved_epsilon=0.4,
        ),
    )
    history = ((64, {"wide": (1.0, 2.0, 1.0, 1.5)}),)
    kwargs = dict(
        kind="top_k", score="entropy", epsilon=0.1,
        failure_probability=1 / store.num_rows, schedule_start=64,
        candidates=("wide",), target=None, prune=False, param=2.0,
    )
    part.put_answer(history=history, result=degraded, **kwargs)
    assert part._answers == []
    part.put_answer(history=(), result=result, **kwargs)
    assert part._answers == []  # empty history is unusable for replay
    part.put_answer(history=history, result=result, **kwargs)
    assert len(part._answers) == 1
    assert part.dirty
