"""Smoke tests: every shipped example runs end to end.

Each example honours ``REPRO_EXAMPLE_SCALE`` so the suite can run them at
a fraction of their demo size. These tests guard the examples against
bit-rot (API drift, renamed attributes, changed defaults).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    monkeypatch.setenv("REPRO_EXAMPLE_SCALE", "0.05")


def test_examples_discovered():
    assert len(EXAMPLES) >= 6
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = _load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_quickstart_output_mentions_all_queries(capsys):
    module = _load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "top-2 by entropy" in out
    assert "entropy >= 3.0" in out
    assert "most informative attribute" in out

def test_tuning_epsilon_prints_the_grid(capsys):
    module = _load_example("tuning_epsilon")
    module.main()
    out = capsys.readouterr().out
    for epsilon in ("0.010", "0.500"):
        assert epsilon in out


def test_clustering_reports_objective(capsys):
    module = _load_example("categorical_clustering")
    module.main()
    out = capsys.readouterr().out
    assert "expected entropy" in out
    assert "purity" in out
