"""Tests for the accuracy metrics of :mod:`repro.experiments.accuracy`."""

from __future__ import annotations

import math

import pytest

from repro.core.results import AttributeEstimate, FilterResult, RunStats, TopKResult
from repro.exceptions import ParameterError
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
    filter_precision_recall,
    relative_error,
    top_k_accuracy,
)

SCORES = {"a": 4.0, "b": 3.0, "c": 2.0, "d": 1.0}


class TestTopKAccuracy:
    def test_perfect_answer(self):
        assert top_k_accuracy(["a", "b"], SCORES, 2) == 1.0

    def test_order_does_not_matter(self):
        assert top_k_accuracy(["b", "a"], SCORES, 2) == 1.0

    def test_partial_answer(self):
        assert top_k_accuracy(["a", "c"], SCORES, 2) == 0.5

    def test_completely_wrong(self):
        assert top_k_accuracy(["c", "d"], SCORES, 2) == 0.0

    def test_tie_tolerance(self):
        scores = {"a": 2.0, "b": 1.999, "c": 0.5}
        assert top_k_accuracy(["b"], scores, 1) == 0.0
        assert top_k_accuracy(["b"], scores, 1, tie_tolerance=0.01) == 1.0

    def test_k_clamped_to_candidates(self):
        assert top_k_accuracy(["a", "b", "c", "d"], SCORES, 10) == 1.0

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ParameterError):
            top_k_accuracy(["zzz"], SCORES, 1)

    def test_invalid_k(self):
        with pytest.raises(ParameterError):
            top_k_accuracy(["a"], SCORES, 0)

    def test_empty_scores_rejected(self):
        with pytest.raises(ParameterError):
            top_k_accuracy([], {}, 1)


class TestFilterPrecisionRecall:
    def test_perfect(self):
        quality = filter_precision_recall(["a", "b"], SCORES, 3.0)
        assert quality.precision == 1.0
        assert quality.recall == 1.0
        assert quality.f1 == 1.0

    def test_false_positive(self):
        quality = filter_precision_recall(["a", "b", "c"], SCORES, 3.0)
        assert quality.precision == pytest.approx(2 / 3)
        assert quality.recall == 1.0
        assert quality.false_positives == 1

    def test_false_negative(self):
        quality = filter_precision_recall(["a"], SCORES, 3.0)
        assert quality.recall == pytest.approx(0.5)
        assert quality.false_negatives == 1

    def test_empty_returned_set(self):
        quality = filter_precision_recall([], SCORES, 3.0)
        assert quality.precision == 1.0
        assert quality.recall == 0.0
        assert quality.f1 == 0.0

    def test_empty_truth_set(self):
        quality = filter_precision_recall([], SCORES, 100.0)
        assert quality.recall == 1.0
        assert quality.precision == 1.0

    def test_threshold_inclusive(self):
        quality = filter_precision_recall(["a", "b"], SCORES, 3.0)
        assert quality.true_positives == 2  # b at exactly 3.0 counts


def make_topk_result(names, estimates, k):
    return TopKResult(
        attributes=list(names),
        estimates=[
            AttributeEstimate(n, e, lower=e - 0.1, upper=e + 0.1, sample_size=10)
            for n, e in zip(names, estimates)
        ],
        stats=RunStats(),
        k=k,
    )


class TestGuaranteeCheckers:
    def test_topk_contract_satisfied(self):
        result = make_topk_result(["a", "b"], [3.9, 2.95], 2)
        assert check_top_k_guarantee(result, SCORES, 0.1) == []

    def test_topk_condition_one_violated(self):
        # estimate far below (1-eps) * exact score
        result = make_topk_result(["a"], [1.0], 1)
        violations = check_top_k_guarantee(result, SCORES, 0.1)
        assert any("(i)" in v for v in violations)

    def test_topk_condition_two_violated(self):
        # returned attribute's exact score too far below the true i-th
        result = make_topk_result(["d"], [1.0], 1)
        violations = check_top_k_guarantee(result, SCORES, 0.1)
        assert any("(ii)" in v for v in violations)

    def test_topk_relaxation_scales_with_epsilon(self):
        result = make_topk_result(["b"], [3.0], 1)  # true top-1 is a at 4.0
        assert check_top_k_guarantee(result, SCORES, 0.3) == []
        assert check_top_k_guarantee(result, SCORES, 0.1) != []

    def make_filter_result(self, names, threshold):
        return FilterResult(
            attributes=list(names),
            estimates={},
            stats=RunStats(),
            threshold=threshold,
        )

    def test_filter_contract_satisfied(self):
        result = self.make_filter_result(["a", "b"], 2.5)
        assert check_filter_guarantee(result, SCORES, 0.1) == []

    def test_filter_missing_mandatory_attribute(self):
        result = self.make_filter_result(["a"], 2.5)  # b at 3.0 >= 1.1*2.5
        violations = check_filter_guarantee(result, SCORES, 0.1)
        assert any("missing" in v for v in violations)

    def test_filter_spurious_attribute(self):
        result = self.make_filter_result(["a", "d"], 2.5)  # d at 1.0 < 0.9*2.5
        violations = check_filter_guarantee(result, SCORES, 0.1)
        assert any("spurious" in v for v in violations)

    def test_filter_band_attribute_free(self):
        # c at 2.0 is inside [0.8*2.4, 1.2*2.4) -> free either way
        with_c = self.make_filter_result(["a", "b", "c"], 2.4)
        without_c = self.make_filter_result(["a", "b"], 2.4)
        assert check_filter_guarantee(with_c, SCORES, 0.2) == []
        assert check_filter_guarantee(without_c, SCORES, 0.2) == []


class TestRelativeError:
    def test_basic(self):
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_zero(self):
        assert relative_error(0.0, 0.0) == 0.0

    def test_nonzero_vs_zero(self):
        assert math.isinf(relative_error(0.5, 0.0))
