"""Statistical validity of the Section 4 mutual-information intervals.

Analogous to the entropy coverage test in ``test_bounds.py``: draw many
without-replacement samples of a fixed dataset and check that the
assembled MI interval covers the true population MI (the bound is built
from three union-bounded parts, so observed coverage should be near
100%), and that the interval midpoint converges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_mutual_information
from repro.core.bounds import (
    entropy_interval,
    joint_entropy_interval,
    mutual_information_interval,
)
from repro.core.estimators import entropy_from_counts
from repro.data.column_store import ColumnStore
from repro.data.joint import JointCounter


@pytest.fixture(scope="module")
def population():
    rng = np.random.default_rng(7)
    n = 30_000
    x = rng.integers(0, 8, n)
    y = np.where(rng.random(n) < 0.6, x, rng.integers(0, 8, n))
    store = ColumnStore({"x": x, "y": y})
    return store, exact_mutual_information(store, "x", "y")


def _mi_interval_of_sample(store, rows, p):
    m = rows.size
    n = store.num_rows
    x = store.column("x")[rows]
    y = store.column("y")[rows]
    cx = np.bincount(x, minlength=8)
    cy = np.bincount(y, minlength=8)
    joint = JointCounter(8, 8)
    joint.update(x, y)
    h_x = entropy_from_counts(cx)
    h_y = entropy_from_counts(cy)
    h_xy = entropy_from_counts(joint.nonzero_counts(), total=m)
    iv_x = entropy_interval(h_x, 8, m, n, p)
    iv_y = entropy_interval(h_y, 8, m, n, p)
    iv_xy = joint_entropy_interval(h_xy, 8, 8, m, n, p)
    return mutual_information_interval(iv_x, iv_y, iv_xy, max(0.0, h_x + h_y - h_xy))


class TestMICoverage:
    def test_interval_covers_truth(self, population):
        store, truth = population
        rng = np.random.default_rng(0)
        p = 0.05  # per-bound budget; interval holds w.p. >= 1 - 3p
        misses = 0
        trials = 100
        for _ in range(trials):
            rows = rng.choice(store.num_rows, size=1500, replace=False)
            iv = _mi_interval_of_sample(store, rows, p)
            if not iv.contains(truth):
                misses += 1
        assert misses / trials <= 3 * p

    def test_midpoint_converges_to_truth(self, population):
        store, truth = population
        rng = np.random.default_rng(1)
        errors = []
        for m in (500, 2000, 8000):
            batch = []
            for _ in range(20):
                rows = rng.choice(store.num_rows, size=m, replace=False)
                iv = _mi_interval_of_sample(store, rows, 0.05)
                batch.append(abs(iv.estimate - truth))
            errors.append(float(np.mean(batch)))
        assert errors[2] < errors[0]

    def test_width_shrinks_with_sample_size(self, population):
        store, _ = population
        rng = np.random.default_rng(2)
        widths = []
        for m in (500, 2000, 8000, 29_000):
            rows = rng.choice(store.num_rows, size=m, replace=False)
            widths.append(_mi_interval_of_sample(store, rows, 0.05).width)
        assert widths == sorted(widths, reverse=True)

    def test_full_population_interval_is_exact(self, population):
        store, truth = population
        rows = np.arange(store.num_rows)
        iv = _mi_interval_of_sample(store, rows, 0.05)
        assert iv.lower == pytest.approx(truth, abs=1e-9)
        assert iv.upper == pytest.approx(truth, abs=1e-9)
