"""Tests for repro.core.plan: specs, the planner, and the shared executor.

Four layers:

* spec/plan validation — structural errors are typed ``PlanError``s
  (duplicates, conflicting fields, bad thresholds, MI target listed
  among its own candidates), while store-resolution errors keep the
  legacy ``SchemaError``/``ParameterError`` types and messages;
* bit-identity — every single-query plan through
  :class:`~repro.core.plan.PlanExecutor` must reproduce the legacy
  ``swope_*`` entry point exactly (same seed, both backends), and a
  mixed four-query plan must reproduce the same four queries run
  sequentially in a fresh :class:`~repro.core.session.QuerySession`;
* resilience — plan-wide budgets hand each query the residual, every
  query still answers (with its own guarantee status), and strict mode
  raises on the first truncation while still ratcheting the floor;
* observability — the plan event envelope and the plan metrics
  reconcile with the executor's own accounting.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.plan import (
    PAPER_EPSILON,
    PlanExecutor,
    QuerySpec,
    load_plan,
    plan_queries,
)
from repro.core.session import QuerySession
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.exceptions import (
    DataFormatError,
    ParameterError,
    PlanError,
    QueryInterruptedError,
    SchemaError,
)
from repro.obs import InMemorySink, MetricsRegistry

SEED = 7
BACKENDS = ["numpy", "threads"]


@pytest.fixture()
def store(rng: np.random.Generator) -> ColumnStore:
    n = 3000
    target = rng.integers(0, 6, n)
    keep = rng.random(n) < 0.7
    return ColumnStore(
        {
            "wide": rng.integers(0, 64, n),
            "medium": rng.integers(0, 12, n),
            "narrow": rng.integers(0, 3, n),
            "target": target,
            "noisy": np.where(keep, target, rng.integers(0, 6, n)),
            "independent": rng.integers(0, 6, n),
        }
    )


def _mixed_specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=2, prune=False, name="tk_h"),
        QuerySpec(kind="filter", score="entropy", threshold=2.0, name="f_h"),
        QuerySpec(
            kind="top_k", score="mutual_information", k=2, target="target",
            prune=False, name="tk_mi",
        ),
        QuerySpec(
            kind="filter", score="mutual_information", threshold=0.5,
            target="target", name="f_mi",
        ),
    ]


def _assert_results_equal(left, right) -> None:
    """Bit-identity on everything deterministic about a query result."""
    assert left.attributes == right.attributes
    assert left.estimates == right.estimates
    assert left.guarantee == right.guarantee
    assert left.stats.iterations == right.stats.iterations
    assert left.stats.final_sample_size == right.stats.final_sample_size
    assert left.stats.population_size == right.stats.population_size
    assert left.stats.candidates_pruned == right.stats.candidates_pruned


# ----------------------------------------------------------------------
# QuerySpec validation
# ----------------------------------------------------------------------
class TestQuerySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="sample", score="entropy", k=1)

    def test_unknown_score_rejected(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="top_k", score="gini", k=1)

    def test_top_k_needs_k(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="top_k", score="entropy")

    def test_top_k_rejects_threshold(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="top_k", score="entropy", k=2, threshold=1.0)

    def test_filter_needs_threshold(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="filter", score="entropy")

    def test_filter_rejects_k(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="filter", score="entropy", threshold=1.0, k=3)

    def test_mi_needs_target(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="top_k", score="mutual_information", k=2)

    def test_entropy_rejects_target(self):
        with pytest.raises(PlanError):
            QuerySpec(kind="top_k", score="entropy", k=2, target="wide")

    def test_from_dict_resolves_combined_kinds(self):
        spec = QuerySpec.from_dict({"kind": "topk-mi", "k": 2, "target": "t"})
        assert (spec.kind, spec.score) == ("top_k", "mutual_information")
        spec = QuerySpec.from_dict({"kind": "filter-entropy", "threshold": 1.5})
        assert (spec.kind, spec.score) == ("filter", "entropy")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(PlanError, match="unknown"):
            QuerySpec.from_dict({"kind": "topk-entropy", "k": 2, "kk": 3})

    def test_from_dict_type_checks(self):
        with pytest.raises(PlanError):
            QuerySpec.from_dict({"kind": "topk-entropy", "k": "two"})
        with pytest.raises(PlanError):
            QuerySpec.from_dict({"kind": "topk-entropy", "k": True})


# ----------------------------------------------------------------------
# load_plan
# ----------------------------------------------------------------------
class TestLoadPlan:
    def test_accepts_bare_list_and_envelope(self, tmp_path):
        entries = [{"kind": "topk-entropy", "k": 2}]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(entries))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"queries": entries}))
        assert load_plan(bare) == load_plan(wrapped)

    def test_missing_file_is_data_format_error(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_plan(tmp_path / "nope.json")

    def test_invalid_json_is_data_format_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(DataFormatError):
            load_plan(path)

    def test_bad_entry_is_plan_error(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text(json.dumps([{"kind": "topk-entropy"}]))  # missing k
        with pytest.raises(PlanError):
            load_plan(path)

    def test_committed_example_plan_loads(self):
        specs = load_plan("examples/plan_mixed.json")
        assert len(specs) == 4
        assert {s.kind for s in specs} == {"top_k", "filter"}


# ----------------------------------------------------------------------
# plan_queries
# ----------------------------------------------------------------------
class TestPlanQueries:
    def test_empty_plan_rejected(self, store):
        with pytest.raises(PlanError):
            plan_queries(store, [])

    def test_duplicate_names_rejected(self, store):
        specs = [
            QuerySpec(kind="top_k", score="entropy", k=1, name="q"),
            QuerySpec(kind="filter", score="entropy", threshold=1.0, name="q"),
        ]
        with pytest.raises(PlanError, match="duplicate query name"):
            plan_queries(store, specs)

    def test_same_query_twice_rejected(self, store):
        spec = QuerySpec(kind="top_k", score="entropy", k=2)
        with pytest.raises(PlanError, match="repeats an earlier query"):
            plan_queries(store, [spec, QuerySpec(kind="top_k", score="entropy", k=2)])

    def test_nonpositive_filter_threshold_rejected(self, store):
        for eta in (0.0, -1.0, float("nan")):
            spec = QuerySpec(kind="filter", score="entropy", threshold=eta)
            with pytest.raises(PlanError, match="finite and > 0"):
                plan_queries(store, [spec])

    def test_zero_threshold_still_legal_on_legacy_path(self, store):
        # The planner's η > 0 rule is a plan-level lint; the single-query
        # API keeps the paper's η ≥ 0 domain.
        result = swope_filter_entropy(store, 0.0, seed=SEED)
        assert result.attributes  # every attribute clears η = 0

    def test_mi_target_as_candidate_rejected(self, store):
        spec = QuerySpec(
            kind="top_k", score="mutual_information", k=1, target="target",
            attributes=("target", "noisy"),
        )
        with pytest.raises(PlanError, match="cannot\\s+also be a candidate"):
            plan_queries(store, [spec])

    def test_unknown_attributes_keep_schema_error(self, store):
        spec = QuerySpec(
            kind="top_k", score="entropy", k=1, attributes=("ghost",)
        )
        with pytest.raises(SchemaError, match="unknown attributes"):
            plan_queries(store, [spec])

    def test_epsilon_defaults_filled_from_paper(self, store):
        plan = plan_queries(store, _mixed_specs())
        assert {s.name: s.epsilon for s in plan.specs} == {
            "tk_h": PAPER_EPSILON[("top_k", "entropy")],
            "f_h": PAPER_EPSILON[("filter", "entropy")],
            "tk_mi": PAPER_EPSILON[("top_k", "mutual_information")],
            "f_mi": PAPER_EPSILON[("filter", "mutual_information")],
        }

    def test_cost_order_is_deterministic_and_recorded(self, store):
        plan = plan_queries(store, _mixed_specs())
        again = plan_queries(store, _mixed_specs())
        assert plan.order == "cost"
        assert plan.cost_model == "analytic"
        assert plan.names == again.names
        assert plan.estimated_cells == again.estimated_cells
        # submission_names records the caller's order; the scheduled
        # specs are a (cheapest-first) permutation of it.
        assert plan.submission_names == ("tk_h", "f_h", "tk_mi", "f_mi")
        assert sorted(plan.names) == sorted(plan.submission_names)
        assert len(plan.estimated_cells) == 4
        assert list(plan.estimated_cells) == sorted(plan.estimated_cells)
        # Entropy queries are predicted cheaper than MI (3 bounds + joint
        # counters), so both entropy queries schedule first.
        assert set(plan.names[:2]) == {"tk_h", "f_h"}

    def test_submission_order_preserved_on_request(self, store):
        plan = plan_queries(store, _mixed_specs(), order="submission")
        assert plan.order == "submission"
        assert plan.names == ("tk_h", "f_h", "tk_mi", "f_mi")
        assert plan.estimated_cells == ()
        assert plan.cost_model == "none"

    def test_unknown_order_rejected(self, store):
        with pytest.raises(PlanError, match="unknown plan order"):
            plan_queries(store, _mixed_specs(), order="random")

    def test_count_groups(self, store):
        plan = plan_queries(store, _mixed_specs())
        assert set(plan.marginal_attributes) == set(store.attributes)
        assert len(plan.joint_targets) == 1
        target, candidates = plan.joint_targets[0]
        assert target == "target"
        assert set(candidates) == set(store.attributes) - {"target"}

    def test_names_default_to_positional(self, store):
        plan = plan_queries(
            store,
            [
                QuerySpec(kind="top_k", score="entropy", k=1),
                QuerySpec(kind="filter", score="entropy", threshold=1.0),
            ],
        )
        assert plan.names == ("q0", "q1")


# ----------------------------------------------------------------------
# Bit-identity against the legacy entry points
# ----------------------------------------------------------------------
LEGACY = {
    "tk_h": lambda store, backend: swope_top_k_entropy(
        store, 2, seed=SEED, backend=backend, prune=False
    ),
    "f_h": lambda store, backend: swope_filter_entropy(
        store, 2.0, seed=SEED, backend=backend
    ),
    "tk_mi": lambda store, backend: swope_top_k_mutual_information(
        store, "target", 2, seed=SEED, backend=backend, prune=False
    ),
    "f_mi": lambda store, backend: swope_filter_mutual_information(
        store, "target", 0.5, seed=SEED, backend=backend
    ),
}


class TestBitIdentity:
    @pytest.mark.parametrize("name", sorted(LEGACY))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_query_plan_matches_legacy(self, store, name, backend):
        spec = next(s for s in _mixed_specs() if s.name == name)
        executor = PlanExecutor(store, seed=SEED, backend=backend)
        plan = plan_queries(store, [spec])
        outcome = executor.execute(plan)
        legacy = LEGACY[name](store, backend)
        _assert_results_equal(outcome[name], legacy)
        assert outcome[name].stats.cells_scanned == legacy.stats.cells_scanned

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_plan_matches_sequential_session(self, store, backend):
        executor = PlanExecutor(store, seed=SEED, backend=backend)
        plan = plan_queries(store, _mixed_specs())
        outcome = executor.execute(plan)

        # Issue the session queries in the plan's *scheduled* order — the
        # ratchet floor each query starts from depends on who ran before.
        session = QuerySession(store, seed=SEED, backend=backend)
        runners = {
            "tk_h": lambda: session.top_k_entropy(2),
            "f_h": lambda: session.filter_entropy(2.0),
            "tk_mi": lambda: session.top_k_mutual_information("target", 2),
            "f_mi": lambda: session.filter_mutual_information("target", 0.5),
        }
        for spec in plan.specs:
            expected = runners[spec.name]()
            _assert_results_equal(outcome[spec.name], expected)
        assert executor.cells_scanned == session.cells_scanned

    def test_session_run_plan_facade(self, store):
        session = QuerySession(store, seed=SEED)
        outcome = session.run_plan(_mixed_specs())
        assert len(outcome) == 4
        assert session.queries_run == 4


# ----------------------------------------------------------------------
# Shared-scan accounting
# ----------------------------------------------------------------------
class TestSharedCost:
    def test_shared_scan_beats_standalone(self, store):
        executor = PlanExecutor(store, seed=SEED)
        outcome = executor.execute(plan_queries(store, _mixed_specs()))
        standalone = sum(
            LEGACY[name](store, None).stats.cells_scanned for name in LEGACY
        )
        assert outcome.stats.cells_scanned < standalone
        assert outcome.stats.cells_scanned == sum(
            outcome.stats.per_query_cells.values()
        )
        assert outcome.stats.sample_floor == executor.sample_floor
        assert executor.sampler.counted_attributes  # counters retained

    def test_result_lookup_errors_are_typed(self, store):
        executor = PlanExecutor(store, seed=SEED)
        outcome = executor.execute(
            plan_queries(store, [QuerySpec(kind="top_k", score="entropy", k=1)])
        )
        with pytest.raises(PlanError, match="no query named"):
            outcome["ghost"]


# ----------------------------------------------------------------------
# Plan-wide resilience
# ----------------------------------------------------------------------
class TestPlanResilience:
    def test_plan_wide_cell_budget_degrades_each_query(self, store):
        executor = PlanExecutor(
            store, seed=SEED, budget=QueryBudget(max_cells=1)
        )
        outcome = executor.execute(plan_queries(store, _mixed_specs()))
        assert outcome.stats.queries_completed == 4
        for name in ("tk_h", "f_h", "tk_mi", "f_mi"):
            status = outcome[name].guarantee
            assert status is not None
            assert not status.guarantee_met
            assert status.stopping_reason == "cell_budget"
            # The anytime contract: every query still runs one iteration.
            assert outcome[name].stats.iterations >= 1

    def test_precancelled_token_still_answers(self, store):
        token = CancellationToken()
        token.cancel("test shutdown")
        executor = PlanExecutor(store, seed=SEED)
        outcome = executor.execute(
            plan_queries(store, _mixed_specs()), cancellation=token
        )
        for name in outcome:
            status = outcome[name].guarantee
            assert status is not None
            assert status.stopping_reason == "cancelled"

    def test_strict_mode_raises_and_ratchets(self, store):
        executor = PlanExecutor(
            store, seed=SEED, budget=QueryBudget(max_cells=1)
        )
        sink = InMemorySink()
        with pytest.raises(QueryInterruptedError):
            executor.execute(
                plan_queries(store, _mixed_specs()), strict=True, trace=sink
            )
        # The partial run's prefix counters survive for later queries.
        assert executor.sample_floor > 0
        kinds = sink.kinds()
        assert kinds[0] == "plan_start"
        assert kinds[-1] == "plan_end"
        assert kinds.count("query_retired") == 1  # the truncated query
        (end,) = sink.of_kind("plan_end")
        assert end.queries_completed == 0

    def test_executor_rejects_backend_override(self, store):
        executor = PlanExecutor(store, seed=SEED)
        spec = QuerySpec(kind="top_k", score="entropy", k=1)
        with pytest.raises(ParameterError):
            executor.execute_one(spec, backend="threads")


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestPlanObservability:
    def test_event_envelope_and_metrics_reconcile(self, store):
        sink = InMemorySink()
        registry = MetricsRegistry()
        executor = PlanExecutor(store, seed=SEED, trace=sink, metrics=registry)
        outcome = executor.execute(plan_queries(store, _mixed_specs()))

        kinds = sink.kinds()
        assert kinds[0] == "plan_start"
        assert kinds[1] == "schedule_chosen"
        assert kinds[-1] == "plan_end"
        (chosen,) = sink.of_kind("schedule_chosen")
        assert chosen.order == "cost"
        assert chosen.submission == ("tk_h", "f_h", "tk_mi", "f_mi")
        retired = sink.of_kind("query_retired")
        assert tuple(e.name for e in retired) == chosen.queries
        assert [e.index for e in retired] == [0, 1, 2, 3]
        assert all(e.guarantee_met for e in retired)
        assert [e.marginal_cells for e in retired] == [
            outcome.stats.per_query_cells[e.name] for e in retired
        ]

        (start,) = sink.of_kind("plan_start")
        assert start.num_queries == 4
        assert start.population_size == store.num_rows
        (end,) = sink.of_kind("plan_end")
        assert end.queries_completed == 4
        assert end.cells_scanned == outcome.stats.cells_scanned
        assert end.sample_floor == outcome.stats.sample_floor

        assert registry.counter("plans_total").value == 1
        assert registry.counter("plan_queries_total").value == 4
        assert (
            registry.counter("plan_cells_scanned_total").value
            == outcome.stats.cells_scanned
        )

    def test_plan_trace_brackets_per_query_traces(self, store):
        sink = InMemorySink()
        executor = PlanExecutor(store, seed=SEED, trace=sink)
        executor.execute(
            plan_queries(store, [QuerySpec(kind="top_k", score="entropy", k=1)])
        )
        kinds = sink.kinds()
        assert kinds[0] == "plan_start"
        assert "query_start" in kinds and "query_end" in kinds
        assert kinds.index("query_start") > kinds.index("plan_start")
        assert kinds.index("query_retired") > kinds.index("query_end")
        assert kinds[-1] == "plan_end"
