"""Tests for the experiment runner and figure registry.

These run real (tiny-scale) queries over one synthetic dataset, so they
also act as integration tests of the whole stack.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.experiments.figures import FIGURES, FigureSpec, run_figure, run_table2
from repro.experiments.runner import (
    ALGORITHMS,
    GroundTruthCache,
    run_entropy_filter,
    run_entropy_top_k,
    run_mi_filter,
    run_mi_top_k,
)
from repro.synth.datasets import load_dataset


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("cdc", scale=0.01)


@pytest.fixture(scope="module")
def truth():
    return GroundTruthCache()


class TestRunner:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_entropy_topk_all_algorithms(self, dataset, truth, algorithm):
        outcome = run_entropy_top_k(dataset.store, algorithm, 4, truth=truth)
        assert outcome.algorithm == algorithm
        assert len(outcome.answer) == 4
        assert 0.0 <= outcome.accuracy <= 1.0
        assert outcome.cells_scanned > 0
        assert outcome.wall_seconds >= 0.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_entropy_filter_all_algorithms(self, dataset, truth, algorithm):
        outcome = run_entropy_filter(dataset.store, algorithm, 2.0, truth=truth)
        assert outcome.query == "entropy_filter"
        assert "precision" in outcome.extra
        assert 0.0 <= outcome.accuracy <= 1.0

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mi_topk_all_algorithms(self, dataset, truth, algorithm):
        target = dataset.mi_targets[0]
        outcome = run_mi_top_k(dataset.store, algorithm, target, 2, truth=truth)
        assert len(outcome.answer) == 2
        assert target not in outcome.answer

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_mi_filter_all_algorithms(self, dataset, truth, algorithm):
        target = dataset.mi_targets[0]
        outcome = run_mi_filter(dataset.store, algorithm, target, 0.3, truth=truth)
        assert outcome.parameter == 0.3

    def test_exact_algorithm_reads_everything(self, dataset, truth):
        outcome = run_entropy_top_k(dataset.store, "exact", 1, truth=truth)
        assert outcome.sample_fraction == 1.0

    def test_exact_algorithm_perfect_accuracy(self, dataset, truth):
        for k in (1, 4):
            outcome = run_entropy_top_k(dataset.store, "exact", k, truth=truth)
            assert outcome.accuracy == 1.0

    def test_unknown_algorithm_rejected(self, dataset):
        with pytest.raises(ParameterError, match="unknown algorithm"):
            run_entropy_top_k(dataset.store, "magic", 1)

    def test_ground_truth_cache_reuses_scans(self, dataset):
        cache = GroundTruthCache()
        first = cache.entropies(dataset.store)
        second = cache.entropies(dataset.store)
        assert first is second
        target = dataset.mi_targets[0]
        assert cache.mutual_informations(dataset.store, target) is (
            cache.mutual_informations(dataset.store, target)
        )


class TestFigureRegistry:
    def test_twelve_figures(self):
        assert len(FIGURES) == 12
        assert set(FIGURES) == {f"fig{i}" for i in range(1, 13)}

    def test_parameter_grids_match_paper(self):
        assert FIGURES["fig1"].x_values == (1, 2, 4, 8, 10)
        assert FIGURES["fig3"].x_values == (0.5, 1.0, 1.5, 2.0, 2.5, 3.0)
        assert FIGURES["fig7"].x_values == (0.1, 0.2, 0.3, 0.4, 0.5)
        assert FIGURES["fig9"].x_values == (0.01, 0.025, 0.05, 0.1, 0.25, 0.5)

    def test_default_epsilons_match_paper(self):
        assert FIGURES["fig1"].epsilon == 0.1
        assert FIGURES["fig3"].epsilon == 0.05
        assert FIGURES["fig5"].epsilon == 0.5
        assert FIGURES["fig7"].epsilon == 0.5

    def test_epsilon_sweeps_fix_paper_parameters(self):
        assert FIGURES["fig9"].fixed_k == 4
        assert FIGURES["fig10"].fixed_eta == 2.0
        assert FIGURES["fig11"].fixed_k == 4
        assert FIGURES["fig12"].fixed_eta == 0.3

    def test_epsilon_sweeps_run_swope_only(self):
        for fig in ("fig9", "fig10", "fig11", "fig12"):
            assert FIGURES[fig].algorithms == ("swope",)

    def test_x_label(self):
        assert FIGURES["fig1"].x_label() == "k"
        assert FIGURES["fig3"].x_label() == "eta"
        assert FIGURES["fig9"].x_label() == "epsilon"


class TestRunFigure:
    def test_unknown_figure_rejected(self):
        with pytest.raises(ParameterError, match="unknown figure"):
            run_figure("fig99")

    def test_small_run_produces_full_grid(self):
        run = run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)
        spec = FIGURES["fig1"]
        assert len(run.points) == len(spec.x_values) * len(spec.algorithms)
        assert {p.algorithm for p in run.points} == set(spec.algorithms)

    def test_series_extraction(self):
        run = run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)
        series = run.series("cdc", "swope", "cells_scanned")
        assert [x for x, _ in series] == list(FIGURES["fig9"].x_values)
        assert all(v > 0 for _, v in series)

    def test_epsilon_sweep_cost_decreases(self):
        run = run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)
        series = dict(run.series("cdc", "swope", "cells_scanned"))
        assert series[0.5] <= series[0.01]

    def test_speedup_accessor(self):
        run = run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)
        assert run.speedup("cdc", "exact", 1.0) >= 1.0
        with pytest.raises(ParameterError):
            run.speedup("cdc", "exact", 99.0)

    def test_mi_figure_with_targets(self):
        run = run_figure(
            "fig5", datasets=["cdc"], scale=0.01, num_targets=2, seed=0
        )
        assert all(0.0 <= p.accuracy <= 1.0 for p in run.points)


class TestTable2:
    def test_rows(self):
        rows = run_table2()
        assert len(rows) == 4
        assert {r["dataset"] for r in rows} == {"cdc", "hus", "pus", "enem"}
