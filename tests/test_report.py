"""Tests for the text report rendering."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.experiments.figures import run_figure, run_table2
from repro.experiments.report import format_table, render_figure, render_table2


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["col", "x"], [["1", "22"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith(" x")
        assert set(lines[1]) == {"-"}

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ParameterError):
            format_table(["a", "b"], [["only one"]])


class TestRenderFigure:
    @pytest.fixture(scope="class")
    def run(self):
        return run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)

    def test_contains_header_and_dataset(self, run):
        text = render_figure(run)
        assert "fig1" in text
        assert "dataset: cdc" in text

    def test_contains_all_sweep_values(self, run):
        text = render_figure(run)
        for k in (1, 2, 4, 8, 10):
            assert f"\n{k:>2d} " in text or text.count(f"{k}") > 0

    def test_contains_speedup_columns(self, run):
        text = render_figure(run)
        assert "x vs exact" in text
        assert "x vs entropy_rank" in text

    def test_epsilon_sweep_has_no_speedup_column(self):
        run = run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)
        text = render_figure(run)
        assert "x vs" not in text


class TestRenderTable2:
    def test_contains_paper_shapes(self):
        text = render_table2(run_table2())
        assert "31,290,943" in text
        assert "179" in text
        assert "cdc" in text
