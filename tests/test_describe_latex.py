"""Tests for the describe utility and the LaTeX renderers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.describe import describe_store, profile_attribute
from repro.exceptions import ParameterError, SchemaError
from repro.experiments.figures import run_figure, run_table2
from repro.experiments.latex import figure_latex, table2_latex


class TestProfileAttribute:
    @pytest.fixture(scope="class")
    def store(self):
        return ColumnStore(
            {
                "uniform4": np.array([0, 1, 2, 3] * 25),
                "skew": np.array([0] * 90 + [1] * 10),
                "constant": np.zeros(100, dtype=np.int64),
                "sparse_domain": np.array([0, 1] * 50),
            },
            support_sizes={
                "uniform4": 4, "skew": 2, "constant": 1, "sparse_domain": 10,
            },
        )

    def test_uniform_profile(self, store):
        profile = profile_attribute(store, "uniform4")
        assert profile.support_size == 4
        assert profile.observed_values == 4
        assert profile.entropy == pytest.approx(2.0)
        assert profile.max_entropy == pytest.approx(2.0)
        assert profile.normalized_entropy == pytest.approx(1.0)
        assert profile.top_share == pytest.approx(0.25)

    def test_skewed_profile(self, store):
        profile = profile_attribute(store, "skew")
        assert profile.top_share == pytest.approx(0.9)
        assert profile.top_code == 0
        assert 0 < profile.normalized_entropy < 1

    def test_constant_profile(self, store):
        profile = profile_attribute(store, "constant")
        assert profile.entropy == 0.0
        assert profile.max_entropy == 0.0
        assert profile.normalized_entropy == 0.0
        assert profile.top_share == 1.0

    def test_sparse_domain(self, store):
        profile = profile_attribute(store, "sparse_domain")
        assert profile.observed_values == 2
        assert profile.support_size == 10
        assert profile.max_entropy == pytest.approx(math.log2(10))

    def test_unknown_attribute(self, store):
        with pytest.raises(SchemaError):
            profile_attribute(store, "ghost")

    def test_describe_sorted_by_entropy(self, store):
        profiles = describe_store(store)
        entropies = [p.entropy for p in profiles]
        assert entropies == sorted(entropies, reverse=True)

    def test_describe_sorted_by_name(self, store):
        profiles = describe_store(store, sort_by="name")
        names = [p.attribute for p in profiles]
        assert names == sorted(names)

    def test_describe_invalid_sort(self, store):
        with pytest.raises(SchemaError):
            describe_store(store, sort_by="vibes")


class TestLatex:
    @pytest.fixture(scope="class")
    def run(self):
        return run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)

    def test_figure_latex_structure(self, run):
        tex = figure_latex(run, "seconds")
        assert tex.count("\\begin{tabular}") == 1
        assert tex.count("\\toprule") == 1
        assert "swope" in tex
        assert "entropy\\_rank" in tex  # underscore escaped
        for k in (1, 2, 4, 8, 10):
            assert f"\n{k} &" in tex

    def test_figure_latex_metrics(self, run):
        cells = figure_latex(run, "cells_scanned")
        assert "," in cells  # thousands separators
        accuracy = figure_latex(run, "accuracy")
        assert "1.000" in accuracy
        with pytest.raises(ParameterError):
            figure_latex(run, "vibes")

    def test_figure_latex_empty_rejected(self, run):
        import copy

        empty = copy.copy(run)
        empty.points = []
        with pytest.raises(ParameterError, match="no measurements"):
            figure_latex(empty)

    def test_table2_latex(self):
        tex = table2_latex(run_table2())
        assert "31,290,943" in tex
        assert tex.count("\\\\") >= 5
        assert "\\bottomrule" in tex


class TestMarkdown:
    @pytest.fixture(scope="class")
    def run(self):
        return run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)

    def test_figure_markdown_structure(self, run):
        from repro.experiments.markdown import figure_markdown

        md = figure_markdown(run, "cells_scanned")
        assert md.startswith("### fig1")
        assert "| k | swope | entropy_rank | exact |" in md
        assert "×exact" in md  # speedup column for the cells metric
        assert md.count("|---|") >= 1

    def test_figure_markdown_seconds_has_no_speedup_column(self, run):
        from repro.experiments.markdown import figure_markdown

        md = figure_markdown(run, "seconds")
        assert "×exact" not in md
        assert "ms" in md or " s" in md

    def test_figure_markdown_invalid_metric(self, run):
        from repro.experiments.markdown import figure_markdown

        with pytest.raises(ParameterError):
            figure_markdown(run, "vibes")

    def test_table2_markdown(self):
        from repro.experiments.markdown import table2_markdown

        md = table2_markdown(run_table2())
        assert "| cdc |" in md
        assert "33,714,152" in md
