"""Tests for :mod:`repro.synth.correlation` (noisy-copy MI control)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import entropy_from_probabilities
from repro.data.column_store import ColumnStore
from repro.baselines.exact import exact_mutual_information
from repro.exceptions import ParameterError
from repro.synth.correlation import (
    analytic_noisy_copy_mi,
    noisy_copy,
    retention_for_mi,
)
from repro.synth.distributions import (
    probabilities_with_entropy,
    sample_categorical,
    uniform_probabilities,
)


class TestAnalyticMI:
    def test_zero_retention_zero_mi(self):
        p = uniform_probabilities(8)
        assert analytic_noisy_copy_mi(p, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_full_retention_equals_entropy(self):
        p = probabilities_with_entropy(16, 2.7)
        assert analytic_noisy_copy_mi(p, 1.0) == pytest.approx(2.7, abs=1e-4)

    def test_monotone_in_retention(self):
        p = uniform_probabilities(16)
        values = [analytic_noisy_copy_mi(p, r) for r in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert values == sorted(values)

    def test_single_value_support(self):
        assert analytic_noisy_copy_mi(np.array([1.0]), 0.5) == 0.0

    def test_invalid_retention(self):
        with pytest.raises(ParameterError):
            analytic_noisy_copy_mi(uniform_probabilities(4), 1.5)

    def test_invalid_probabilities(self):
        with pytest.raises(ParameterError):
            analytic_noisy_copy_mi(np.array([0.5, 0.4]), 0.5)


class TestRetentionSolver:
    @pytest.mark.parametrize("target", [0.05, 0.3, 1.0, 2.0])
    def test_solves_target(self, target):
        p = probabilities_with_entropy(32, 4.5)
        r = retention_for_mi(p, target)
        assert analytic_noisy_copy_mi(p, r) == pytest.approx(target, abs=1e-4)

    def test_zero_target(self):
        assert retention_for_mi(uniform_probabilities(8), 0.0) == 0.0

    def test_unreachable_target_rejected(self):
        p = uniform_probabilities(4)  # max MI = 2 bits
        with pytest.raises(ParameterError, match="exceeds the maximum"):
            retention_for_mi(p, 3.0)

    def test_negative_target_rejected(self):
        with pytest.raises(ParameterError):
            retention_for_mi(uniform_probabilities(4), -0.1)


class TestNoisyCopyGeneration:
    def test_full_retention_copies_exactly(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 8, 1000)
        copy = noisy_copy(rng, base, 8, 1.0)
        assert np.array_equal(copy, base)

    def test_zero_retention_independent(self):
        rng = np.random.default_rng(1)
        base = np.zeros(50_000, dtype=np.int64)
        copy = noisy_copy(rng, base, 8, 0.0)
        freq = np.bincount(copy, minlength=8) / copy.size
        assert np.abs(freq - 1 / 8).max() < 0.01

    def test_values_in_support(self):
        rng = np.random.default_rng(2)
        base = rng.integers(0, 5, 1000)
        copy = noisy_copy(rng, base, 5, 0.5)
        assert copy.min() >= 0 and copy.max() < 5

    def test_base_out_of_support_rejected(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ParameterError):
            noisy_copy(rng, np.array([0, 9]), 5, 0.5)

    def test_empirical_mi_matches_analytic(self):
        # End-to-end: generate a noisy copy and check the realised MI is
        # close to the analytic target.
        rng = np.random.default_rng(4)
        p = probabilities_with_entropy(16, 3.5)
        target_mi = 1.2
        r = retention_for_mi(p, target_mi)
        n = 150_000
        base = sample_categorical(rng, p, n)
        copy = noisy_copy(rng, base, 16, r)
        store = ColumnStore({"x": base, "y": copy})
        realised = exact_mutual_information(store, "x", "y")
        assert realised == pytest.approx(target_mi, abs=0.03)
