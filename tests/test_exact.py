"""Tests for the exact full-scan baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.exact import (
    exact_entropies,
    exact_entropy,
    exact_filter_entropy,
    exact_filter_mutual_information,
    exact_joint_entropy,
    exact_mutual_information,
    exact_mutual_informations,
    exact_top_k_entropy,
    exact_top_k_mutual_information,
)
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError


class TestExactScores:
    def test_entropy_hand_computed(self, tiny_store):
        # column a: four values, two each of eight -> uniform over 4 -> 2 bits
        assert exact_entropy(tiny_store, "a") == pytest.approx(2.0)
        assert exact_entropy(tiny_store, "b") == pytest.approx(1.0)
        assert exact_entropy(tiny_store, "c") == 0.0

    def test_entropies_batch(self, tiny_store):
        scores = exact_entropies(tiny_store)
        assert set(scores) == {"a", "b", "c"}
        assert scores["a"] == pytest.approx(2.0)

    def test_joint_entropy_hand_computed(self, tiny_store):
        # (a, b) pairs: (0,0) x2 (1,0) x2 (2,1) x2 (3,1) x2 -> uniform over 4
        assert exact_joint_entropy(tiny_store, "a", "b") == pytest.approx(2.0)

    def test_joint_entropy_symmetric(self, tiny_store):
        assert exact_joint_entropy(tiny_store, "a", "b") == pytest.approx(
            exact_joint_entropy(tiny_store, "b", "a")
        )

    def test_joint_entropy_self_rejected(self, tiny_store):
        with pytest.raises(SchemaError):
            exact_joint_entropy(tiny_store, "a", "a")

    def test_mi_hand_computed(self, tiny_store):
        # I(a,b) = H(a) + H(b) - H(a,b) = 2 + 1 - 2 = 1
        assert exact_mutual_information(tiny_store, "a", "b") == pytest.approx(1.0)

    def test_mi_with_constant_is_zero(self, tiny_store):
        assert exact_mutual_information(tiny_store, "a", "c") == pytest.approx(0.0)

    def test_mi_batch_excludes_target(self, tiny_store):
        scores = exact_mutual_informations(tiny_store, "a")
        assert set(scores) == {"b", "c"}

    def test_mi_batch_target_as_candidate_rejected(self, tiny_store):
        with pytest.raises(ParameterError):
            exact_mutual_informations(tiny_store, "a", candidates=["a"])

    def test_mi_information_inequality(self, correlated_store):
        # I(X;Y) <= min(H(X), H(Y))
        h_t = exact_entropy(correlated_store, "target")
        for cand in ("copy", "noisy", "independent"):
            mi = exact_mutual_information(correlated_store, "target", cand)
            h_c = exact_entropy(correlated_store, cand)
            assert mi <= min(h_t, h_c) + 1e-9


class TestExactQueries:
    def test_top_k(self, small_store):
        result = exact_top_k_entropy(small_store, 2)
        assert result.attributes == ["wide", "medium"]
        assert result.stats.final_sample_size == small_store.num_rows
        assert result.stats.cells_scanned == 4 * small_store.num_rows

    def test_top_k_point_estimates(self, small_store):
        result = exact_top_k_entropy(small_store, 1)
        est = result.estimates[0]
        assert est.lower == est.estimate == est.upper

    def test_top_k_deterministic_tie_break(self):
        store = ColumnStore(
            {"b": np.array([0, 1]), "a": np.array([0, 1])}
        )
        result = exact_top_k_entropy(store, 1)
        assert result.attributes == ["a"]  # lexicographic on ties

    def test_filter(self, small_store):
        result = exact_filter_entropy(small_store, 3.0)
        assert result.answer_set() == {"wide", "medium"}
        assert set(result.estimates) == set(small_store.attributes)

    def test_filter_threshold_is_inclusive(self):
        store = ColumnStore({"x": np.array([0, 1]), "y": np.array([0, 0])})
        result = exact_filter_entropy(store, 1.0)
        assert result.answer_set() == {"x"}  # H(x) == 1.0 exactly

    def test_mi_top_k(self, correlated_store):
        result = exact_top_k_mutual_information(correlated_store, "target", 2)
        assert result.attributes == ["copy", "noisy"]
        assert result.target == "target"

    def test_mi_filter(self, correlated_store):
        result = exact_filter_mutual_information(correlated_store, "target", 1.0)
        assert "copy" in result
        assert "independent" not in result

    def test_invalid_k(self, small_store):
        with pytest.raises(ParameterError):
            exact_top_k_entropy(small_store, 0)
