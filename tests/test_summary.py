"""Tests for the headline-summary extraction."""

from __future__ import annotations

import pytest

from repro.exceptions import ParameterError
from repro.experiments.figures import FigurePoint, FigureRun, FIGURES, run_figure
from repro.experiments.summary import summarize_run


@pytest.fixture(scope="module")
def real_run():
    return run_figure("fig1", datasets=["cdc"], scale=0.01, seed=0)


class TestSummarizeRun:
    def test_real_run(self, real_run):
        summary = summarize_run(real_run)
        assert summary.figure_id == "fig1"
        assert set(summary.speedups) == {"entropy_rank", "exact"}
        for lo, hi in summary.speedups.values():
            assert 0 < lo <= hi
        lo, hi = summary.swope_accuracy
        assert 0 <= lo <= hi <= 1.0
        assert summary.cost_range[0] <= summary.cost_range[1]

    def test_line_rendering(self, real_run):
        line = summarize_run(real_run).line()
        assert line.startswith("fig1")
        assert "vs exact" in line
        assert "accuracy" in line

    def test_swope_only_sweep_has_no_speedups(self):
        run = run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)
        summary = summarize_run(run)
        assert summary.speedups == {}
        assert "vs" not in summary.line()

    def test_synthetic_numbers(self):
        run = FigureRun(
            spec=FIGURES["fig1"], datasets=["cdc"], scale=1.0, num_targets=1
        )
        for x in FIGURES["fig1"].x_values:
            for algorithm, cells in (("swope", 100.0), ("entropy_rank", 400.0), ("exact", 1000.0)):
                run.points.append(
                    FigurePoint(
                        dataset="cdc", x=float(x), algorithm=algorithm,
                        seconds=0.01, cells_scanned=cells,
                        sample_fraction=0.1, accuracy=0.9,
                    )
                )
        summary = summarize_run(run)
        assert summary.speedups["entropy_rank"] == (4.0, 4.0)
        assert summary.speedups["exact"] == (10.0, 10.0)
        assert summary.swope_accuracy == (0.9, 0.9)
        assert summary.cost_range == (100.0, 100.0)

    def test_no_swope_points_rejected(self):
        run = FigureRun(
            spec=FIGURES["fig1"], datasets=["cdc"], scale=1.0, num_targets=1
        )
        with pytest.raises(ParameterError, match="no SWOPE"):
            summarize_run(run)
