"""Tests for the bias-reduced entropy estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.advanced_estimators import (
    chao_shen_entropy,
    digamma,
    good_turing_coverage,
    grassberger_entropy,
)
from repro.core.estimators import entropy_from_counts
from repro.exceptions import ParameterError


class TestDigamma:
    def test_against_scipy(self):
        scipy_special = pytest.importorskip("scipy.special")
        for x in (0.5, 1.0, 1.5, 2.0, 5.0, 10.0, 123.4):
            assert digamma(x) == pytest.approx(
                float(scipy_special.digamma(x)), abs=1e-10
            )

    def test_known_values(self):
        euler_gamma = 0.5772156649015329
        assert digamma(1.0) == pytest.approx(-euler_gamma, abs=1e-12)
        assert digamma(0.5) == pytest.approx(
            -euler_gamma - 2 * math.log(2), abs=1e-12
        )

    def test_recurrence(self):
        # psi(x+1) = psi(x) + 1/x
        for x in (0.3, 1.7, 4.2):
            assert digamma(x + 1) == pytest.approx(digamma(x) + 1 / x, abs=1e-12)

    def test_domain(self):
        with pytest.raises(ParameterError):
            digamma(0.0)
        with pytest.raises(ParameterError):
            digamma(-1.0)


class TestCoverage:
    def test_no_singletons_full_coverage(self):
        assert good_turing_coverage(np.array([5, 3, 2])) == 1.0

    def test_half_singletons(self):
        # counts [1, 1, 2]: f1 = 2, M = 4 -> C = 0.5
        assert good_turing_coverage(np.array([1, 1, 2])) == pytest.approx(0.5)

    def test_all_singletons_floored(self):
        assert good_turing_coverage(np.array([1, 1, 1, 1])) == pytest.approx(0.25)

    def test_empty(self):
        assert good_turing_coverage(np.array([], dtype=int)) == 1.0


class TestChaoShen:
    def test_equals_plug_in_when_fully_covered(self):
        # No singletons and a large sample: inclusion probabilities ~ 1.
        counts = np.array([1000, 2000, 3000])
        assert chao_shen_entropy(counts) == pytest.approx(
            entropy_from_counts(counts), abs=1e-6
        )

    def test_reduces_undersampling_bias(self):
        # Uniform over 256 values, only 128 draws: plug-in is badly biased
        # low; Chao-Shen should land much closer to log2(256) = 8.
        rng = np.random.default_rng(0)
        truth = 8.0
        plug_errors, cs_errors = [], []
        for _ in range(30):
            counts = np.bincount(rng.integers(0, 256, 128), minlength=256)
            plug_errors.append(truth - entropy_from_counts(counts))
            cs_errors.append(truth - chao_shen_entropy(counts))
        assert np.mean(cs_errors) < np.mean(plug_errors) / 2

    def test_non_negative(self):
        assert chao_shen_entropy(np.array([10])) >= 0.0

    def test_empty(self):
        assert chao_shen_entropy(np.array([], dtype=int)) == 0.0


class TestGrassberger:
    def test_converges_to_plug_in_on_large_counts(self):
        counts = np.array([10_000, 20_000, 30_000])
        assert grassberger_entropy(counts) == pytest.approx(
            entropy_from_counts(counts), abs=1e-3
        )

    def test_reduces_small_sample_bias(self):
        rng = np.random.default_rng(1)
        truth = 5.0  # uniform over 32 values
        plug_errors, gr_errors = [], []
        for _ in range(50):
            counts = np.bincount(rng.integers(0, 32, 48), minlength=32)
            plug_errors.append(abs(truth - entropy_from_counts(counts)))
            gr_errors.append(abs(truth - grassberger_entropy(counts)))
        assert np.mean(gr_errors) < np.mean(plug_errors)

    def test_non_negative(self):
        assert grassberger_entropy(np.array([5])) >= 0.0

    def test_empty(self):
        assert grassberger_entropy(np.array([], dtype=int)) == 0.0

    def test_invalid_counts(self):
        with pytest.raises(ParameterError):
            grassberger_entropy(np.array([-1, 2]))
