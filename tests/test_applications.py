"""Tests for the downstream application layer (repro.applications)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications.clustering import coolcat_cluster, expected_entropy
from repro.applications.decision_tree import EntropyTreeClassifier
from repro.applications.feature_selection import (
    mrmr_select,
    threshold_select,
    top_relevance_select,
)
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError


@pytest.fixture(scope="module")
def labelled_store():
    """Label = f(x1, x2); x1_dup duplicates x1 (redundant); noise is junk."""
    rng = np.random.default_rng(21)
    n = 8000
    x1 = rng.integers(0, 4, n)
    x2 = rng.integers(0, 4, n)
    x1_dup = x1.copy()
    noise = rng.integers(0, 4, n)
    # Each of x1, x2 carries one marginal bit about the label (an
    # XOR-style label would give them zero *marginal* MI and break every
    # greedy information-gain method by design).
    label = (x1 >= 2).astype(np.int64) * 2 + (x2 >= 2).astype(np.int64)
    flip = rng.random(n) < 0.05
    label = np.where(flip, rng.integers(0, 4, n), label)
    return ColumnStore(
        {"x1": x1, "x2": x2, "x1_dup": x1_dup, "noise": noise, "label": label}
    )


class TestTopRelevance:
    @pytest.mark.parametrize("engine", ["swope", "exact"])
    def test_selects_informative_features(self, labelled_store, engine):
        result = top_relevance_select(
            labelled_store, "label", 2, engine=engine, seed=0
        )
        assert set(result.features) <= {"x1", "x2", "x1_dup"}
        assert result.engine == engine
        assert result.cells_scanned > 0

    def test_swope_cheaper_than_exact(self, labelled_store):
        swope = top_relevance_select(labelled_store, "label", 2, engine="swope")
        exact = top_relevance_select(labelled_store, "label", 2, engine="exact")
        assert swope.cells_scanned <= exact.cells_scanned

    def test_invalid_engine(self, labelled_store):
        with pytest.raises(ParameterError):
            top_relevance_select(labelled_store, "label", 1, engine="magic")

    def test_invalid_count(self, labelled_store):
        with pytest.raises(ParameterError):
            top_relevance_select(labelled_store, "label", 0)


class TestThresholdSelect:
    @pytest.mark.parametrize("engine", ["swope", "exact"])
    def test_keeps_only_informative(self, labelled_store, engine):
        result = threshold_select(
            labelled_store, "label", 0.5, engine=engine, seed=0
        )
        assert "noise" not in result.features
        assert {"x1", "x2", "x1_dup"} <= set(result.features)

    def test_huge_threshold_empty(self, labelled_store):
        result = threshold_select(labelled_store, "label", 10.0, seed=0)
        assert result.features == []


class TestMrmr:
    @pytest.mark.parametrize("engine", ["swope", "exact"])
    def test_avoids_redundant_duplicate(self, labelled_store, engine):
        # x1 and x1_dup are identical; mRMR must not pick both into a
        # 2-feature set (their mutual redundancy equals their relevance).
        result = mrmr_select(labelled_store, "label", 2, engine=engine, seed=0)
        assert len(result.features) == 2
        assert not {"x1", "x1_dup"} <= set(result.features)
        assert set(result.features) & {"x1", "x1_dup"}
        assert "x2" in result.features

    def test_agrees_across_engines(self, labelled_store):
        swope = mrmr_select(labelled_store, "label", 2, engine="swope", seed=0)
        exact = mrmr_select(labelled_store, "label", 2, engine="exact", seed=0)
        normalise = lambda fs: {"x1" if f == "x1_dup" else f for f in fs}
        assert normalise(swope.features) == normalise(exact.features)

    def test_shortlist_validation(self, labelled_store):
        with pytest.raises(ParameterError, match="shortlist"):
            mrmr_select(labelled_store, "label", 3, shortlist=2)

    def test_selection_order_recorded(self, labelled_store):
        result = mrmr_select(labelled_store, "label", 3, engine="exact")
        assert len(result.features) == 3
        assert len(set(result.features)) == 3


class TestDecisionTree:
    @pytest.mark.parametrize("engine", ["swope", "exact"])
    def test_learns_the_concept(self, labelled_store, engine):
        tree = EntropyTreeClassifier(
            max_depth=2, min_rows=200, engine=engine, seed=0
        )
        tree.fit(labelled_store, "label", features=["x1", "x2", "noise"])
        # label = (x1 + x2) % 4 with 5% noise: a depth-2 tree over x1, x2
        # should be nearly perfect.
        assert tree.accuracy(labelled_store) > 0.9
        assert tree.root is not None
        assert tree.root.split in ("x1", "x2")

    def test_engines_agree_on_splits(self, labelled_store):
        # At this dataset size SWOPE's sampling advantage is modest (the
        # per-node populations are small), so the meaningful check is
        # structural agreement at a comparable cost, not a speedup.
        kwargs = dict(max_depth=2, min_rows=200, seed=0)
        swope = EntropyTreeClassifier(engine="swope", **kwargs).fit(
            labelled_store, "label", features=["x1", "x2", "noise"]
        )
        exact = EntropyTreeClassifier(engine="exact", **kwargs).fit(
            labelled_store, "label", features=["x1", "x2", "noise"]
        )
        assert swope.root is not None and exact.root is not None
        assert swope.root.split == exact.root.split
        assert swope.cells_scanned <= 2 * exact.cells_scanned

    def test_min_gain_prunes_uninformative_splits(self, labelled_store):
        tree = EntropyTreeClassifier(
            max_depth=3, min_rows=100, min_gain=0.05, engine="exact"
        )
        tree.fit(labelled_store, "label", features=["noise"])
        assert tree.root is not None
        assert tree.root.is_leaf  # noise has ~0 gain

    def test_predict_before_fit_raises(self, labelled_store):
        tree = EntropyTreeClassifier()
        with pytest.raises(ParameterError, match="not fitted"):
            tree.predict(labelled_store)

    def test_unknown_label_raises(self, labelled_store):
        with pytest.raises(SchemaError):
            EntropyTreeClassifier().fit(labelled_store, "ghost")

    def test_label_as_feature_raises(self, labelled_store):
        with pytest.raises(ParameterError):
            EntropyTreeClassifier().fit(
                labelled_store, "label", features=["label", "x1"]
            )

    def test_node_count(self, labelled_store):
        tree = EntropyTreeClassifier(max_depth=1, engine="exact").fit(
            labelled_store, "label", features=["x1", "x2"]
        )
        # root + one child per value of the chosen 4-valued attribute
        assert tree.node_count() == 5

    def test_predict_subset_of_rows(self, labelled_store):
        tree = EntropyTreeClassifier(max_depth=2, engine="exact").fit(
            labelled_store, "label", features=["x1", "x2"]
        )
        rows = np.arange(100)
        predictions = tree.predict(labelled_store, rows)
        assert predictions.shape == (100,)
        assert set(predictions.tolist()) <= set(range(4))


class TestClustering:
    @pytest.fixture(scope="class")
    def clusterable_store(self):
        """Two planted blocks of records with distinct attribute profiles."""
        rng = np.random.default_rng(5)
        n_half = 1500
        block_a = {
            "c1": rng.integers(0, 2, n_half),  # values {0,1}
            "c2": rng.integers(0, 2, n_half),
            "c3": rng.integers(0, 2, n_half),
        }
        block_b = {
            "c1": rng.integers(4, 6, n_half),  # values {4,5}: disjoint
            "c2": rng.integers(4, 6, n_half),
            "c3": rng.integers(4, 6, n_half),
        }
        return ColumnStore(
            {
                name: np.concatenate([block_a[name], block_b[name]])
                for name in block_a
            }
        )

    def test_recovers_planted_blocks(self, clusterable_store):
        result = coolcat_cluster(clusterable_store, k=2, seed=0)
        n_half = clusterable_store.num_rows // 2
        first = result.assignments[:n_half]
        second = result.assignments[n_half:]
        # Each planted block should be (almost) pure within one cluster.
        purity_first = max(np.mean(first == 0), np.mean(first == 1))
        purity_second = max(np.mean(second == 0), np.mean(second == 1))
        # COOLCAT's greedy streaming pass is not exact; high (not perfect)
        # purity on cleanly separable blocks is the documented behaviour.
        assert purity_first > 0.8
        assert purity_second > 0.8
        # and the two blocks land in different clusters
        assert np.bincount(first, minlength=2).argmax() != np.bincount(
            second, minlength=2
        ).argmax()

    def test_objective_beats_random_assignment(self, clusterable_store):
        result = coolcat_cluster(clusterable_store, k=2, seed=0)
        rng = np.random.default_rng(0)
        random_assign = rng.integers(0, 2, clusterable_store.num_rows)
        random_objective = expected_entropy(clusterable_store, random_assign, 2)
        assert result.expected_entropy < random_objective

    def test_cluster_sizes_sum_to_rows(self, clusterable_store):
        result = coolcat_cluster(clusterable_store, k=3, seed=1)
        assert result.cluster_sizes().sum() == clusterable_store.num_rows
        assert (result.assignments >= 0).all()

    def test_parameter_validation(self, clusterable_store):
        with pytest.raises(ParameterError):
            coolcat_cluster(clusterable_store, k=1)
        with pytest.raises(ParameterError):
            coolcat_cluster(clusterable_store, k=5, sample_size=3)
        with pytest.raises(ParameterError):
            coolcat_cluster(clusterable_store, k=2, refine_fraction=1.5)

    def test_expected_entropy_validates_length(self, clusterable_store):
        with pytest.raises(ParameterError):
            expected_entropy(clusterable_store, np.zeros(3, dtype=int), 2)
