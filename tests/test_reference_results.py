"""Integrity of the shipped reference results (results/*.json).

EXPERIMENTS.md quotes these numbers and `repro compare` diffs against
them, so the repository's own artifacts must stay loadable and
internally consistent. These tests do not re-run anything — they only
validate the stored files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.persistence import load_figure_run
from repro.experiments.summary import summarize_run

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

pytestmark = pytest.mark.skipif(
    not RESULTS_DIR.exists(), reason="reference results not generated"
)


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_reference_loads_and_is_complete(figure_id):
    path = RESULTS_DIR / f"{figure_id}.json"
    assert path.exists(), f"missing reference {path}"
    run = load_figure_run(path)
    spec = FIGURES[figure_id]
    expected = len(run.datasets) * len(spec.x_values) * len(spec.algorithms)
    assert len(run.points) == expected
    assert run.datasets == ["cdc", "hus", "pus", "enem"]
    assert run.scale == 1.0


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_reference_accuracy_claims(figure_id):
    """The EXPERIMENTS.md accuracy statements hold in the stored data."""
    run = load_figure_run(RESULTS_DIR / f"{figure_id}.json")
    summary = summarize_run(run)
    lo, hi = summary.swope_accuracy
    assert hi == 1.0
    if figure_id in ("fig9", "fig10"):  # the documented epsilon cliffs
        assert lo >= 0.74
    else:
        assert lo == 1.0


@pytest.mark.parametrize("figure_id", ["fig1", "fig3", "fig5", "fig7"])
def test_reference_ordering_claims(figure_id):
    """SWOPE <= baseline <= exact in cells at every stored point."""
    run = load_figure_run(RESULTS_DIR / f"{figure_id}.json")
    summary = summarize_run(run)
    for baseline, (lo, _hi) in summary.speedups.items():
        assert lo >= 1.0, f"{figure_id}: swope slower than {baseline} in cells"


def test_reference_headline_factors():
    """The headline ranges quoted in EXPERIMENTS.md / README."""
    fig1 = summarize_run(load_figure_run(RESULTS_DIR / "fig1.json"))
    lo, hi = fig1.speedups["entropy_rank"]
    assert 4.0 <= lo and hi <= 10.0
    lo, hi = fig1.speedups["exact"]
    assert lo >= 85.0 and hi <= 280.0


def test_reference_text_tables_exist():
    for figure_id in FIGURES:
        text = (RESULTS_DIR / f"{figure_id}.txt").read_text()
        assert figure_id in text
    assert "31,290,943" in (RESULTS_DIR / "table2.txt").read_text()
