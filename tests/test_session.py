"""Tests for QuerySession (shared-sampler multi-query amortisation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.core.session import QuerySession
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
)


@pytest.fixture()
def store(rng):
    n = 8000
    base = rng.integers(0, 16, n)
    return ColumnStore(
        {
            "wide": rng.integers(0, 120, n),
            "medium": rng.integers(0, 30, n),
            "base": base,
            "follower": np.where(rng.random(n) < 0.7, base, rng.integers(0, 16, n)),
            "narrow": rng.integers(0, 3, n),
        }
    )


class TestRetainMode:
    def test_release_is_noop_when_retaining(self, store):
        sampler = PrefixSampler(store, seed=0, retain=True)
        sampler.marginal_counts("wide", 500)
        cost = sampler.cells_scanned
        sampler.release("wide")
        sampler.marginal_counts("wide", 500)
        assert sampler.cells_scanned == cost  # counter survived


class TestAmortisation:
    def test_repeated_query_is_free(self, store):
        session = QuerySession(store, seed=0)
        first = session.top_k_entropy(2, epsilon=0.1)
        second = session.top_k_entropy(2, epsilon=0.1)
        assert second.attributes == first.attributes
        assert session.marginal_cells() == 0

    def test_floor_ratchets_monotonically(self, store):
        session = QuerySession(store, seed=0)
        floors = [session.sample_floor]
        session.top_k_entropy(1, epsilon=0.5)
        floors.append(session.sample_floor)
        session.top_k_entropy(1, epsilon=0.05)
        floors.append(session.sample_floor)
        session.top_k_entropy(1, epsilon=0.5)  # easier query cannot lower it
        floors.append(session.sample_floor)
        assert floors == sorted(floors)
        assert floors[-1] == floors[-2]

    def test_total_marginal_cost_bounded_by_full_scan(self, store):
        session = QuerySession(store, seed=0)
        for threshold in (4.0, 2.0, 1.0, 0.5):
            session.filter_entropy(threshold, epsilon=0.05)
        # Entropy queries can never read more than every cell once.
        assert session.cells_scanned <= store.num_attributes * store.num_rows
        assert session.queries_run == 4

    def test_cheaper_than_fresh_samplers(self, store):
        session = QuerySession(store, seed=0)
        session.top_k_entropy(2, epsilon=0.05)
        session.filter_entropy(2.0, epsilon=0.05)
        session.top_k_entropy(4, epsilon=0.05)
        shared_total = session.cells_scanned

        fresh_total = 0
        from repro.core.filtering import swope_filter_entropy
        from repro.core.topk import swope_top_k_entropy

        for run in (
            lambda: swope_top_k_entropy(store, 2, epsilon=0.05, seed=0),
            lambda: swope_filter_entropy(store, 2.0, epsilon=0.05, seed=0),
            lambda: swope_top_k_entropy(store, 4, epsilon=0.05, seed=0),
        ):
            fresh_total += run().stats.cells_scanned
        assert shared_total < fresh_total


class TestGuaranteesStillHold:
    def test_topk_contract_across_session(self, store):
        exact = exact_entropies(store)
        session = QuerySession(store, seed=1)
        for k, epsilon in ((1, 0.3), (2, 0.1), (3, 0.5)):
            result = session.top_k_entropy(k, epsilon=epsilon)
            assert check_top_k_guarantee(result, exact, epsilon) == []

    def test_filter_contract_across_session(self, store):
        exact = exact_entropies(store)
        session = QuerySession(store, seed=1)
        for threshold in (4.0, 2.0, 1.0):
            result = session.filter_entropy(threshold, epsilon=0.1)
            assert check_filter_guarantee(result, exact, 0.1) == []

    def test_mi_queries_in_session(self, store):
        exact = exact_mutual_informations(store, "base")
        session = QuerySession(store, seed=1)
        top = session.top_k_mutual_information("base", 1, epsilon=0.5)
        assert check_top_k_guarantee(top, exact, 0.5) == []
        kept = session.filter_mutual_information("base", 0.5, epsilon=0.5)
        assert check_filter_guarantee(kept, exact, 0.5) == []
        assert "follower" in top.attributes

    def test_mixed_entropy_and_mi(self, store):
        session = QuerySession(store, seed=2)
        session.top_k_entropy(2, epsilon=0.1)
        after_entropy = session.cells_scanned
        session.top_k_mutual_information("base", 1, epsilon=0.5)
        # MI adds joint-count work, so the meter must grow...
        assert session.cells_scanned > after_entropy
        # ...but the marginal counters are shared with the entropy query.
        assert session.queries_run == 2


class TestSequentialSession:
    def test_sequential_mode(self, store):
        session = QuerySession(store, sequential=True)
        result = session.top_k_entropy(1, epsilon=0.2)
        assert result.attributes == ["wide"]
