"""Tests for the out-of-core streaming counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.data.column_store import ColumnStore
from repro.data.streaming import StreamingCounts, stream_csv_counts
from repro.exceptions import DataFormatError, ParameterError, SchemaError


class TestStreamingCounts:
    def test_entropies_match_exact(self, small_store):
        counts = StreamingCounts(list(small_store.attributes))
        for row in range(small_store.num_rows):
            counts.consume(
                [int(small_store.column(a)[row]) for a in small_store.attributes]
            )
        exact = exact_entropies(small_store)
        streamed = counts.entropies()
        for name in exact:
            assert streamed[name] == pytest.approx(exact[name])

    def test_mi_matches_exact(self, correlated_store):
        names = list(correlated_store.attributes)
        counts = StreamingCounts(names, target="target")
        for row in range(correlated_store.num_rows):
            counts.consume(
                [int(correlated_store.column(a)[row]) for a in names]
            )
        exact = exact_mutual_informations(correlated_store, "target")
        streamed = counts.mutual_informations()
        for name in exact:
            assert streamed[name] == pytest.approx(exact[name])

    def test_support_size_tracks_distinct_values(self):
        counts = StreamingCounts(["a"])
        for value in ["x", "y", "x", "z"]:
            counts.consume([value])
        assert counts.support_size("a") == 3
        assert counts.num_rows == 4

    def test_raw_values_allowed(self):
        # The streaming layer never encodes: raw strings are fine.
        counts = StreamingCounts(["a", "b"], target="a")
        counts.consume(["hello", 3.5])
        counts.consume(["hello", None])
        assert counts.entropy("a") == 0.0
        assert counts.entropy("b") == pytest.approx(1.0)

    def test_errors(self):
        with pytest.raises(ParameterError):
            StreamingCounts([])
        with pytest.raises(ParameterError):
            StreamingCounts(["a", "a"])
        with pytest.raises(SchemaError):
            StreamingCounts(["a"], target="ghost")
        counts = StreamingCounts(["a", "b"], target="a")
        with pytest.raises(ParameterError):
            counts.consume(["only one"])
        with pytest.raises(SchemaError):
            counts.entropy("ghost")
        with pytest.raises(SchemaError):
            counts.mutual_information("a")  # target with itself
        no_target = StreamingCounts(["a"])
        with pytest.raises(ParameterError, match="no target"):
            no_target.mutual_information("a")


class TestStreamCsv:
    def test_matches_in_memory_pipeline(self, tmp_path):
        rng = np.random.default_rng(3)
        n = 2000
        a = rng.integers(0, 10, n)
        b = np.where(rng.random(n) < 0.7, a, rng.integers(0, 10, n))
        path = tmp_path / "data.csv"
        lines = ["a,b"] + [f"{x},{y}" for x, y in zip(a, b)]
        path.write_text("\n".join(lines) + "\n")

        counts = stream_csv_counts(path, target="a")
        store = ColumnStore({"a": a, "b": b})
        exact_h = exact_entropies(store)
        assert counts.entropy("a") == pytest.approx(exact_h["a"])
        assert counts.entropy("b") == pytest.approx(exact_h["b"])
        exact_mi = exact_mutual_informations(store, "a")["b"]
        assert counts.mutual_information("b") == pytest.approx(exact_mi)

    def test_max_rows(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("a\n1\n2\n3\n4\n")
        counts = stream_csv_counts(path, max_rows=2)
        assert counts.num_rows == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError):
            stream_csv_counts(tmp_path / "ghost.csv")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataFormatError):
            stream_csv_counts(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(DataFormatError, match="row 3"):
            stream_csv_counts(path)
