"""Tests for :mod:`repro.data.mmap_store` — the out-of-core column store.

Four layers:

* construction — chunked writer round-trips, schema validation of
  appended chunks, refusal to overwrite a finished store, and the
  crash-safety property that an interrupted build leaves no manifest;
* manifest hygiene — ``open`` rejects missing/corrupt/foreign/versioned
  manifests and stores with missing or tampered column files;
* engine interop — fingerprints byte-identical to the in-memory store
  (so checkpoints and caches transfer), ``ColumnSource`` conformance,
  and bit-identical query answers mmap vs memory;
* durability — checkpoint/resume round-trip on an mmap-backed plan,
  including across a reopen of the store directory.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import swope_top_k_entropy, swope_top_k_mutual_information
from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.data.column_store import ColumnSource, ColumnStore
from repro.data.mmap_store import (
    MANIFEST_NAME,
    MMAP_STORE_SCHEMA_VERSION,
    MmapStore,
    MmapStoreWriter,
)
from repro.durability.checkpoint import load_checkpoint, store_fingerprint
from repro.exceptions import (
    CheckpointMismatchError,
    ParameterError,
    SchemaError,
)
from repro.testing.chaos import plan_fingerprint

SEED = 7


@pytest.fixture()
def memory_store(rng: np.random.Generator) -> ColumnStore:
    n = 1500
    target = rng.integers(0, 5, n)
    return ColumnStore(
        {
            "wide": rng.integers(0, 40, n),
            "narrow": rng.integers(0, 3, n),
            "target": target,
            "noisy": np.where(
                rng.random(n) < 0.6, target, rng.integers(0, 5, n)
            ),
        }
    )


@pytest.fixture()
def disk_store(memory_store, tmp_path) -> MmapStore:
    return MmapStore.from_column_store(
        memory_store, tmp_path / "store", chunk_rows=256
    )


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
class TestWriter:
    def test_chunked_build_round_trips(self, memory_store, disk_store):
        assert disk_store.num_rows == memory_store.num_rows
        assert disk_store.attributes == memory_store.attributes
        assert disk_store.support_sizes() == memory_store.support_sizes()
        assert disk_store.max_support_size() == memory_store.max_support_size()
        for name in memory_store.attributes:
            np.testing.assert_array_equal(
                np.asarray(disk_store.column(name)), memory_store.column(name)
            )

    def test_dtypes_match_in_memory_choice(self, memory_store, disk_store):
        # Same smallest-int dtype selection as ColumnStore — a dtype
        # drift would silently change the fingerprint bytes.
        for name in memory_store.attributes:
            assert (
                disk_store.column(name).dtype
                == memory_store.column(name).dtype
            )

    def test_refuses_existing_store(self, memory_store, disk_store):
        with pytest.raises(ParameterError, match="already holds"):
            MmapStoreWriter(
                disk_store.directory, memory_store.support_sizes(), 10
            )

    def test_incomplete_build_cannot_finalize(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "partial", {"a": 4}, num_rows=100)
        writer.append({"a": np.zeros(40, dtype=np.int64)})
        with pytest.raises(ParameterError, match="incomplete"):
            writer.finalize()
        # The interrupted build is not mistaken for a store.
        assert not (tmp_path / "partial" / MANIFEST_NAME).exists()
        with pytest.raises(SchemaError, match="no manifest"):
            MmapStore.open(tmp_path / "partial")

    def test_chunk_overflow_rejected(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", {"a": 4}, num_rows=10)
        with pytest.raises(ParameterError, match="overflows"):
            writer.append({"a": np.zeros(11, dtype=np.int64)})

    def test_chunk_schema_mismatch_rejected(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", {"a": 4, "b": 2}, num_rows=10)
        with pytest.raises(SchemaError, match="missing=\\['b'\\]"):
            writer.append({"a": np.zeros(5, dtype=np.int64)})

    def test_ragged_chunk_rejected(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", {"a": 4, "b": 2}, num_rows=10)
        with pytest.raises(SchemaError, match="rows, expected"):
            writer.append(
                {
                    "a": np.zeros(5, dtype=np.int64),
                    "b": np.zeros(4, dtype=np.int64),
                }
            )

    def test_out_of_range_codes_rejected(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", {"a": 4}, num_rows=10)
        with pytest.raises(SchemaError, match="declares support size 4"):
            writer.append({"a": np.array([0, 1, 4], dtype=np.int64)})
        with pytest.raises(SchemaError, match="negative"):
            writer.append({"a": np.array([-1], dtype=np.int64)})

    def test_non_integer_chunk_rejected(self, tmp_path):
        writer = MmapStoreWriter(tmp_path / "s", {"a": 4}, num_rows=10)
        with pytest.raises(SchemaError, match="integer array"):
            writer.append({"a": np.array([0.5, 1.0])})

    def test_direct_construction_blocked(self, tmp_path):
        with pytest.raises(ParameterError, match="MmapStore.open"):
            MmapStore(tmp_path, {})


# ----------------------------------------------------------------------
# Manifest hygiene
# ----------------------------------------------------------------------
class TestOpenValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(SchemaError, match="no manifest.json"):
            MmapStore.open(tmp_path / "nope")

    def test_corrupt_manifest(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SchemaError, match="corrupt manifest"):
            MmapStore.open(root)

    def test_foreign_manifest(self, tmp_path):
        root = tmp_path / "foreign"
        root.mkdir()
        (root / MANIFEST_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(SchemaError, match="not a repro-mmap-store"):
            MmapStore.open(root)

    def test_future_schema_version_refused(self, disk_store):
        manifest_path = disk_store.directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["schema_version"] = MMAP_STORE_SCHEMA_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaError, match="not supported"):
            MmapStore.open(disk_store.directory)

    def test_missing_column_file_refused(self, disk_store):
        (disk_store.directory / "col_00000.npy").unlink()
        with pytest.raises(SchemaError, match="missing column file"):
            MmapStore.open(disk_store.directory)

    def test_verify_fingerprint_detects_tampering(self, disk_store):
        assert disk_store.verify_fingerprint() == disk_store.fingerprint()
        path = disk_store.directory / "col_00000.npy"
        data = np.load(path)
        data[0] = (data[0] + 1) % 2  # stay in range, change the bytes
        np.save(path, data)
        reopened = MmapStore.open(disk_store.directory)
        with pytest.raises(SchemaError, match="fails verification"):
            reopened.verify_fingerprint()


# ----------------------------------------------------------------------
# Engine interop
# ----------------------------------------------------------------------
class TestColumnSourceInterop:
    def test_satisfies_protocol(self, disk_store):
        assert isinstance(disk_store, ColumnSource)

    def test_fingerprint_equals_in_memory(self, memory_store, disk_store):
        assert disk_store.fingerprint() == memory_store.fingerprint()
        assert store_fingerprint(disk_store) == store_fingerprint(memory_store)

    def test_fingerprint_stable_across_reopen(self, disk_store):
        reopened = MmapStore.open(disk_store.directory)
        assert reopened.fingerprint() == disk_store.fingerprint()

    def test_column_block_matches_memory(self, memory_store, disk_store, rng):
        rows = rng.permutation(memory_store.num_rows)[:333]
        for name in memory_store.attributes:
            np.testing.assert_array_equal(
                disk_store.column_block(name, rows),
                memory_store.column_block(name, rows),
            )
            np.testing.assert_array_equal(
                disk_store.column_block(name, slice(10, 200)),
                memory_store.column_block(name, slice(10, 200)),
            )

    def test_value_counts_match_memory(self, memory_store, disk_store):
        for name in memory_store.attributes:
            np.testing.assert_array_equal(
                disk_store.value_counts(name), memory_store.value_counts(name)
            )
            np.testing.assert_array_equal(
                disk_store.value_counts(name, num_rows=500),
                memory_store.value_counts(name, num_rows=500),
            )

    def test_unknown_attribute_rejected(self, disk_store):
        with pytest.raises(SchemaError, match="unknown attribute"):
            disk_store.column("ghost")
        with pytest.raises(SchemaError, match="unknown attribute"):
            disk_store.support_size("ghost")

    @pytest.mark.parametrize("backend", ["numpy", "process"])
    def test_queries_bit_identical_vs_memory(
        self, memory_store, disk_store, backend
    ):
        for source in (memory_store, disk_store):
            assert "target" in source
        mem_topk = swope_top_k_entropy(
            memory_store, 3, seed=SEED, epsilon=0.3, backend=backend
        )
        disk_topk = swope_top_k_entropy(
            disk_store, 3, seed=SEED, epsilon=0.3, backend=backend
        )
        assert mem_topk.attributes == disk_topk.attributes
        assert mem_topk.estimates == disk_topk.estimates
        assert (
            mem_topk.stats.cells_scanned == disk_topk.stats.cells_scanned
        )
        mem_mi = swope_top_k_mutual_information(
            memory_store, "target", 2, seed=SEED, epsilon=0.6, backend=backend
        )
        disk_mi = swope_top_k_mutual_information(
            disk_store, "target", 2, seed=SEED, epsilon=0.6, backend=backend
        )
        assert mem_mi.attributes == disk_mi.attributes
        assert mem_mi.estimates == disk_mi.estimates


# ----------------------------------------------------------------------
# Durability on an mmap-backed plan
# ----------------------------------------------------------------------
def _specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=2),
        QuerySpec(
            kind="top_k", score="mutual_information", k=1, target="target"
        ),
    ]


class TestMmapCheckpointResume:
    def test_checkpoint_records_mmap_fingerprint(self, disk_store, tmp_path):
        path = tmp_path / "plan.ckpt"
        executor = PlanExecutor(disk_store, seed=SEED, checkpoint_path=path)
        executor.execute(plan_queries(disk_store, _specs()))
        snapshot = load_checkpoint(path, store=disk_store)
        assert snapshot.dataset["fingerprint"] == disk_store.fingerprint()

    def test_resume_round_trip_across_reopen(
        self, memory_store, disk_store, tmp_path
    ):
        plan = plan_queries(disk_store, _specs())
        path = tmp_path / "plan.ckpt"
        reference = plan_fingerprint(
            PlanExecutor(memory_store, seed=SEED).execute(
                plan_queries(memory_store, _specs())
            )
        )
        outcome = PlanExecutor(
            disk_store, seed=SEED, checkpoint_path=path
        ).execute(plan)
        # mmap-backed plan answers equal the in-memory plan answers.
        assert plan_fingerprint(outcome) == reference
        # Resume against a *reopened* store: the fingerprint recorded in
        # the checkpoint must match the manifest of the fresh handle.
        reopened = MmapStore.open(disk_store.directory)
        resumed = PlanExecutor.resume(path, reopened)
        replay = resumed.execute(resumed.resumed_plan())
        assert plan_fingerprint(replay) == reference

    def test_resume_rejects_different_store(self, disk_store, tmp_path, rng):
        path = tmp_path / "plan.ckpt"
        PlanExecutor(disk_store, seed=SEED, checkpoint_path=path).execute(
            plan_queries(disk_store, _specs())
        )
        other = ColumnStore(
            {
                "wide": rng.integers(0, 40, 100),
                "narrow": rng.integers(0, 3, 100),
                "target": rng.integers(0, 5, 100),
                "noisy": rng.integers(0, 5, 100),
            }
        )
        with pytest.raises(CheckpointMismatchError):
            PlanExecutor.resume(path, other)
