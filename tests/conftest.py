"""Shared fixtures for the test suite.

All fixtures are deterministic: fixed seeds, fixed shapes. Sizes are kept
small (thousands of rows) so the full suite runs in seconds; the
statistical-guarantee tests build their own, slightly larger, stores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column_store import ColumnStore


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.jsonl from the current engine instead"
             " of comparing against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden trace files."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_store(rng: np.random.Generator) -> ColumnStore:
    """4 columns x 5000 rows with clearly separated entropies.

    Exact entropies (approximately): wide ~ 7.6, medium ~ 5.6,
    narrow ~ 2.0, skewed ~ 0.3 — well separated so exact rankings are
    stable across seeds.
    """
    n = 5000
    return ColumnStore(
        {
            "wide": rng.integers(0, 200, n),
            "medium": rng.integers(0, 50, n),
            "narrow": rng.integers(0, 4, n),
            "skewed": (rng.random(n) < 0.05).astype(np.int64),
        }
    )


@pytest.fixture
def tiny_store() -> ColumnStore:
    """A 8-row store with hand-checkable counts."""
    return ColumnStore(
        {
            "a": np.array([0, 0, 1, 1, 2, 2, 3, 3]),
            "b": np.array([0, 0, 0, 0, 1, 1, 1, 1]),
            "c": np.array([0, 0, 0, 0, 0, 0, 0, 0]),
        }
    )


@pytest.fixture
def correlated_store(rng: np.random.Generator) -> ColumnStore:
    """A store with a target column and candidates of decreasing MI.

    ``copy`` is an exact copy of ``target`` (MI = H(target)); ``noisy``
    agrees 70% of the time; ``independent`` is drawn independently.
    """
    n = 6000
    target = rng.integers(0, 8, n)
    keep = rng.random(n) < 0.7
    noisy = np.where(keep, target, rng.integers(0, 8, n))
    return ColumnStore(
        {
            "target": target,
            "copy": target.copy(),
            "noisy": noisy,
            "independent": rng.integers(0, 8, n),
        }
    )
