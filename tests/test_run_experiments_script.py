"""Tests for scripts/run_experiments.py (the reference-results generator)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"
sys.path.insert(0, str(SCRIPTS_DIR))

import run_experiments  # noqa: E402

from repro.experiments.persistence import load_figure_run  # noqa: E402


class TestRunExperimentsScript:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("results")
        argv = sys.argv
        sys.argv = [
            "run_experiments.py",
            "--scale", "0.01",
            "--datasets", "cdc",
            "--targets", "1",
            "--figures", "fig1,fig9",
            "--out", str(out),
        ]
        try:
            run_experiments.main()
        finally:
            sys.argv = argv
        return out

    def test_table2_artifacts(self, out_dir):
        assert (out_dir / "table2.txt").exists()
        rows = json.loads((out_dir / "table2.json").read_text())
        assert len(rows) == 4

    def test_selected_figures_only(self, out_dir):
        produced = {p.stem for p in out_dir.glob("fig*.txt")}
        assert produced == {"fig1", "fig9"}

    def test_json_loads_into_compare_format(self, out_dir):
        run = load_figure_run(out_dir / "fig1.json")
        assert run.spec.figure_id == "fig1"
        assert run.points

    def test_summary_lines(self, out_dir):
        lines = (out_dir / "summary.txt").read_text().strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["figure"] == "fig1"
        assert "speedup_vs_exact" in first

    def test_text_reports_render(self, out_dir):
        text = (out_dir / "fig1.txt").read_text()
        assert "dataset: cdc" in text
        assert "x vs exact" in text
