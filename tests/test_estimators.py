"""Unit tests for :mod:`repro.core.estimators`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.estimators import (
    entropy_from_counts,
    entropy_from_probabilities,
    jackknife_entropy,
    joint_entropy_from_counter,
    miller_madow_entropy,
    mutual_information_from_counts,
)
from repro.data.joint import JointCounter
from repro.exceptions import ParameterError


class TestEntropyFromCounts:
    def test_uniform_counts(self):
        assert entropy_from_counts(np.array([5, 5, 5, 5])) == pytest.approx(2.0)

    def test_single_value_is_zero(self):
        assert entropy_from_counts(np.array([10])) == 0.0

    def test_zeros_ignored(self):
        with_zeros = entropy_from_counts(np.array([3, 0, 0, 7]))
        without = entropy_from_counts(np.array([3, 7]))
        assert with_zeros == pytest.approx(without)

    def test_known_biased_coin(self):
        # H(0.25) = 0.25 log2 4 + 0.75 log2 (4/3)
        expected = 0.25 * 2 + 0.75 * math.log2(4 / 3)
        assert entropy_from_counts(np.array([1, 3])) == pytest.approx(expected)

    def test_empty_counts(self):
        assert entropy_from_counts(np.array([], dtype=int)) == 0.0

    def test_total_consistency_check(self):
        with pytest.raises(ParameterError, match="declared"):
            entropy_from_counts(np.array([2, 2]), total=5)

    def test_explicit_total_accepted(self):
        assert entropy_from_counts(np.array([2, 2]), total=4) == pytest.approx(1.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ParameterError, match="non-negative"):
            entropy_from_counts(np.array([1, -1]))

    def test_2d_counts_rejected(self):
        with pytest.raises(ParameterError, match="1-D"):
            entropy_from_counts(np.zeros((2, 2), dtype=int))

    def test_never_negative(self):
        assert entropy_from_counts(np.array([1])) >= 0.0

    def test_scale_invariance(self):
        a = entropy_from_counts(np.array([1, 2, 3]))
        b = entropy_from_counts(np.array([10, 20, 30]))
        assert a == pytest.approx(b)


class TestEntropyFromProbabilities:
    def test_uniform(self):
        assert entropy_from_probabilities(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_point_mass(self):
        assert entropy_from_probabilities(np.array([1.0, 0.0])) == 0.0

    def test_not_normalised_rejected(self):
        with pytest.raises(ParameterError, match="sum to 1"):
            entropy_from_probabilities(np.array([0.5, 0.4]))

    def test_negative_rejected(self):
        with pytest.raises(ParameterError, match="non-negative"):
            entropy_from_probabilities(np.array([1.2, -0.2]))

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            entropy_from_probabilities(np.array([]))


class TestJointEntropyAndMI:
    def make_joint(self, a, b, u1, u2):
        counter = JointCounter(u1, u2)
        counter.update(np.asarray(a), np.asarray(b))
        return counter

    def test_joint_entropy_of_independent_uniform(self):
        # all four (a, b) combinations equally often -> H = 2 bits
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 0, 1])
        counter = self.make_joint(a, b, 2, 2)
        assert joint_entropy_from_counter(counter) == pytest.approx(2.0)

    def test_mi_of_identical_columns_is_their_entropy(self):
        a = np.array([0, 1, 2, 3] * 5)
        counter = self.make_joint(a, a, 4, 4)
        counts = np.bincount(a, minlength=4)
        mi = mutual_information_from_counts(counts, counts, counter)
        assert mi == pytest.approx(2.0)

    def test_mi_of_independent_columns_is_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 4, 50_000)
        b = rng.integers(0, 4, 50_000)
        counter = self.make_joint(a, b, 4, 4)
        mi = mutual_information_from_counts(
            np.bincount(a, minlength=4), np.bincount(b, minlength=4), counter
        )
        assert 0.0 <= mi < 0.01

    def test_mi_total_mismatch_rejected(self):
        a = np.array([0, 1])
        counter = self.make_joint(a, a, 2, 2)
        with pytest.raises(ParameterError, match="disagree"):
            mutual_information_from_counts(
                np.array([1, 1]), np.array([1, 1, 1]), counter
            )

    def test_mi_never_negative(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 3, 100)
        counter = self.make_joint(a, b, 3, 3)
        mi = mutual_information_from_counts(
            np.bincount(a, minlength=3), np.bincount(b, minlength=3), counter
        )
        assert mi >= 0.0


class TestBiasCorrectedEstimators:
    def test_miller_madow_exceeds_plug_in(self):
        counts = np.array([3, 1, 2, 1, 1])
        assert miller_madow_entropy(counts) > entropy_from_counts(counts)

    def test_miller_madow_on_single_value(self):
        assert miller_madow_entropy(np.array([10])) == pytest.approx(0.0)

    def test_miller_madow_empty(self):
        assert miller_madow_entropy(np.array([], dtype=int)) == 0.0

    def test_miller_madow_correction_magnitude(self):
        counts = np.array([5, 5])
        expected = entropy_from_counts(counts) + 1 / (20 * math.log(2))
        assert miller_madow_entropy(counts) == pytest.approx(expected)

    def test_jackknife_close_to_truth_on_large_sample(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, 16, 20_000)
        counts = np.bincount(data, minlength=16)
        assert jackknife_entropy(counts) == pytest.approx(4.0, abs=0.01)

    def test_jackknife_reduces_bias_versus_plug_in(self):
        # Small samples from a uniform distribution: plug-in is biased low;
        # the jackknife estimate should be larger on average.
        rng = np.random.default_rng(4)
        plug, jack = [], []
        for _ in range(50):
            data = rng.integers(0, 8, 40)
            counts = np.bincount(data, minlength=8)
            plug.append(entropy_from_counts(counts))
            jack.append(jackknife_entropy(counts))
        assert np.mean(jack) > np.mean(plug)

    def test_jackknife_tiny_sample(self):
        assert jackknife_entropy(np.array([1])) == 0.0
        assert jackknife_entropy(np.array([], dtype=int)) == 0.0
