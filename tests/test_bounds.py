"""Unit tests for :mod:`repro.core.bounds` (Lemmas 1–4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import (
    beta_sensitivity,
    bias_bound,
    entropy_interval,
    joint_entropy_interval,
    mutual_information_interval,
    permutation_half_width,
    sample_size_for_width,
)
from repro.exceptions import ParameterError


class TestBetaSensitivity:
    def test_closed_form(self):
        m = 100
        expected = math.log2(m / (m - 1)) + math.log2(m - 1) / m
        assert beta_sensitivity(m) == pytest.approx(expected)

    def test_below_paper_upper_bound(self):
        # The paper uses beta < 2 log2(M) / M.
        for m in (2, 10, 100, 10_000):
            assert beta_sensitivity(m) < 2 * math.log2(max(m, 2)) / m + 1e-12

    def test_m_equal_two(self):
        assert beta_sensitivity(2) == pytest.approx(1.0)

    def test_m_equal_one_degenerate(self):
        assert beta_sensitivity(1) == 1.0

    def test_decreasing_in_m(self):
        values = [beta_sensitivity(m) for m in (4, 16, 64, 256, 1024)]
        assert values == sorted(values, reverse=True)

    def test_invalid_m(self):
        with pytest.raises(ParameterError):
            beta_sensitivity(0)


class TestHalfWidth:
    def test_zero_at_full_sample(self):
        assert permutation_half_width(1000, 1000, 0.05) == 0.0

    def test_matches_equation_six(self):
        m, n, p = 500, 10_000, 0.01
        beta = beta_sensitivity(m)
        slack = 1 - 1 / (2 * max(m, n - m))
        expected = beta * math.sqrt(
            m * (n - m) * math.log(2 / p) / (2 * (n - 0.5) * slack)
        )
        assert permutation_half_width(m, n, p) == pytest.approx(expected)

    def test_decreasing_in_m_in_useful_range(self):
        n = 100_000
        widths = [permutation_half_width(m, n, 0.01) for m in (100, 400, 1600, 6400)]
        assert widths == sorted(widths, reverse=True)

    def test_tighter_with_larger_failure_probability(self):
        loose = permutation_half_width(500, 10_000, 0.2)
        tight = permutation_half_width(500, 10_000, 0.001)
        assert loose < tight

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            permutation_half_width(10, 100, 0.0)
        with pytest.raises(ParameterError):
            permutation_half_width(10, 100, 1.0)

    def test_invalid_sizes(self):
        with pytest.raises(ParameterError):
            permutation_half_width(0, 100, 0.1)
        with pytest.raises(ParameterError):
            permutation_half_width(101, 100, 0.1)


class TestBiasBound:
    def test_matches_equation_seven(self):
        u, m, n = 50, 1000, 100_000
        expected = math.log2(1 + (u - 1) * (n - m) / (m * (n - 1)))
        assert bias_bound(u, m, n) == pytest.approx(expected)

    def test_zero_cases(self):
        assert bias_bound(50, 1000, 1000) == 0.0  # M = N
        assert bias_bound(1, 10, 100) == 0.0  # constant column
        assert bias_bound(5, 1, 1) == 0.0  # N = 1

    def test_decreasing_in_m(self):
        values = [bias_bound(100, m, 10_000) for m in (10, 100, 1000, 9999)]
        assert values == sorted(values, reverse=True)

    def test_increasing_in_support(self):
        values = [bias_bound(u, 100, 10_000) for u in (2, 10, 100, 1000)]
        assert values == sorted(values)

    def test_invalid_support(self):
        with pytest.raises(ParameterError):
            bias_bound(0, 10, 100)


class TestEntropyInterval:
    def test_width_identity(self):
        # The stopping rules rely on upper - lower = 2*lambda + b exactly
        # (before zero-clipping), i.e. H_lower = H_upper - 2λ - b.
        iv = entropy_interval(3.0, 50, 500, 10_000, 0.01)
        unclipped_lower = 3.0 - iv.half_width
        assert iv.upper - unclipped_lower == pytest.approx(iv.width)
        assert iv.width == pytest.approx(2 * iv.half_width + iv.bias)
        assert iv.upper == pytest.approx(3.0 + iv.half_width + iv.bias)

    def test_lower_clipped_at_zero(self):
        iv = entropy_interval(0.001, 50, 100, 10_000, 0.01)
        assert iv.lower == 0.0
        assert iv.upper > 0.0

    def test_midpoint_uses_unclipped_lower(self):
        iv = entropy_interval(0.001, 50, 100, 10_000, 0.01)
        assert iv.midpoint == pytest.approx(iv.upper - iv.width / 2)

    def test_collapses_at_full_sample(self):
        iv = entropy_interval(3.0, 50, 10_000, 10_000, 0.01)
        assert iv.lower == iv.upper == 3.0
        assert iv.width == 0.0

    def test_contains(self):
        iv = entropy_interval(3.0, 50, 500, 10_000, 0.01)
        assert iv.contains(3.0)
        assert not iv.contains(iv.upper + 1.0)

    def test_negative_sample_entropy_rejected(self):
        with pytest.raises(ParameterError):
            entropy_interval(-0.1, 50, 500, 10_000, 0.01)


class TestJointAndMIIntervals:
    def make_parts(self, m=500, n=10_000, p=0.01):
        target = entropy_interval(2.0, 10, m, n, p)
        candidate = entropy_interval(3.0, 20, m, n, p)
        joint = joint_entropy_interval(4.0, 10, 20, m, n, p)
        return target, candidate, joint

    def test_joint_uses_product_support(self):
        m, n, p = 500, 10_000, 0.01
        joint = joint_entropy_interval(4.0, 10, 20, m, n, p)
        direct = entropy_interval(4.0, 200, m, n, p)
        assert joint.bias == pytest.approx(direct.bias)

    def test_mi_width_is_six_lambda_plus_biases(self):
        target, candidate, joint = self.make_parts()
        mi = mutual_information_interval(target, candidate, joint, 1.0)
        expected = 6 * target.half_width + target.bias + candidate.bias + joint.bias
        assert mi.width == pytest.approx(expected)
        assert mi.bias_total == pytest.approx(
            target.bias + candidate.bias + joint.bias
        )

    def test_mi_bounds_assembled_correctly(self):
        target, candidate, joint = self.make_parts()
        mi = mutual_information_interval(target, candidate, joint, 1.0)
        lam = target.half_width
        expected_upper = 2.0 + 3.0 - 4.0 + 3 * lam + target.bias + candidate.bias
        assert mi.upper == pytest.approx(expected_upper)
        assert mi.lower == pytest.approx(max(0.0, expected_upper - mi.width))

    def test_mi_lower_clipped_at_zero(self):
        target, candidate, joint = self.make_parts(m=10)
        mi = mutual_information_interval(target, candidate, joint, 0.0)
        assert mi.lower >= 0.0

    def test_mi_collapses_at_full_sample(self):
        target, candidate, joint = self.make_parts(m=10_000)
        mi = mutual_information_interval(target, candidate, joint, 1.0)
        assert mi.lower == mi.upper == pytest.approx(1.0)

    def test_mi_mismatched_sample_sizes_rejected(self):
        target, candidate, _ = self.make_parts(m=500)
        joint_other = joint_entropy_interval(4.0, 10, 20, 600, 10_000, 0.01)
        with pytest.raises(ParameterError, match="share one sample"):
            mutual_information_interval(target, candidate, joint_other, 1.0)

    def test_mi_midpoint_is_center(self):
        target, candidate, joint = self.make_parts()
        mi = mutual_information_interval(target, candidate, joint, 1.0)
        assert mi.midpoint == pytest.approx(mi.upper - mi.width / 2)

    def test_mi_contains(self):
        target, candidate, joint = self.make_parts()
        mi = mutual_information_interval(target, candidate, joint, 1.0)
        assert mi.contains((mi.lower + mi.upper) / 2)


class TestSampleSizeForWidth:
    def test_width_actually_achieved(self):
        # Lemma 4: at the returned M, 2λ + b ≤ κ must hold.
        n, u, p = 200_000, 50, 0.001
        for kappa in (0.5, 1.0, 2.0):
            m = sample_size_for_width(kappa, u, n, p)
            if m < n:
                width = 2 * permutation_half_width(m, n, p) + bias_bound(u, m, n)
                assert width <= kappa + 1e-9

    def test_monotone_in_width(self):
        n = 1_000_000
        sizes = [sample_size_for_width(k, 50, n, 0.01) for k in (2.0, 1.0, 0.5, 0.25)]
        assert sizes == sorted(sizes)

    def test_clamped_to_population(self):
        assert sample_size_for_width(1e-9, 50, 1000, 0.01) == 1000

    def test_single_record_population(self):
        assert sample_size_for_width(0.5, 50, 1, 0.01) == 1

    def test_invalid_width(self):
        with pytest.raises(ParameterError):
            sample_size_for_width(0.0, 50, 1000, 0.01)


class TestStatisticalValidity:
    """Empirical check that Lemma 3 intervals actually cover the truth.

    Draw many shuffled prefixes of a fixed dataset and verify that the
    population empirical entropy falls inside the interval far more often
    than 1 - p (the bound is conservative, so coverage should be ~100%).
    """

    def test_interval_coverage(self):
        rng = np.random.default_rng(0)
        n, u, m, p = 20_000, 20, 500, 0.1
        data = rng.integers(0, u, n)
        truth = -sum(
            c / n * math.log2(c / n) for c in np.bincount(data, minlength=u) if c
        )
        misses = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(data, size=m, replace=False)
            h_s = -sum(
                c / m * math.log2(c / m)
                for c in np.bincount(sample, minlength=u)
                if c
            )
            iv = entropy_interval(h_s, u, m, n, p)
            if not iv.contains(truth):
                misses += 1
        assert misses / trials <= p
