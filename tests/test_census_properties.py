"""Property-based tests (hypothesis) for the census workload generators.

The contracts pinned here are what the second experiments track and the
golden artifacts lean on:

* manifest determinism — the manifest (and its sha256) is a pure function
  of ``(scenario, seed, scale)``, byte for byte;
* declared vs. realized schema — every generated column respects the
  support its spec declares (including the missing sentinel);
* corruption rates — realized missingness/noise land within binomial
  tolerance of the configured rates;
* MI structure — the exact baselines recover the engineered ground-truth
  MI ordering of the correlated group.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import exact_mutual_informations
from repro.synth.census import SCENARIOS, generate_census, manifest_json

SCALE = 0.01  # hypothesis runs many examples; keep each generation small

scenario_keys = st.sampled_from(sorted(SCENARIOS))
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def _binomial_tolerance(rate: float, n: int) -> float:
    """4 sigma of a binomial proportion plus discreteness slack."""
    return 4.0 * math.sqrt(rate * (1.0 - rate) / n) + 1.0 / n


@settings(max_examples=8, deadline=None)
@given(key=scenario_keys, seed=seeds)
def test_manifest_is_deterministic_in_scenario_and_seed(
    key: str, seed: int
) -> None:
    first = generate_census(key, seed=seed, scale=SCALE)
    second = generate_census(key, seed=seed, scale=SCALE)
    assert manifest_json(first.manifest) == manifest_json(second.manifest)
    assert first.fingerprint == second.fingerprint
    for name in first.store.attributes:
        np.testing.assert_array_equal(
            first.store.column(name), second.store.column(name)
        )


@settings(max_examples=6, deadline=None)
@given(key=scenario_keys, seed=st.integers(min_value=0, max_value=1000))
def test_different_seeds_give_different_datasets(key: str, seed: int) -> None:
    a = generate_census(key, seed=seed, scale=SCALE)
    b = generate_census(key, seed=seed + 1, scale=SCALE)
    assert a.fingerprint != b.fingerprint


@settings(max_examples=8, deadline=None)
@given(key=scenario_keys, seed=seeds)
def test_declared_supports_match_realized_store(key: str, seed: int) -> None:
    dataset = generate_census(key, seed=seed, scale=SCALE)
    for spec in dataset.scenario.columns:
        assert dataset.store.support_size(spec.name) == spec.declared_support
        column = dataset.store.column(spec.name)
        assert int(column.max()) < spec.declared_support
        # A missing-capable column must actually use its sentinel; a
        # clean one must never produce it.
        if spec.missing_code is not None:
            assert bool((column == spec.missing_code).any())
        else:
            assert int(column.max()) < spec.support_size


@settings(max_examples=8, deadline=None)
@given(seed=seeds)
def test_corruption_rates_within_tolerance(seed: int) -> None:
    dataset = generate_census("noisy", seed=seed, scale=SCALE)
    n = dataset.store.num_rows
    entries = {
        str(e["name"]): e
        for e in dataset.manifest["columns"]  # type: ignore[union-attr]
    }
    for spec in dataset.scenario.columns:
        entry = entries[spec.name]
        realized_missing = float(entry["realized_missing_rate"])  # type: ignore[arg-type]
        realized_noise = float(entry["realized_noise_rate"])  # type: ignore[arg-type]
        assert abs(realized_missing - spec.missing_rate) <= _binomial_tolerance(
            spec.missing_rate, n
        )
        assert abs(realized_noise - spec.noise_rate) <= _binomial_tolerance(
            spec.noise_rate, n
        )
        if spec.missing_code is not None:
            # The manifest's realized rate is the actual sentinel share
            # (up to the manifest's 6-decimal rounding).
            column = dataset.store.column(spec.name)
            sentinel_share = float(np.mean(column == spec.missing_code))
            assert realized_missing == round(sentinel_share, 6)


@settings(max_examples=6, deadline=None)
@given(seed=seeds)
def test_exact_baselines_recover_mi_ordering(seed: int) -> None:
    # The correlated scenario engineers a strictly decreasing population
    # MI ladder; empirical MI on a finite sample is noisy but the ladder
    # gaps (>= 0.15 bits) dominate the noise at this scale.
    dataset = generate_census("correlated", seed=seed, scale=0.05)
    scenario = dataset.scenario
    members = [
        spec.name for spec in scenario.columns if spec.family == "correlated"
    ]
    targets = {
        spec.name: spec.target_mi
        for spec in scenario.columns
        if spec.family == "correlated"
    }
    exact = exact_mutual_informations(dataset.store, "ancestry", members)
    ranked = sorted(members, key=lambda name: -exact[name])
    expected = sorted(members, key=lambda name: -float(targets[name] or 0.0))
    assert ranked == expected
