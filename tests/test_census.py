"""Census scenario generators, provenance manifests, and degenerate inputs.

Covers the :mod:`repro.synth.census` surface — registry structure,
deterministic generation, manifest round-trips and error paths — plus the
bugfix sweep the suite surfaced: NaN canonicalisation in
:mod:`repro.data.encoding`, degenerate columns through ``describe``, and
the accounting variant of the support filter.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.describe import describe_store, profile_attribute
from repro.data.encoding import encode_column, encode_table
from repro.data.filters import (
    PAPER_MAX_SUPPORT,
    drop_high_support_columns,
    partition_by_support,
)
from repro.durability.checkpoint import store_fingerprint
from repro.exceptions import (
    DataFormatError,
    ManifestError,
    ManifestMismatchError,
    ParameterError,
)
from repro.synth.census import (
    COLUMN_FAMILIES,
    MANIFEST_SCHEMA_VERSION,
    SCENARIOS,
    CensusColumnSpec,
    generate_census,
    get_scenario,
    load_manifest,
    manifest_json,
    regenerate_from_manifest,
    verify_manifest,
    write_manifest,
)

SCALE = 0.01  # ~500-600 rows per scenario: fast, still multi-iteration


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_has_the_four_blind_spot_scenarios() -> None:
    assert set(SCENARIOS) == {"skewed", "correlated", "noisy", "threshold"}
    for scenario in SCENARIOS.values():
        assert scenario.queries, scenario.key
        assert scenario.num_columns >= 7
        for spec in scenario.columns:
            assert spec.family in COLUMN_FAMILIES


def test_registry_covers_the_drop_threshold() -> None:
    supports = {
        spec.support_size
        for scenario in SCENARIOS.values()
        for spec in scenario.columns
    }
    # Below, at, just above, and far above u = 1000 (the ISSUE's grid).
    for u in (998, 1000, 1001, 5000):
        assert u in supports
    assert any(u > PAPER_MAX_SUPPORT for u in supports)


def test_get_scenario_unknown_key() -> None:
    with pytest.raises(ParameterError, match="unknown census scenario"):
        get_scenario("nope")


def test_scenario_column_lookup() -> None:
    scenario = get_scenario("correlated")
    assert scenario.column("ancestry").family == "correlated_base"
    with pytest.raises(ParameterError, match="no column"):
        scenario.column("missing_col")


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(name="x", family="weird", support_size=4), "unknown family"),
        (dict(name="x", family="zipf", support_size=1, zipf_exponent=1.0),
         "support size"),
        (dict(name="x", family="zipf", support_size=4), "zipf_exponent"),
        (dict(name="x", family="entropy", support_size=4), "target_entropy"),
        (dict(name="x", family="correlated", support_size=4), "base and target_mi"),
        (dict(name="x", family="entropy", support_size=4, target_entropy=1.0,
              missing_rate=1.0), "missing_rate"),
        (dict(name="x", family="entropy", support_size=4, target_entropy=1.0,
              noise_rate=-0.1), "noise_rate"),
    ],
)
def test_column_spec_validation(kwargs: dict, message: str) -> None:
    with pytest.raises(ParameterError, match=message):
        CensusColumnSpec(**kwargs)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("key", sorted(SCENARIOS))
def test_generated_store_matches_declared_schema(key: str) -> None:
    dataset = generate_census(key, seed=1, scale=SCALE)
    scenario = dataset.scenario
    assert dataset.store.attributes == tuple(s.name for s in scenario.columns)
    for spec in scenario.columns:
        assert dataset.store.support_size(spec.name) == spec.declared_support
        column = dataset.store.column(spec.name)
        assert int(column.min()) >= 0
        assert int(column.max()) < spec.declared_support


def test_missing_values_use_one_sentinel_code() -> None:
    dataset = generate_census("noisy", seed=0, scale=SCALE)
    spec = dataset.scenario.column("income")  # 60% missing
    assert spec.missing_code == spec.support_size
    column = dataset.store.column("income")
    missing_share = float(np.mean(column == spec.missing_code))
    assert 0.4 < missing_share < 0.8
    # The sentinel is one category, not a per-row explosion: the observed
    # distinct count stays within the declared domain.
    profile = profile_attribute(dataset.store, "income")
    assert profile.observed_values <= spec.declared_support


def test_generation_parameter_validation() -> None:
    with pytest.raises(ParameterError, match="seed"):
        generate_census("skewed", seed=-1)
    with pytest.raises(ParameterError, match="scale"):
        generate_census("skewed", scale=0.0)


def test_generation_is_independent_of_later_columns() -> None:
    # Per-column child seeding: the shared prefix of two scenarios
    # generates identically even though one has extra columns after it.
    dataset = generate_census("threshold", seed=5, scale=SCALE)
    trimmed = dataset.scenario
    again = generate_census(trimmed, seed=5, scale=SCALE)
    for name in ("near_low", "mid_a"):
        np.testing.assert_array_equal(
            dataset.store.column(name), again.store.column(name)
        )


# ----------------------------------------------------------------------
# Manifests
# ----------------------------------------------------------------------
def test_manifest_records_schema_and_fingerprint() -> None:
    dataset = generate_census("correlated", seed=2, scale=SCALE)
    manifest = dataset.manifest
    assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
    assert manifest["scenario"] == "correlated"
    assert manifest["seed"] == 2
    assert manifest["num_rows"] == dataset.store.num_rows
    assert manifest["sha256"] == store_fingerprint(dataset.store)
    verify_manifest(manifest, dataset.store)


def test_manifest_round_trips_through_disk(tmp_path) -> None:
    dataset = generate_census("skewed", seed=3, scale=SCALE)
    path = tmp_path / "skewed.manifest.json"
    write_manifest(dataset.manifest, path)
    loaded = load_manifest(path)
    assert manifest_json(loaded) == manifest_json(dataset.manifest)
    assert path.read_text(encoding="utf-8") == manifest_json(dataset.manifest)
    regenerated = regenerate_from_manifest(loaded)
    assert regenerated.fingerprint == dataset.fingerprint


def test_load_manifest_error_paths(tmp_path) -> None:
    missing = tmp_path / "absent.json"
    with pytest.raises(DataFormatError, match="cannot read"):
        load_manifest(missing)
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(DataFormatError, match="not valid JSON"):
        load_manifest(bad)
    array = tmp_path / "array.json"
    array.write_text("[1, 2]", encoding="utf-8")
    with pytest.raises(ManifestError, match="JSON object"):
        load_manifest(array)
    dataset = generate_census("noisy", seed=0, scale=SCALE)
    payload = dict(dataset.manifest)
    del payload["sha256"]
    partial = tmp_path / "partial.json"
    partial.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ManifestError, match="misses keys"):
        load_manifest(partial)
    payload = dict(dataset.manifest)
    payload["schema_version"] = "census_scenario_v999"
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ManifestError, match="unknown manifest schema"):
        load_manifest(stale)


def test_verify_manifest_rejects_foreign_stores() -> None:
    dataset = generate_census("threshold", seed=0, scale=SCALE)
    other = generate_census("threshold", seed=1, scale=SCALE)
    with pytest.raises(ManifestMismatchError, match="sha256"):
        verify_manifest(dataset.manifest, other.store)
    shorter = dataset.store.head(100)
    with pytest.raises(ManifestMismatchError, match="rows"):
        verify_manifest(dataset.manifest, shorter)
    renamed = ColumnStore(
        {f"x_{n}": dataset.store.column(n) for n in dataset.store.attributes},
        support_sizes={
            f"x_{n}": dataset.store.support_size(n)
            for n in dataset.store.attributes
        },
    )
    with pytest.raises(ManifestMismatchError, match="columns"):
        verify_manifest(dataset.manifest, renamed)


def test_regenerate_from_manifest_unknown_scenario() -> None:
    dataset = generate_census("skewed", seed=0, scale=SCALE)
    payload = dict(dataset.manifest)
    payload["scenario"] = "retired_scenario"
    with pytest.raises(ManifestError, match="not in the registry"):
        regenerate_from_manifest(payload)


# ----------------------------------------------------------------------
# Support partitioning (the accounting filter variant)
# ----------------------------------------------------------------------
def test_partition_by_support_reports_dropped_columns() -> None:
    dataset = generate_census("threshold", seed=0, scale=SCALE)
    kept, dropped = partition_by_support(dataset.store)
    assert dropped == ("just_over", "far_over")
    assert "near_low" in kept.attributes and "at_cut" in kept.attributes
    # The legacy API returns the same kept set.
    legacy = drop_high_support_columns(dataset.store)
    assert legacy.attributes == kept.attributes


def test_partition_by_support_identity_when_nothing_drops() -> None:
    dataset = generate_census("correlated", seed=0, scale=SCALE)
    kept, dropped = partition_by_support(dataset.store)
    assert dropped == ()
    assert kept is dataset.store  # no needless copy on the no-op path


def test_partition_by_support_error_paths() -> None:
    store = ColumnStore(
        {
            "a": np.array([0, 1, 2, 3]),
            "b": np.array([0, 1, 1, 0]),
        }
    )
    with pytest.raises(ParameterError, match="max_support"):
        partition_by_support(store, max_support=0)
    with pytest.raises(ParameterError, match="exceed support size"):
        partition_by_support(store, max_support=1)


# ----------------------------------------------------------------------
# Bugfix sweep: degenerate columns the suite generates
# ----------------------------------------------------------------------
def test_encode_column_canonicalizes_nan() -> None:
    codes, vocabulary = encode_column(
        np.array([1.0, float("nan"), float("nan"), 2.0, float("nan")])
    )
    assert len(vocabulary) == 3  # 1.0, NaN (once), 2.0
    assert codes.tolist() == [0, 1, 1, 2, 1]
    assert math.isnan(vocabulary[1])  # type: ignore[arg-type]


def test_encode_column_all_nan_is_one_category() -> None:
    codes, vocabulary = encode_column(np.full(50, np.nan))
    assert len(vocabulary) == 1
    assert set(codes.tolist()) == {0}


def test_encode_table_with_nan_missing_survives_the_filter() -> None:
    # The regression this guards: NaN-missing columns used to blow up to
    # support ~N and get dropped whole by the u <= 1000 preprocessing.
    rng = np.random.default_rng(0)
    raw = rng.integers(0, 10, 2000).astype(np.float64)
    raw[rng.random(2000) < 0.3] = np.nan
    store, encoder = encode_table({"with_missing": raw, "clean": rng.integers(0, 5, 2000)})
    assert store.support_size("with_missing") <= 11
    kept, dropped = partition_by_support(store)
    assert dropped == ()


def test_describe_handles_constant_and_missing_heavy_columns() -> None:
    dataset = generate_census("noisy", seed=0, scale=SCALE)
    with np.errstate(all="raise"):  # any numpy warning becomes an error
        profiles = describe_store(dataset.store)
    by_name = {p.attribute: p for p in profiles}
    income = by_name["income"]
    assert math.isfinite(income.entropy) and income.entropy > 0.0
    constant = ColumnStore({"c": np.zeros(100, dtype=np.int64)})
    with np.errstate(all="raise"):
        profile = profile_attribute(constant, "c")
    assert profile.entropy == 0.0
    assert profile.top_share == 1.0
