"""Tests for the batched, backend-pluggable counting core.

Three layers:

* the :mod:`repro.data.backends` seam itself — resolution, the protocol,
  and count equivalence of ``numpy`` vs ``threads``;
* the sampler's batch methods — bit-identical counts and identical cost
  accounting vs the scalar calls they replaced;
* the bounds/engine batch path — batched intervals exactly equal (``==``
  field for field, not approximately) to the per-attribute scalar
  intervals, and all four queries returning identical answers under both
  backends with the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    QuerySession,
    swope_filter_entropy,
    swope_filter_mutual_information,
    swope_top_k_entropy,
    swope_top_k_mutual_information,
)
from repro.core.bounds import entropy_interval, entropy_intervals, mi_intervals
from repro.core.engine import (
    EntropyScoreProvider,
    MutualInformationScoreProvider,
)
import repro.data.backends as backends_module
from repro.data.backends import (
    BACKEND_ENV_VAR,
    BACKEND_NAMES,
    GILBoundBackendWarning,
    NumpyBackend,
    ProcessBackend,
    ThreadedBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.data.column_store import ColumnStore
from repro.data.mmap_store import MmapStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError

BACKENDS = list(BACKEND_NAMES)


def random_store(
    seed: int, num_rows: int = 400, num_columns: int = 6, max_support: int = 12
) -> ColumnStore:
    rng = np.random.default_rng(seed)
    columns = {}
    for i in range(num_columns):
        support = int(rng.integers(2, max_support + 1))
        columns[f"a{i}"] = rng.integers(0, support, size=num_rows)
    return ColumnStore(columns)


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
class TestResolveBackend:
    def test_names_map_to_backends(self):
        assert isinstance(resolve_backend("numpy"), NumpyBackend)
        assert isinstance(resolve_backend("threads"), ThreadedBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_none_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_none_honours_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert isinstance(resolve_backend(None), ThreadedBackend)

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown counting backend"):
            resolve_backend("cuda")

    def test_bad_env_name_rejected(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ParameterError, match="unknown counting backend"):
            resolve_backend(None)

    def test_instance_passes_through(self):
        backend = ThreadedBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_non_backend_object_rejected(self):
        with pytest.raises(ParameterError, match="count_columns"):
            resolve_backend(object())  # type: ignore[arg-type]

    def test_threaded_worker_count_validated(self):
        with pytest.raises(ParameterError, match="max_workers"):
            ThreadedBackend(max_workers=0)

    def test_backend_names_are_stable(self):
        assert BACKEND_NAMES == ("numpy", "threads", "process")
        assert NumpyBackend().name == "numpy"
        assert ThreadedBackend().name == "threads"
        assert ProcessBackend().name == "process"

    def test_process_worker_count_validated(self):
        with pytest.raises(ParameterError, match="max_workers"):
            ProcessBackend(max_workers=0)

    def test_threads_resolution_warns_once(self, monkeypatch):
        monkeypatch.setattr(backends_module, "_THREADS_WARNING_EMITTED", False)
        with pytest.warns(GILBoundBackendWarning, match="GIL"):
            resolve_backend("threads")
        # Second resolution in the same process stays silent.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", GILBoundBackendWarning)
            resolve_backend("threads")

    def test_numpy_and_process_do_not_warn(self, monkeypatch):
        monkeypatch.setattr(backends_module, "_THREADS_WARNING_EMITTED", False)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", GILBoundBackendWarning)
            resolve_backend("numpy")
            resolve_backend("process")


class TestBackendRegistry:
    def test_backend_names_reflects_registry(self):
        assert backend_names() == ("numpy", "threads", "process")

    def test_register_custom_backend(self, monkeypatch):
        monkeypatch.setattr(
            backends_module, "BACKEND_REGISTRY", dict(backends_module.BACKEND_REGISTRY)
        )
        register_backend("custom", NumpyBackend)
        assert "custom" in backend_names()
        assert isinstance(resolve_backend("custom"), NumpyBackend)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_backend("numpy", NumpyBackend)

    def test_replace_allows_override(self, monkeypatch):
        monkeypatch.setattr(
            backends_module, "BACKEND_REGISTRY", dict(backends_module.BACKEND_REGISTRY)
        )
        register_backend("numpy", ThreadedBackend, replace=True)
        assert isinstance(resolve_backend("numpy"), ThreadedBackend)

    def test_env_var_accepts_registered_backend(self, monkeypatch):
        monkeypatch.setattr(
            backends_module, "BACKEND_REGISTRY", dict(backends_module.BACKEND_REGISTRY)
        )
        register_backend("custom", NumpyBackend)
        monkeypatch.setenv(BACKEND_ENV_VAR, "custom")
        assert isinstance(resolve_backend(None), NumpyBackend)

    def test_unknown_error_lists_registered_names(self):
        with pytest.raises(ParameterError, match="process"):
            resolve_backend("cuda")


# ----------------------------------------------------------------------
# count_columns equivalence
# ----------------------------------------------------------------------
class TestCountColumns:
    @pytest.mark.parametrize("rows_kind", ["array", "slice"])
    def test_backends_agree_with_bincount(self, rows_kind):
        rng = np.random.default_rng(11)
        columns = [
            rng.integers(0, support, size=300) for support in (3, 7, 16, 2)
        ]
        supports = [3, 7, 16, 2]
        if rows_kind == "array":
            rows = rng.permutation(300)[:120]
        else:
            rows = slice(0, 120)
        expected = [
            np.bincount(col[rows], minlength=u)
            for col, u in zip(columns, supports)
        ]
        for name in BACKENDS:
            got = resolve_backend(name).count_columns(columns, supports, rows)
            assert len(got) == len(expected)
            for g, e in zip(got, expected):
                np.testing.assert_array_equal(g, e)

    def test_threaded_single_column_bypasses_pool(self):
        backend = ThreadedBackend(max_workers=2)
        rng = np.random.default_rng(5)
        column = rng.integers(0, 4, size=50)
        out = backend.count_columns([column], [4], slice(0, 50))
        np.testing.assert_array_equal(out[0], np.bincount(column, minlength=4))
        assert backend._executor is None  # pool never created


class TestProcessBackend:
    @pytest.mark.parametrize("rows_kind", ["array", "slice"])
    def test_serial_and_pool_paths_agree_with_bincount(self, rows_kind):
        rng = np.random.default_rng(21)
        supports = [3, 9, 17]
        columns = [rng.integers(0, u, size=2000) for u in supports]
        if rows_kind == "array":
            rows = rng.permutation(2000)[:900]
        else:
            rows = slice(0, 900)
        expected = [
            np.bincount(c[rows], minlength=u) for c, u in zip(columns, supports)
        ]
        serial = ProcessBackend(max_workers=1)
        pooled = ProcessBackend(max_workers=2, min_parallel_cells=0)
        try:
            for backend in (serial, pooled):
                got = backend.count_columns(columns, supports, rows)
                assert len(got) == len(expected)
                for g, e in zip(got, expected):
                    np.testing.assert_array_equal(g, e)
        finally:
            serial.close()
            pooled.close()

    def test_small_batches_bypass_the_pool(self):
        backend = ProcessBackend(max_workers=2)  # default cell threshold
        try:
            rng = np.random.default_rng(2)
            column = rng.integers(0, 5, size=64)
            out = backend.count_columns([column], [5], slice(0, 64))
            np.testing.assert_array_equal(
                out[0], np.bincount(column, minlength=5)
            )
            assert backend._executor is None  # pool never created
        finally:
            backend.close()

    def test_memmap_columns_count_through_the_pool(self, tmp_path):
        store = random_store(31, num_rows=1200, num_columns=4)
        on_disk = MmapStore.from_column_store(store, tmp_path / "store")
        names = list(store.attributes)
        supports = [store.support_size(a) for a in names]
        rows = np.random.default_rng(31).permutation(1200)[:700]
        expected = [
            np.bincount(store.column(a)[rows], minlength=u)
            for a, u in zip(names, supports)
        ]
        backend = ProcessBackend(max_workers=2, min_parallel_cells=0)
        try:
            got = backend.count_columns(
                [on_disk.column(a) for a in names], supports, rows
            )
            for g, e in zip(got, expected):
                np.testing.assert_array_equal(g, e)
        finally:
            backend.close()


# ----------------------------------------------------------------------
# Sampler batch methods vs scalar calls
# ----------------------------------------------------------------------
class TestMarginalBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_equals_scalar_counts_and_cost(self, backend, seed):
        store = random_store(seed)
        scalar = PrefixSampler(store, seed=seed)
        batched = PrefixSampler(store, seed=seed, backend=backend)
        names = list(store.attributes)
        for num_rows in (13, 13, 64, 200, store.num_rows):
            expected = {a: scalar.marginal_counts(a, num_rows) for a in names}
            got = batched.marginal_counts_batch(names, num_rows)
            assert list(got) == names
            for a in names:
                np.testing.assert_array_equal(got[a], expected[a])
            assert batched.cells_scanned == scalar.cells_scanned

    def test_duplicate_names_counted_once(self):
        store = random_store(3)
        sampler = PrefixSampler(store, seed=3)
        name = store.attributes[0]
        counts = sampler.marginal_counts_batch([name, name, name], 50)
        assert list(counts) == [name]
        assert sampler.cells_scanned == 50

    def test_mixed_progress_extends_only_missing_blocks(self):
        store = random_store(4)
        reference = PrefixSampler(store, seed=4)
        sampler = PrefixSampler(store, seed=4)
        a, b = store.attributes[0], store.attributes[1]
        sampler.marginal_counts(a, 100)  # a is ahead of b
        reference.marginal_counts(a, 100)
        got = sampler.marginal_counts_batch([a, b], 200)
        np.testing.assert_array_equal(got[a], reference.marginal_counts(a, 200))
        np.testing.assert_array_equal(got[b], reference.marginal_counts(b, 200))
        # a paid 100 + 100 cells, b paid 200: identical to the scalar path.
        assert sampler.cells_scanned == reference.cells_scanned == 400

    def test_shrinking_prefix_rejected_with_scalar_message(self):
        store = random_store(5)
        sampler = PrefixSampler(store, seed=5)
        name = store.attributes[0]
        sampler.marginal_counts_batch([name], 100)
        with pytest.raises(ParameterError, match="cannot shrink"):
            sampler.marginal_counts_batch([name], 50)


class TestJointBatch:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 7])
    def test_batch_equals_scalar_counters_and_cost(self, backend, seed):
        store = random_store(seed)
        scalar = PrefixSampler(store, seed=seed)
        batched = PrefixSampler(store, seed=seed, backend=backend)
        target = store.attributes[0]
        seconds = list(store.attributes[1:])
        for num_rows in (20, 150, store.num_rows):
            expected = {
                a: scalar.joint_counts(target, a, num_rows) for a in seconds
            }
            got = batched.joint_counts_batch(target, seconds, num_rows)
            assert list(got) == seconds
            for a in seconds:
                assert got[a].total == expected[a].total
                np.testing.assert_array_equal(
                    np.sort(got[a].nonzero_counts()),
                    np.sort(expected[a].nonzero_counts()),
                )
            assert batched.cells_scanned == scalar.cells_scanned

    def test_self_pair_rejected(self):
        store = random_store(8)
        sampler = PrefixSampler(store, seed=8)
        name = store.attributes[0]
        with pytest.raises(SchemaError, match="marginal counts"):
            sampler.joint_counts_batch(name, [name], 10)


# ----------------------------------------------------------------------
# Batched bounds are exactly the scalar bounds
# ----------------------------------------------------------------------
class TestBatchedBounds:
    @given(
        entropies=st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=1,
            max_size=16,
        ),
        supports=st.lists(
            st.integers(min_value=1, max_value=10_000), min_size=16, max_size=16
        ),
        sample_size=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=60, deadline=None)
    def test_entropy_intervals_equal_scalar(
        self, entropies, supports, sample_size
    ):
        supports = supports[: len(entropies)]
        population, p = 1000, 0.01
        batch = entropy_intervals(entropies, supports, sample_size, population, p)
        for h, u, iv in zip(entropies, supports, batch):
            assert iv == entropy_interval(h, u, sample_size, population, p)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError, match="support sizes"):
            entropy_intervals([1.0, 2.0], [4], 10, 100, 0.01)

    def test_mi_length_mismatch_rejected(self):
        target = entropy_interval(1.0, 4, 10, 100, 0.01)
        with pytest.raises(ParameterError, match="joint entropies"):
            mi_intervals(target, [1.0], [4], [1.0, 2.0], 4, 10, 100, 0.01)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_provider_batch_equals_scalar_entropy(self, backend, seed):
        store = random_store(seed, num_rows=300)
        names = list(store.attributes)
        scalar_provider = EntropyScoreProvider(
            PrefixSampler(store, seed=seed), 0.01
        )
        batch_provider = EntropyScoreProvider(
            PrefixSampler(store, seed=seed, backend=backend), 0.01
        )
        for sample_size in (17, 80, 300):
            batch = batch_provider.intervals(names, sample_size)
            for a in names:
                assert batch[a] == scalar_provider.interval(a, sample_size)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_provider_batch_equals_scalar_mi(self, backend, seed):
        store = random_store(seed, num_rows=300)
        target = store.attributes[0]
        names = list(store.attributes[1:])
        scalar_provider = MutualInformationScoreProvider(
            PrefixSampler(store, seed=seed), target, 0.01
        )
        batch_provider = MutualInformationScoreProvider(
            PrefixSampler(store, seed=seed, backend=backend), target, 0.01
        )
        for sample_size in (25, 120, 300):
            batch = batch_provider.intervals(names, sample_size)
            for a in names:
                assert batch[a] == scalar_provider.interval(a, sample_size)

    def test_mi_batch_rejects_target_candidate(self):
        store = random_store(9)
        target = store.attributes[0]
        provider = MutualInformationScoreProvider(
            PrefixSampler(store, seed=9), target, 0.01
        )
        with pytest.raises(SchemaError, match="equals the target"):
            provider.intervals([store.attributes[1], target], 50)


# ----------------------------------------------------------------------
# End-to-end: identical answers under numpy and threads
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_four_queries_identical_across_backends(self, seed):
        store = random_store(seed, num_rows=600, num_columns=8)
        target = store.attributes[0]

        def run_all(backend):
            topk = swope_top_k_entropy(
                store, 3, seed=seed, epsilon=0.3, backend=backend
            )
            filt = swope_filter_entropy(
                store, 1.5, seed=seed, epsilon=0.2, backend=backend
            )
            mi_topk = swope_top_k_mutual_information(
                store, target, 2, seed=seed, epsilon=0.6, backend=backend
            )
            mi_filt = swope_filter_mutual_information(
                store, target, 0.05, seed=seed, epsilon=0.6, backend=backend
            )
            return topk, filt, mi_topk, mi_filt

        numpy_results = run_all("numpy")
        thread_results = run_all("threads")
        for via_numpy, via_threads in zip(numpy_results, thread_results):
            assert via_numpy.attributes == via_threads.attributes
            assert (
                via_numpy.stats.cells_scanned == via_threads.stats.cells_scanned
            )
            assert (
                via_numpy.stats.final_sample_size
                == via_threads.stats.final_sample_size
            )
            n_est, t_est = via_numpy.estimates, via_threads.estimates
            if isinstance(n_est, dict):
                assert set(n_est) == set(t_est)
                pairs = [(n_est[a], t_est[a]) for a in n_est]
            else:
                pairs = list(zip(n_est, t_est))
            for left, right in pairs:
                assert left == right

    @pytest.mark.parametrize("store_kind", ["memory", "mmap"])
    def test_four_queries_identical_process_vs_numpy(
        self, store_kind, tmp_path
    ):
        base = random_store(13, num_rows=800, num_columns=6)
        store = (
            base
            if store_kind == "memory"
            else MmapStore.from_column_store(base, tmp_path / "store")
        )
        target = base.attributes[0]

        def run_all(source, backend):
            topk = swope_top_k_entropy(
                source, 3, seed=13, epsilon=0.3, backend=backend
            )
            filt = swope_filter_entropy(
                source, 1.5, seed=13, epsilon=0.2, backend=backend
            )
            mi_topk = swope_top_k_mutual_information(
                source, target, 2, seed=13, epsilon=0.6, backend=backend
            )
            mi_filt = swope_filter_mutual_information(
                source, target, 0.05, seed=13, epsilon=0.6, backend=backend
            )
            return topk, filt, mi_topk, mi_filt

        # The reference runs on the in-memory store under numpy, so the
        # matrix also pins mmap answers to the in-memory ones.
        reference = run_all(base, "numpy")
        process = ProcessBackend(max_workers=2, min_parallel_cells=0)
        try:
            candidate = run_all(store, process)
        finally:
            process.close()
        for via_numpy, via_process in zip(reference, candidate):
            assert via_numpy.attributes == via_process.attributes
            assert (
                via_numpy.stats.cells_scanned
                == via_process.stats.cells_scanned
            )
            n_est, p_est = via_numpy.estimates, via_process.estimates
            if isinstance(n_est, dict):
                assert set(n_est) == set(p_est)
                pairs = [(n_est[a], p_est[a]) for a in n_est]
            else:
                pairs = list(zip(n_est, p_est))
            for left, right in pairs:
                assert left == right

    def test_sampler_and_backend_are_mutually_exclusive(self):
        store = random_store(1)
        sampler = PrefixSampler(store, seed=1)
        with pytest.raises(ParameterError, match="either sampler= or backend="):
            swope_top_k_entropy(store, 2, sampler=sampler, backend="threads")

    def test_session_threads_backend_matches_numpy(self):
        store = random_store(2, num_rows=500)
        answers = []
        for backend in BACKENDS:
            session = QuerySession(store, seed=2, backend=backend)
            result = session.top_k_entropy(3)
            answers.append((result.attributes, result.stats.cells_scanned))
        assert answers[0] == answers[1]

    def test_phase_timings_recorded(self):
        store = random_store(6, num_rows=500)
        result = swope_top_k_entropy(store, 2, seed=6)
        stats = result.stats
        assert stats.counting_seconds >= 0.0
        assert stats.bounds_seconds >= 0.0
        assert (
            stats.counting_seconds + stats.bounds_seconds <= stats.wall_seconds
        )
        assert stats.loop_seconds >= 0.0
