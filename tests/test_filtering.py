"""Tests for SWOPE entropy filtering (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies
from repro.core.filtering import swope_filter_entropy
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError
from repro.experiments.accuracy import check_filter_guarantee


class TestBasicBehaviour:
    def test_separated_data_filtered_exactly(self, small_store):
        # entropies: wide ~7.6, medium ~5.6, narrow ~2.0, skewed ~0.3
        result = swope_filter_entropy(small_store, 3.0, seed=0)
        assert result.answer_set() == {"wide", "medium"}

    def test_threshold_zero_returns_everything(self, small_store):
        result = swope_filter_entropy(small_store, 0.0, seed=0)
        assert result.answer_set() == set(small_store.attributes)

    def test_threshold_above_everything_returns_empty(self, small_store):
        result = swope_filter_entropy(small_store, 20.0, seed=0)
        assert result.attributes == []

    def test_answer_sorted_by_estimate(self, small_store):
        result = swope_filter_entropy(small_store, 1.0, seed=0)
        estimates = [result.estimates[a].estimate for a in result.attributes]
        assert estimates == sorted(estimates, reverse=True)

    def test_estimates_recorded_for_all_attributes(self, small_store):
        result = swope_filter_entropy(small_store, 3.0, seed=0)
        assert set(result.estimates) == set(small_store.attributes)

    def test_restricted_attributes(self, small_store):
        result = swope_filter_entropy(
            small_store, 1.0, seed=0, attributes=["narrow", "skewed"]
        )
        assert result.answer_set() == {"narrow"}

    def test_unknown_attribute_rejected(self, small_store):
        with pytest.raises(SchemaError):
            swope_filter_entropy(small_store, 1.0, attributes=["ghost"])

    def test_invalid_parameters(self, small_store):
        with pytest.raises(ParameterError):
            swope_filter_entropy(small_store, -1.0)
        with pytest.raises(ParameterError):
            swope_filter_entropy(small_store, 1.0, epsilon=0.0)

    def test_deterministic_given_seed(self, small_store):
        a = swope_filter_entropy(small_store, 2.0, seed=11)
        b = swope_filter_entropy(small_store, 2.0, seed=11)
        assert a.attributes == b.attributes


class TestStats:
    def test_stats_populated(self, small_store):
        result = swope_filter_entropy(small_store, 3.0, seed=0)
        assert result.stats.iterations >= 1
        assert result.stats.final_sample_size <= small_store.num_rows
        assert result.stats.cells_scanned > 0
        assert result.threshold == 3.0

    def test_easy_attributes_decided_early(self, small_store):
        # With a threshold far from every entropy, the loop should finish
        # well before exhausting the dataset.
        result = swope_filter_entropy(small_store, 4.0, epsilon=0.5, seed=0)
        assert result.stats.final_sample_size < small_store.num_rows

    def test_larger_epsilon_cheaper(self, small_store):
        tight = swope_filter_entropy(small_store, 2.1, epsilon=0.02, seed=0)
        loose = swope_filter_entropy(small_store, 2.1, epsilon=0.9, seed=0)
        assert loose.stats.cells_scanned <= tight.stats.cells_scanned


class TestGuarantee:
    def test_definition6_holds_on_separated_data(self, small_store):
        exact = exact_entropies(small_store)
        for epsilon in (0.05, 0.2, 0.5):
            for threshold in (0.5, 2.0, 6.0):
                result = swope_filter_entropy(
                    small_store, threshold, epsilon=epsilon, seed=1
                )
                assert check_filter_guarantee(result, exact, epsilon) == []

    def test_definition6_holds_near_threshold(self):
        rng = np.random.default_rng(5)
        n = 4000
        store = ColumnStore(
            {
                "at2": rng.integers(0, 4, n),  # entropy ~2.0, threshold 2.0
                "high": rng.integers(0, 64, n),
                "low": (rng.random(n) < 0.02).astype(np.int64),
            }
        )
        exact = exact_entropies(store)
        epsilon = 0.1
        for seed in range(5):
            result = swope_filter_entropy(store, 2.0, epsilon=epsilon, seed=seed)
            assert check_filter_guarantee(result, exact, epsilon) == []

    def test_band_attribute_membership_is_free(self):
        # An attribute whose entropy sits inside ((1-eps)eta, (1+eps)eta)
        # may legally be returned or dropped; assert no crash and a valid
        # contract either way.
        rng = np.random.default_rng(6)
        store = ColumnStore({"band": rng.integers(0, 4, 2000)})
        exact = exact_entropies(store)
        result = swope_filter_entropy(store, 2.0, epsilon=0.4, seed=0)
        assert check_filter_guarantee(result, exact, 0.4) == []

    def test_constant_columns_excluded_for_positive_threshold(self):
        store = ColumnStore(
            {
                "c": np.zeros(500, dtype=int),
                "v": np.arange(500) % 7,
            }
        )
        result = swope_filter_entropy(store, 0.5, seed=0)
        assert "c" not in result
        assert "v" in result


class TestCustomSchedule:
    def test_single_iteration_schedule_is_exact(self, small_store):
        schedule = SampleSchedule(
            population_size=small_store.num_rows,
            initial_size=small_store.num_rows,
        )
        result = swope_filter_entropy(small_store, 3.0, schedule=schedule, seed=0)
        exact = exact_entropies(small_store)
        expected = {a for a, s in exact.items() if s >= 3.0}
        assert result.answer_set() == expected
        assert result.stats.iterations == 1
