"""Chaos tests: kill/resume at every boundary, flaky-store recovery.

The durability contract under test (see ``docs/RESILIENCE.md``):

* kill the executor at *every* iteration boundary of the ``plan_mixed``
  golden workload, resume from the checkpoint, and the final answers,
  guarantee statuses, work accounting, *and the post-resume trace
  events* are byte-identical to the uninterrupted checkpointing run —
  on both counting backends;
* a flaky :class:`~repro.data.column_store.ColumnStore` (injected
  ``OSError`` mid-plan) degrades to retry → checkpoint → resume through
  :func:`~repro.durability.recovery.execute_plan_with_recovery`, with
  the same answers as a healthy run;
* a torn (truncated) checkpoint is detected and recovery falls back to
  a fresh run instead of resuming from garbage;
* the CLI round-trips ``--checkpoint``/``--resume``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.data.column_store import ColumnStore
from repro.durability import execute_plan_with_recovery
from repro.exceptions import ParameterError
from repro.obs import InMemorySink
from repro.obs.sinks import serialize_event
from repro.testing.chaos import (
    BoundaryFaultToken,
    ChaosPlan,
    SimulatedKillError,
    count_iteration_boundaries,
    plan_fingerprint,
    truncate_file,
)
from repro.testing.faults import FlakyStore

SEED = 7
BACKENDS = ["numpy", "threads"]


def _golden_store() -> ColumnStore:
    """The store pinned by the golden traces (tests/test_golden_traces.py)."""
    data_rng = np.random.default_rng(20210614)
    n = 2000
    target = data_rng.integers(0, 6, n)
    keep = data_rng.random(n) < 0.7
    noisy = np.where(keep, target, data_rng.integers(0, 6, n))
    return ColumnStore(
        {
            "wide": data_rng.integers(0, 64, n),
            "medium": data_rng.integers(0, 12, n),
            "narrow": data_rng.integers(0, 3, n),
            "target": target,
            "noisy": noisy,
            "independent": data_rng.integers(0, 6, n),
        }
    )


def _mixed_specs() -> list[QuerySpec]:
    """The four-query heterogeneous plan of the plan_mixed golden."""
    return [
        QuerySpec(kind="top_k", score="entropy", k=2, epsilon=0.1, prune=False),
        QuerySpec(kind="filter", score="entropy", threshold=2.0, epsilon=0.05),
        QuerySpec(
            kind="top_k", score="mutual_information", k=2, epsilon=0.5,
            target="target", prune=False,
        ),
        QuerySpec(
            kind="filter", score="mutual_information", threshold=0.5,
            epsilon=0.5, target="target",
        ),
    ]


def _trace_lines(sink: InMemorySink) -> list[str]:
    return [serialize_event(event) for event in sink.events]


# ----------------------------------------------------------------------
# The kill/resume matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_and_resume_at_every_boundary(tmp_path, backend):
    """Bit-identical answers and trace suffix from every kill point."""
    store = _golden_store()
    specs = _mixed_specs()
    plan = plan_queries(store, specs)
    boundaries = count_iteration_boundaries(store, specs, seed=SEED, backend=backend)
    assert boundaries > 0

    reference_sink = InMemorySink()
    reference = PlanExecutor(
        store, seed=SEED, backend=backend,
        checkpoint_path=tmp_path / "reference.ckpt", trace=reference_sink,
    ).execute(plan)
    reference_fp = plan_fingerprint(reference)
    reference_lines = _trace_lines(reference_sink)

    for kill_at in range(boundaries):
        path = tmp_path / f"kill-{backend}-{kill_at}.ckpt"
        token = BoundaryFaultToken(ChaosPlan.kill_at(kill_at))
        with pytest.raises(SimulatedKillError):
            PlanExecutor(
                store, seed=SEED, backend=backend,
                checkpoint_path=path, trace=InMemorySink(),
            ).execute(plan, cancellation=token)
        assert path.exists(), f"no checkpoint survived kill at {kill_at}"

        resumed_sink = InMemorySink()
        resumed_executor = PlanExecutor.resume(
            path, store, backend=backend, trace=resumed_sink
        )
        outcome = resumed_executor.execute(resumed_executor.resumed_plan())
        assert plan_fingerprint(outcome) == reference_fp, f"kill at {kill_at}"

        # Every post-resume event must be byte-identical to the tail of
        # the uninterrupted run's stream (plan_resumed itself is the one
        # event only a resumed run emits).
        resumed_lines = _trace_lines(resumed_sink)
        assert '"event":"plan_resumed"' in resumed_lines[0]
        rest = resumed_lines[1:]
        assert rest == reference_lines[-len(rest):], f"kill at {kill_at}"


def test_resumed_plan_reuses_planned_groups(tmp_path, monkeypatch):
    """Resume rebuilds the interrupted plan from checkpoint metadata.

    The executor used to re-run count-group extraction on resume(),
    which silently re-plans: a cost-model change between versions (or a
    planner bug fix) would hand the resumed run different groups and a
    different schedule than the checkpoint's partial results were
    computed under. The checkpoint now carries the planner metadata, so
    resumed_plan() must never call plan_queries() for a v2 checkpoint.
    """
    store = _golden_store()
    specs = _mixed_specs()
    plan = plan_queries(store, specs)
    reference_fp = plan_fingerprint(
        PlanExecutor(store, seed=SEED).execute(plan)
    )
    path = tmp_path / "replan.ckpt"
    token = BoundaryFaultToken(ChaosPlan.kill_at(2))
    with pytest.raises(SimulatedKillError):
        PlanExecutor(store, seed=SEED, checkpoint_path=path).execute(
            plan, cancellation=token
        )

    import repro.core.plan as plan_module

    def _replanned(*_args, **_kwargs):
        raise AssertionError("resume re-ran the planner")

    monkeypatch.setattr(plan_module, "plan_queries", _replanned)
    resumed_executor = PlanExecutor.resume(path, store)
    resumed_plan = resumed_executor.resumed_plan()
    monkeypatch.undo()

    assert resumed_plan.marginal_attributes == plan.marginal_attributes
    assert resumed_plan.joint_targets == plan.joint_targets
    assert resumed_plan.order == plan.order
    assert resumed_plan.submission_names == plan.submission_names
    assert resumed_plan.estimated_cells == plan.estimated_cells
    assert resumed_plan.names == plan.names
    assert plan_fingerprint(resumed_executor.execute(resumed_plan)) == reference_fp


def test_cross_backend_resume_is_identical(tmp_path):
    """A checkpoint written under one backend resumes under the other."""
    store = _golden_store()
    plan = plan_queries(store, _mixed_specs())
    reference_fp = plan_fingerprint(
        PlanExecutor(store, seed=SEED, backend="numpy").execute(plan)
    )
    path = tmp_path / "cross.ckpt"
    token = BoundaryFaultToken(ChaosPlan.kill_at(2))
    with pytest.raises(SimulatedKillError):
        PlanExecutor(
            store, seed=SEED, backend="numpy", checkpoint_path=path
        ).execute(plan, cancellation=token)
    resumed = PlanExecutor.resume(path, store, backend="threads")
    assert plan_fingerprint(resumed.execute(resumed.resumed_plan())) == reference_fp


def test_cancel_fault_degrades_with_honest_guarantee():
    store = _golden_store()
    plan = plan_queries(store, _mixed_specs())
    token = BoundaryFaultToken(ChaosPlan.from_steps("run:1 cancel"))
    outcome = PlanExecutor(store, seed=SEED).execute(plan, cancellation=token)
    assert token.fired == [(1, "cancel")]
    degraded = [
        result
        for result in outcome.results.values()
        if result.guarantee is not None and not result.guarantee.guarantee_met
    ]
    assert degraded, "the cancelled query must report a degraded guarantee"
    assert all(
        result.guarantee.stopping_reason == "cancelled" for result in degraded
    )


# ----------------------------------------------------------------------
# The fault-plan DSL
# ----------------------------------------------------------------------
class TestChaosPlan:
    def test_dsl_parses_runs_and_faults(self):
        plan = ChaosPlan.from_steps("run:3 kill run:2 io-error cancel")
        assert plan.faults == ((3, "kill"), (6, "io_error"), (7, "cancel"))

    def test_dsl_accepts_sequences_and_commas(self):
        assert ChaosPlan.from_steps(["run:1", "cancel"]) == ChaosPlan.from_steps(
            "run:1, cancel"
        )

    def test_dsl_rejects_unknown_tokens(self):
        with pytest.raises(ParameterError, match="unknown chaos step"):
            ChaosPlan.from_steps("run:1 explode")
        with pytest.raises(ParameterError, match="run:N"):
            ChaosPlan.from_steps("run:x kill")

    def test_duplicate_boundaries_rejected(self):
        with pytest.raises(ParameterError, match="duplicate fault"):
            ChaosPlan(faults=((2, "kill"), (2, "cancel")))

    def test_io_error_action_raises_oserror(self):
        token = BoundaryFaultToken(ChaosPlan.from_steps("io-error"))
        with pytest.raises(OSError, match="injected IO failure"):
            token.cancelled


# ----------------------------------------------------------------------
# Recovery: retry → checkpoint → resume
# ----------------------------------------------------------------------
def test_flaky_boundary_recovers_to_identical_answers(tmp_path):
    """An OSError mid-plan retries from the checkpoint, not from scratch."""
    store = _golden_store()
    specs = _mixed_specs()
    reference_fp = plan_fingerprint(
        PlanExecutor(store, seed=SEED).execute(plan_queries(store, specs))
    )
    sleeps: list[float] = []
    token = BoundaryFaultToken(ChaosPlan.from_steps("run:2 io-error"))
    outcome = execute_plan_with_recovery(
        store, specs,
        checkpoint_path=tmp_path / "recover.ckpt",
        seed=SEED, jitter=0.0, sleep=sleeps.append,
        cancellation=token,
    )
    assert token.fired == [(2, "io_error")]
    assert len(sleeps) == 1  # exactly one retry, after one backoff delay
    assert plan_fingerprint(outcome) == reference_fp


def test_flaky_store_reads_recover(tmp_path):
    """Column reads failing transiently degrade to retry → resume."""
    store = _golden_store()
    specs = _mixed_specs()
    reference_fp = plan_fingerprint(
        PlanExecutor(store, seed=SEED).execute(plan_queries(store, specs))
    )
    flaky = FlakyStore(store, fail_times=2)
    outcome = execute_plan_with_recovery(
        flaky, specs,
        checkpoint_path=tmp_path / "flaky.ckpt",
        seed=SEED, jitter=0.0, sleep=lambda _s: None,
    )
    assert flaky.failures_injected == 2
    assert plan_fingerprint(outcome) == reference_fp


def test_recovery_falls_back_on_torn_checkpoint(tmp_path):
    """A truncated checkpoint is refused, and recovery restarts fresh."""
    store = _golden_store()
    specs = _mixed_specs()
    path = tmp_path / "torn.ckpt"
    token = BoundaryFaultToken(ChaosPlan.kill_at(3))
    with pytest.raises(SimulatedKillError):
        PlanExecutor(store, seed=SEED, checkpoint_path=path).execute(
            plan_queries(store, specs), cancellation=token
        )
    truncate_file(path, path.stat().st_size // 3)
    reference_fp = plan_fingerprint(
        PlanExecutor(store, seed=SEED).execute(plan_queries(store, specs))
    )
    outcome = execute_plan_with_recovery(
        store, specs, checkpoint_path=path, seed=SEED,
    )
    assert plan_fingerprint(outcome) == reference_fp


def test_kill_is_never_retried(tmp_path):
    """SimulatedKillError models SIGKILL: recovery must not absorb it."""
    store = _golden_store()
    specs = _mixed_specs()
    token = BoundaryFaultToken(ChaosPlan.kill_at(1))
    with pytest.raises(SimulatedKillError):
        execute_plan_with_recovery(
            store, specs,
            checkpoint_path=tmp_path / "kill.ckpt", seed=SEED,
            cancellation=token,
        )


# ----------------------------------------------------------------------
# CLI round trip
# ----------------------------------------------------------------------
def test_cli_checkpoint_resume_round_trip(tmp_path, capsys):
    import json

    from repro.cli import main

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(
        json.dumps(
            [
                {"kind": "topk-entropy", "k": 3, "name": "top"},
                {"kind": "filter-entropy", "threshold": 1.5, "name": "filt"},
            ]
        )
    )
    checkpoint = tmp_path / "cli.ckpt"
    common = ["--dataset", "cdc", "--scale", "0.02", "--seed", "3"]
    assert main(
        ["query", "--queries", str(plan_file), "--checkpoint", str(checkpoint)]
        + common
    ) == 0
    first = capsys.readouterr().out
    assert checkpoint.exists()
    assert main(["query", "--resume", str(checkpoint)] + common) == 0
    second = capsys.readouterr().out
    # identical answers and shared-scan accounting, replayed from the file
    assert first.split("shared-scan")[0] == second.split("shared-scan")[0]


def test_cli_checkpoint_flags_need_batch_mode(capsys):
    from repro.cli import main

    assert main(["query", "topk-entropy", "--checkpoint", "/tmp/x.ckpt"]) == 2
    assert "--checkpoint" in capsys.readouterr().err
