"""Unit tests for :mod:`repro.core.results`."""

from __future__ import annotations

import pytest

from repro.core.results import AttributeEstimate, FilterResult, RunStats, TopKResult


def est(name, value=1.0, lower=0.5, upper=1.5, m=100):
    return AttributeEstimate(
        attribute=name, estimate=value, lower=lower, upper=upper, sample_size=m
    )


class TestAttributeEstimate:
    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError, match="inverted"):
            AttributeEstimate("a", 1.0, lower=2.0, upper=1.0, sample_size=10)

    def test_point_interval_allowed(self):
        AttributeEstimate("a", 1.0, lower=1.0, upper=1.0, sample_size=10)


class TestRunStats:
    def test_sample_fraction(self):
        stats = RunStats(final_sample_size=250, population_size=1000)
        assert stats.sample_fraction == 0.25

    def test_sample_fraction_empty(self):
        assert RunStats().sample_fraction == 0.0


class TestTopKResult:
    def make(self):
        return TopKResult(
            attributes=["a", "b"],
            estimates=[est("a", 2.0), est("b", 1.0)],
            stats=RunStats(),
            k=2,
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="estimates"):
            TopKResult(attributes=["a"], estimates=[], stats=RunStats(), k=1)

    def test_estimate_of(self):
        result = self.make()
        assert result.estimate_of("b").estimate == 1.0
        with pytest.raises(KeyError):
            result.estimate_of("zzz")

    def test_scores(self):
        assert self.make().scores() == {"a": 2.0, "b": 1.0}


class TestFilterResult:
    def make(self):
        return FilterResult(
            attributes=["a"],
            estimates={"a": est("a"), "b": est("b", 0.1, 0.0, 0.2)},
            stats=RunStats(),
            threshold=0.5,
        )

    def test_contains(self):
        result = self.make()
        assert "a" in result
        assert "b" not in result

    def test_answer_set(self):
        assert self.make().answer_set() == frozenset({"a"})

    def test_estimates_cover_rejected_attributes(self):
        assert "b" in self.make().estimates
