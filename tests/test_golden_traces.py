"""Golden-trace regression tests for the structured event stream.

Each of the four SWOPE query algorithms is run against a fixed store at a
fixed seed with an explicit multi-iteration schedule, and its JSONL trace
is compared byte-for-byte against a committed golden file under
``tests/golden/``; a fifth case drives a mixed four-query plan through
:class:`~repro.core.plan.PlanExecutor` so the plan-level events
(``plan_start``/``query_retired``/``plan_end``) are pinned too. Trace
events carry no wall-clock fields, so the stream is a pure function of
the seeded shuffle — any diff is a real behaviour change in the engine,
not noise.

The first line of every trace is the schema header; it is parsed (not
byte-compared) so bumping ``TRACE_SCHEMA_VERSION`` fails loudly in
``test_schema_version_matches_goldens`` rather than as a confusing
whole-file diff. Regenerate the goldens after an intentional change with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.core.schedule import SampleSchedule
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.obs import TRACE_SCHEMA_VERSION, JsonlSink

GOLDEN_DIR = Path(__file__).parent / "golden"
SEED = 7
INITIAL_SAMPLE = 64


def _golden_store() -> ColumnStore:
    """Fixed store mixing separated entropies and graded MI candidates."""
    rng = np.random.default_rng(20210614)
    n = 2000
    target = rng.integers(0, 6, n)
    keep = rng.random(n) < 0.7
    noisy = np.where(keep, target, rng.integers(0, 6, n))
    return ColumnStore(
        {
            "wide": rng.integers(0, 64, n),
            "medium": rng.integers(0, 12, n),
            "narrow": rng.integers(0, 3, n),
            "target": target,
            "noisy": noisy,
            "independent": rng.integers(0, 6, n),
        }
    )


def _mixed_specs() -> list[QuerySpec]:
    """The four-query heterogeneous plan pinned by the plan_mixed golden."""
    return [
        QuerySpec(kind="top_k", score="entropy", k=2, epsilon=0.1, prune=False),
        QuerySpec(kind="filter", score="entropy", threshold=2.0, epsilon=0.05),
        QuerySpec(
            kind="top_k", score="mutual_information", k=2, epsilon=0.5,
            target="target", prune=False,
        ),
        QuerySpec(
            kind="filter", score="mutual_information", threshold=0.5,
            epsilon=0.5, target="target",
        ),
    ]


def _run_case(case: str, sink: JsonlSink, backend: str | None = None) -> None:
    store = _golden_store()
    if case == "plan_mixed":
        executor = PlanExecutor(store, seed=SEED, backend=backend)
        plan = plan_queries(store, _mixed_specs())
        executor.execute(plan, trace=sink)
        return
    if case == "plan_cached":
        # Pin the v4 cache events: an untraced cold run populates an
        # in-memory plan cache, then two traced warm plans exercise a
        # semantic-dominance hit (k'=1 served from the stored k=2), an
        # exact hit, and a fresh query (cache_miss + live iterations).
        from repro.cache import PlanCache

        cache = PlanCache()
        tk2 = QuerySpec(
            kind="top_k", score="entropy", k=2, epsilon=0.1, prune=False
        )
        tk1 = QuerySpec(
            kind="top_k", score="entropy", k=1, epsilon=0.1, prune=False
        )
        f_mi = QuerySpec(
            kind="filter", score="mutual_information", threshold=0.5,
            epsilon=0.5, target="target",
        )
        cold = PlanExecutor(store, seed=SEED, backend=backend, cache=cache)
        cold.execute(plan_queries(store, [tk2]))
        warm_semantic = PlanExecutor(
            store, seed=SEED, backend=backend, cache=cache
        )
        warm_semantic.execute(plan_queries(store, [tk1]), trace=sink)
        warm_exact = PlanExecutor(
            store, seed=SEED, backend=backend, cache=cache
        )
        warm_exact.execute(plan_queries(store, [tk2]), trace=sink)
        # The MI filter was never cached: a fresh executor (prefix floor 0)
        # records a cache_miss followed by a live multi-iteration run.
        warm_fresh = PlanExecutor(
            store, seed=SEED, backend=backend, cache=cache
        )
        warm_fresh.execute(plan_queries(store, [f_mi]), trace=sink)
        return
    schedule = SampleSchedule(store.num_rows, INITIAL_SAMPLE)
    common = {"seed": SEED, "schedule": schedule, "trace": sink, "backend": backend}
    if case == "topk_entropy":
        swope_top_k_entropy(store, 2, **common)
    elif case == "filter_entropy":
        swope_filter_entropy(store, 2.0, **common)
    elif case == "topk_mi":
        swope_top_k_mutual_information(store, "target", 2, **common)
    elif case == "filter_mi":
        swope_filter_mutual_information(store, "target", 0.5, **common)
    else:  # pragma: no cover - parametrisation covers all cases
        raise AssertionError(f"unknown golden case {case!r}")


def _trace_lines(case: str, backend: str | None = None) -> list[str]:
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    _run_case(case, sink, backend)
    sink.close()
    return buffer.getvalue().splitlines()


CASES = [
    "topk_entropy",
    "filter_entropy",
    "topk_mi",
    "filter_mi",
    "plan_mixed",
    "plan_cached",
]


@pytest.mark.parametrize("case", CASES)
def test_trace_matches_golden(case: str, update_golden: bool) -> None:
    lines = _trace_lines(case)
    path = GOLDEN_DIR / f"{case}.jsonl"
    if update_golden:
        path.parent.mkdir(exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
        return
    assert path.exists(), (
        f"golden file {path} missing; generate with --update-golden"
    )
    golden = path.read_text().splitlines()
    header = json.loads(golden[0])
    assert header["event"] == "header"
    # Non-header lines must match byte for byte.
    assert lines[1:] == golden[1:], (
        f"trace for {case} drifted from {path}; if the change is"
        " intentional, regenerate with --update-golden"
    )


@pytest.mark.parametrize("case", CASES)
def test_trace_byte_identical_across_runs(case: str) -> None:
    assert _trace_lines(case) == _trace_lines(case)


@pytest.mark.parametrize("case", CASES)
def test_trace_identical_across_backends(case: str) -> None:
    # Counting backends are bit-identical by contract, so the event
    # stream — which contains only counted quantities — must be too.
    assert _trace_lines(case, "numpy") == _trace_lines(case, "threads")


def test_schema_version_matches_goldens() -> None:
    paths = sorted(GOLDEN_DIR.glob("*.jsonl"))
    assert paths, f"no golden traces under {GOLDEN_DIR}"
    for path in paths:
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"event": "header", "schema_version": TRACE_SCHEMA_VERSION}, (
            f"{path.name} was generated for schema"
            f" {header.get('schema_version')}; current is"
            f" {TRACE_SCHEMA_VERSION} — regenerate with --update-golden"
        )


def test_goldens_have_multi_iteration_traces() -> None:
    # The schedule is chosen so every golden exercises the adaptive loop;
    # a one-iteration trace would regression-test almost nothing.
    for path in sorted(GOLDEN_DIR.glob("*.jsonl")):
        kinds = [json.loads(line)["event"] for line in path.read_text().splitlines()]
        assert kinds[0] == "header"
        if path.name.startswith("plan_"):
            assert kinds[1] == "plan_start"
            assert kinds[-1] == "plan_end"
            assert kinds.count("query_retired") >= 2, f"{path.name}: {kinds}"
        else:
            assert kinds[1] == "query_start"
            assert kinds[-1] == "query_end"
        assert kinds.count("iteration") >= 2, f"{path.name}: {kinds}"
