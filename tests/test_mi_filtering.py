"""Tests for SWOPE mutual-information filtering (Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_mutual_informations
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError
from repro.experiments.accuracy import check_filter_guarantee


class TestBasicBehaviour:
    def test_high_mi_included_low_excluded(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        # copy has MI = H(target) ~ 3 bits, independent ~ 0.
        result = swope_filter_mutual_information(
            correlated_store, "target", 1.0, seed=0
        )
        assert "copy" in result
        assert "independent" not in result
        assert result.target == "target"
        assert exact["copy"] > 1.0 > exact["independent"]

    def test_threshold_zero_includes_all_candidates(self, correlated_store):
        result = swope_filter_mutual_information(
            correlated_store, "target", 0.0, seed=0
        )
        assert result.answer_set() == {"copy", "noisy", "independent"}

    def test_huge_threshold_excludes_all(self, correlated_store):
        result = swope_filter_mutual_information(
            correlated_store, "target", 50.0, seed=0
        )
        assert result.attributes == []

    def test_unknown_target_rejected(self, correlated_store):
        with pytest.raises(SchemaError):
            swope_filter_mutual_information(correlated_store, "ghost", 0.5)

    def test_target_in_candidates_rejected(self, correlated_store):
        with pytest.raises(ParameterError):
            swope_filter_mutual_information(
                correlated_store, "target", 0.5, candidates=["target"]
            )

    def test_negative_threshold_rejected(self, correlated_store):
        with pytest.raises(ParameterError):
            swope_filter_mutual_information(correlated_store, "target", -0.5)

    def test_estimates_cover_all_candidates(self, correlated_store):
        result = swope_filter_mutual_information(
            correlated_store, "target", 1.0, seed=0
        )
        assert set(result.estimates) == {"copy", "noisy", "independent"}


class TestGuarantee:
    def test_definition6_holds_across_thresholds(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        epsilon = 0.5
        for threshold in (0.2, 1.0, 2.0):
            for seed in range(3):
                result = swope_filter_mutual_information(
                    correlated_store, "target", threshold,
                    epsilon=epsilon, seed=seed,
                )
                assert check_filter_guarantee(result, exact, epsilon) == []

    def test_tight_epsilon_matches_exact_answer(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        threshold = 1.0
        result = swope_filter_mutual_information(
            correlated_store, "target", threshold, epsilon=0.05, seed=0
        )
        # Scores are far from the threshold, so even the relaxed answer is
        # the exact one.
        expected = {a for a, s in exact.items() if s >= threshold}
        assert result.answer_set() == expected

    def test_binary_columns(self):
        rng = np.random.default_rng(2)
        n = 3000
        t = rng.integers(0, 2, n)
        flip = rng.random(n) < 0.1
        store = ColumnStore(
            {
                "t": t,
                "mostly_same": np.where(flip, 1 - t, t),
                "random": rng.integers(0, 2, n),
            }
        )
        result = swope_filter_mutual_information(store, "t", 0.3, seed=0)
        assert "mostly_same" in result
        assert "random" not in result
