"""Unit tests for :mod:`repro.data.sampling` (the prefix sampler)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError


@pytest.fixture
def store(rng):
    n = 2000
    return ColumnStore(
        {
            "x": rng.integers(0, 10, n),
            "y": rng.integers(0, 5, n),
            "z": rng.integers(0, 3, n),
        }
    )


class TestShuffle:
    def test_prefix_is_permutation_prefix(self, store):
        sampler = PrefixSampler(store, seed=1)
        prefix_small = sampler.shuffled_prefix(10)
        prefix_big = sampler.shuffled_prefix(50)
        assert np.array_equal(prefix_big[:10], prefix_small)
        assert len(set(prefix_big.tolist())) == 50  # without replacement

    def test_same_seed_same_shuffle(self, store):
        a = PrefixSampler(store, seed=7).shuffled_prefix(100)
        b = PrefixSampler(store, seed=7).shuffled_prefix(100)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, store):
        a = PrefixSampler(store, seed=1).shuffled_prefix(100)
        b = PrefixSampler(store, seed=2).shuffled_prefix(100)
        assert not np.array_equal(a, b)

    def test_generator_accepted(self, store):
        sampler = PrefixSampler(store, seed=np.random.default_rng(3))
        assert sampler.shuffled_prefix(5).shape == (5,)

    def test_sequential_mode_is_identity(self, store):
        sampler = PrefixSampler(store, sequential=True)
        assert np.array_equal(sampler.shuffled_prefix(10), np.arange(10))

    def test_prefix_bounds_checked(self, store):
        sampler = PrefixSampler(store, seed=1)
        with pytest.raises(ParameterError):
            sampler.shuffled_prefix(0)
        with pytest.raises(ParameterError):
            sampler.shuffled_prefix(store.num_rows + 1)


class TestMarginalCounts:
    def test_counts_match_direct_count(self, store):
        sampler = PrefixSampler(store, seed=5)
        m = 300
        counts = sampler.marginal_counts("x", m)
        rows = sampler.shuffled_prefix(m)
        expected = np.bincount(store.column("x")[rows], minlength=10)
        assert np.array_equal(counts, expected)
        assert counts.sum() == m

    def test_incremental_extension_matches_fresh_count(self, store):
        sampler = PrefixSampler(store, seed=5)
        sampler.marginal_counts("x", 100)
        counts = sampler.marginal_counts("x", 700)
        fresh = PrefixSampler(store, seed=5).marginal_counts("x", 700)
        assert np.array_equal(counts, fresh)

    def test_full_prefix_equals_population_counts(self, store):
        sampler = PrefixSampler(store, seed=5)
        counts = sampler.marginal_counts("y", store.num_rows)
        assert np.array_equal(counts, store.value_counts("y"))

    def test_shrinking_prefix_rejected(self, store):
        sampler = PrefixSampler(store, seed=5)
        sampler.marginal_counts("x", 500)
        with pytest.raises(ParameterError, match="cannot shrink"):
            sampler.marginal_counts("x", 100)

    def test_same_prefix_twice_no_extra_cost(self, store):
        sampler = PrefixSampler(store, seed=5)
        sampler.marginal_counts("x", 500)
        cost = sampler.cells_scanned
        sampler.marginal_counts("x", 500)
        assert sampler.cells_scanned == cost

    def test_cells_accounting(self, store):
        sampler = PrefixSampler(store, seed=5)
        sampler.marginal_counts("x", 100)
        sampler.marginal_counts("y", 200)
        sampler.marginal_counts("x", 400)
        assert sampler.cells_scanned == 100 + 200 + 300


class TestJointCounts:
    def test_joint_counts_match_direct(self, store):
        sampler = PrefixSampler(store, seed=9)
        m = 400
        counter = sampler.joint_counts("x", "y", m)
        rows = sampler.shuffled_prefix(m)
        x = store.column("x")[rows]
        y = store.column("y")[rows]
        for i in range(10):
            for j in range(5):
                assert counter.count_of(i, j) == int(((x == i) & (y == j)).sum())

    def test_pair_key_is_symmetric(self, store):
        sampler = PrefixSampler(store, seed=9)
        first = sampler.joint_counts("x", "y", 100)
        second = sampler.joint_counts("y", "x", 100)
        assert first is second

    def test_joint_cells_cost_two_per_record(self, store):
        sampler = PrefixSampler(store, seed=9)
        sampler.joint_counts("x", "y", 100)
        assert sampler.cells_scanned == 200

    def test_joint_with_self_rejected(self, store):
        sampler = PrefixSampler(store, seed=9)
        with pytest.raises(SchemaError, match="marginal"):
            sampler.joint_counts("x", "x", 10)

    def test_joint_shrinking_rejected(self, store):
        sampler = PrefixSampler(store, seed=9)
        sampler.joint_counts("x", "y", 500)
        with pytest.raises(ParameterError, match="cannot shrink"):
            sampler.joint_counts("x", "y", 100)

    def test_joint_incremental_matches_fresh(self, store):
        sampler = PrefixSampler(store, seed=9)
        sampler.joint_counts("x", "z", 128)
        counter = sampler.joint_counts("x", "z", 1024)
        fresh = PrefixSampler(store, seed=9).joint_counts("x", "z", 1024)
        assert np.array_equal(
            np.sort(counter.nonzero_counts()), np.sort(fresh.nonzero_counts())
        )


class TestRelease:
    def test_release_drops_marginal_and_joint(self, store):
        sampler = PrefixSampler(store, seed=3)
        sampler.marginal_counts("x", 500)
        sampler.joint_counts("x", "y", 500)
        sampler.release("x")
        cost_before = sampler.cells_scanned
        # re-counting starts from scratch (costs again)
        sampler.marginal_counts("x", 500)
        assert sampler.cells_scanned == cost_before + 500

    def test_release_unknown_is_noop(self, store):
        PrefixSampler(store, seed=3).release("never_counted")
