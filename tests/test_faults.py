"""Tests for the fault-injection harness and retry-with-backoff."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import exact_entropies
from repro.core import swope_top_k_entropy
from repro.data.csv_io import load_csv
from repro.data.streaming import stream_csv_counts
from repro.exceptions import DataFormatError, ParameterError
from repro.testing.faults import FlakyReader, FlakyStore, retry_with_backoff


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text("color,flag\nred,0\nblue,1\nred,0\ngreen,1\nred,1\n")
    return path


@pytest.fixture()
def ragged_csv(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("color,flag\nred,0\nblue\ngreen,1,extra\nred,1\n")
    return path


class TestRetryWithBackoff:
    def test_recovers_within_retry_limit(self):
        calls = {"n": 0}
        sleeps: list[float] = []

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient")
            return "ok"

        assert (
            retry_with_backoff(
                flaky, max_retries=3, base_delay_s=0.1, sleep=sleeps.append, rng=0
            )
            == "ok"
        )
        assert calls["n"] == 3
        assert len(sleeps) == 2
        # Exponential with jitter in [1, 1.5]: delay k is in
        # [0.1 * 2^k, 0.15 * 2^k].
        assert 0.1 <= sleeps[0] <= 0.15
        assert 0.2 <= sleeps[1] <= 0.3

    def test_raises_after_exhausting_retries(self):
        sleeps: list[float] = []

        def always_fails():
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_with_backoff(
                always_fails, max_retries=2, base_delay_s=0.01, sleep=sleeps.append
            )
        assert len(sleeps) == 2

    def test_delay_capped_at_max(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 4:
                raise OSError("transient")
            return None

        retry_with_backoff(
            flaky, max_retries=4, base_delay_s=1.0, max_delay_s=1.5,
            jitter=0.0, sleep=sleeps.append,
        )
        assert sleeps == [1.0, 1.5, 1.5, 1.5]

    def test_non_retryable_propagates_immediately(self):
        sleeps: list[float] = []

        def bad_format():
            raise DataFormatError("malformed, retrying cannot help")

        with pytest.raises(DataFormatError):
            retry_with_backoff(bad_format, max_retries=5, sleep=sleeps.append)
        assert sleeps == []  # not a single retry was attempted

    def test_max_elapsed_cap_stops_retrying_early(self):
        # Planned delays with jitter=0: 1.0, 2.0, 4.0. The second retry
        # would push cumulative planned sleep to 3.0 > 2.5, so only one
        # retry happens even though max_retries allows five.
        sleeps: list[float] = []
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            retry_with_backoff(
                always_fails, max_retries=5, base_delay_s=1.0,
                jitter=0.0, max_elapsed_s=2.5, sleep=sleeps.append,
            )
        assert calls["n"] == 2
        assert sleeps == [1.0]

    def test_max_elapsed_cap_permits_retries_within_budget(self):
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient")
            return "ok"

        assert (
            retry_with_backoff(
                flaky, max_retries=5, base_delay_s=1.0,
                jitter=0.0, max_elapsed_s=10.0, sleep=sleeps.append,
            )
            == "ok"
        )
        assert sleeps == [1.0, 2.0]

    def test_jitter_scales_each_delay(self):
        # jitter=1.0 multiplies each delay by a uniform factor in
        # [1, 2]; a seeded rng makes the draw reproducible.
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient")
            return None

        retry_with_backoff(
            flaky, max_retries=3, base_delay_s=1.0, max_delay_s=8.0,
            jitter=1.0, sleep=sleeps.append, rng=42,
        )
        assert len(sleeps) == 2
        assert 1.0 <= sleeps[0] <= 2.0
        assert 2.0 <= sleeps[1] <= 4.0

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            retry_with_backoff(lambda: None, max_retries=-1)
        with pytest.raises(ParameterError):
            retry_with_backoff(lambda: None, jitter=2.0)
        with pytest.raises(ParameterError):
            retry_with_backoff(lambda: None, base_delay_s=-0.1)
        with pytest.raises(ParameterError):
            retry_with_backoff(lambda: None, max_elapsed_s=0.0)


class TestFlakyReaderStreaming:
    def test_recovers_from_open_failures(self, csv_file):
        reader = FlakyReader(fail_times=2, sleep=lambda _: None)
        counts = stream_csv_counts(
            csv_file, opener=reader, max_retries=3, retry_base_delay_s=0.0
        )
        assert reader.attempts == 3
        assert reader.failures_injected == 2
        assert counts.num_rows == 5
        clean = stream_csv_counts(csv_file)
        assert counts.entropies() == clean.entropies()

    def test_recovers_from_mid_stream_failure(self, csv_file):
        # The nastier mode: the failing attempts die after 2 rows. A
        # retried pass must not double-count the rows already consumed.
        reader = FlakyReader(fail_times=1, fail_after_rows=2, sleep=lambda _: None)
        counts = stream_csv_counts(
            csv_file, opener=reader, max_retries=2, retry_base_delay_s=0.0
        )
        assert counts.num_rows == 5
        assert counts.entropies() == stream_csv_counts(csv_file).entropies()

    def test_exhausted_retries_surface_oserror(self, csv_file):
        reader = FlakyReader(fail_times=5)
        with pytest.raises(OSError):
            stream_csv_counts(
                csv_file, opener=reader, max_retries=2, retry_base_delay_s=0.0
            )

    def test_format_errors_are_not_retried(self, ragged_csv):
        reader = FlakyReader(fail_times=0)
        with pytest.raises(DataFormatError):
            stream_csv_counts(
                ragged_csv, opener=reader, max_retries=5, retry_base_delay_s=0.0
            )
        assert reader.attempts == 1  # surfaced unchanged, no retry

    def test_load_csv_with_retries(self, csv_file):
        reader = FlakyReader(fail_times=1)
        store, _ = load_csv(
            csv_file, opener=reader, max_retries=1, retry_base_delay_s=0.0
        )
        assert store.num_rows == 5
        assert set(store.attributes) == {"color", "flag"}

    def test_load_csv_without_retries_fails_fast(self, csv_file):
        with pytest.raises(OSError):
            load_csv(csv_file, opener=FlakyReader(fail_times=1))


class TestBadRowPolicy:
    def test_raise_is_default(self, ragged_csv):
        with pytest.raises(DataFormatError, match="row 3"):
            stream_csv_counts(ragged_csv)

    def test_skip_counts_bad_rows(self, ragged_csv):
        counts = stream_csv_counts(ragged_csv, on_bad_row="skip")
        assert counts.num_rows == 2
        assert counts.bad_rows == 2
        assert counts.support_size("color") == 1  # only 'red' rows survive

    def test_warn_emits_and_counts(self, ragged_csv):
        with pytest.warns(UserWarning, match="skipping row"):
            counts = stream_csv_counts(ragged_csv, on_bad_row="warn")
        assert counts.bad_rows == 2

    def test_unknown_policy_rejected(self, csv_file):
        with pytest.raises(ParameterError):
            stream_csv_counts(csv_file, on_bad_row="explode")

    def test_skipped_rows_do_not_count_against_max_rows(self, ragged_csv):
        counts = stream_csv_counts(ragged_csv, on_bad_row="skip", max_rows=2)
        assert counts.num_rows == 2


class TestFlakyStore:
    def test_transient_column_failures_then_success(self, small_store):
        flaky = FlakyStore(small_store, fail_times=2)
        read = retry_with_backoff(
            lambda: flaky.column("wide"),
            max_retries=3,
            base_delay_s=0.0,
            sleep=lambda _: None,
        )
        assert np.array_equal(read, small_store.column("wide"))
        assert flaky.failures_injected == 2
        assert flaky.reads == 3

    def test_delegates_metadata(self, small_store):
        flaky = FlakyStore(small_store)
        assert flaky.num_rows == small_store.num_rows
        assert flaky.attributes == small_store.attributes
        assert flaky.support_size("wide") == small_store.support_size("wide")
        assert "wide" in flaky

    def test_latency_injection_uses_sleep(self, small_store):
        sleeps: list[float] = []
        flaky = FlakyStore(small_store, latency_s=0.25, sleep=sleeps.append)
        flaky.column("wide")
        flaky.column("narrow")
        assert sleeps == [0.25, 0.25]

    def test_query_runs_over_recovered_store(self, small_store):
        # Once the transient failures are exhausted the wrapper is a
        # drop-in store: a full SWOPE query runs and matches the oracle.
        flaky = FlakyStore(small_store, fail_times=0)
        result = swope_top_k_entropy(flaky, 1, epsilon=0.2, seed=0)
        exact = exact_entropies(small_store)
        top = result.estimates[0]
        assert top.lower <= exact[top.attribute] <= top.upper
