"""End-to-end tests of the census workload track.

Four layers, mirroring the track's promises:

* **end to end** — every registered scenario runs from a manifested
  dataset through preprocessing, plan execution, and exact scoring, on
  both counting backends, with bit-identical answers across backends;
* **guarantee audit** — each scenario runs over many seeds and the
  empirical Definition 5/6 violation rate is held to the per-query
  failure budget ``p_f`` (with ``p_f = 1/N`` even one violation over
  this audit would exceed the bound, so the assertion is zero);
* **golden artifacts** — the correlated scenario's plan trace and its
  provenance manifest are pinned byte-for-byte under ``tests/golden/``
  (regenerate with ``--update-golden``); the directory-wide checks in
  ``test_golden_traces.py`` and ``scripts/check_trace_schema.py`` pick
  both up automatically;
* **cache identity** — the manifest's sha256 is the same dataset
  fingerprint the plan cache partitions on, so a cache warmed under one
  manifest is reused (bit-identically) by any regeneration of it.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.cache import PlanCache, partition_filename
from repro.core.plan import PlanExecutor
from repro.data.filters import partition_by_support
from repro.durability.checkpoint import store_fingerprint
from repro.exceptions import ParameterError
from repro.experiments.workloads import (
    census_plan,
    render_track,
    run_census_applications,
    run_census_track,
    run_scenario,
    save_track_report,
)
from repro.obs import JsonlSink
from repro.synth.census import SCENARIOS, generate_census, manifest_json

GOLDEN_DIR = Path(__file__).parent / "golden"
SCALE = 0.01  # ~512-600 rows per dataset: full track in well under a second
GOLDEN_SEED = 7
GOLDEN_SCENARIO = "correlated"
BACKENDS = ("numpy", "threads")
AUDIT_SEEDS = tuple(range(20))


# ----------------------------------------------------------------------
# End to end
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_track_runs_every_scenario_end_to_end(backend: str) -> None:
    report = run_census_track(seeds=(0,), scale=SCALE, backend=backend)
    assert report.scenarios == tuple(SCENARIOS)
    assert len(report.outcomes) == len(SCENARIOS)
    for outcome in report.outcomes:
        scenario = SCENARIOS[outcome.scenario]
        assert outcome.backend == backend
        assert outcome.fingerprint  # manifest sha256 travels with the run
        assert len(outcome.queries) == len(scenario.queries)
        # Preprocessing accounting: kept + dropped partition the schema.
        names = tuple(s.name for s in scenario.columns)
        assert tuple(
            n for n in names if n not in outcome.dropped_columns
        ) == outcome.kept_columns
        for query in outcome.queries:
            assert 0.0 <= query.accuracy <= 1.0
            assert 0.0 <= query.precision <= 1.0
            assert query.cells >= 0
            assert query.exact_cells > 0


def test_track_is_bit_identical_across_backends() -> None:
    runs = {
        backend: run_census_track(seeds=(3,), scale=SCALE, backend=backend)
        for backend in BACKENDS
    }
    numpy_run, threads_run = runs["numpy"], runs["threads"]
    for a, b in zip(numpy_run.outcomes, threads_run.outcomes):
        assert a.fingerprint == b.fingerprint
        assert a.cells_scanned == b.cells_scanned
        for qa, qb in zip(a.queries, b.queries):
            assert qa.answer == qb.answer
            assert qa.cells == qb.cells
            assert qa.violations == qb.violations


def test_scenario_threshold_columns_are_dropped_before_planning() -> None:
    outcome = run_scenario("threshold", seed=0, scale=SCALE)
    assert outcome.dropped_columns == ("just_over", "far_over")
    for query in outcome.queries:
        for name in query.answer:
            assert name not in outcome.dropped_columns


def test_run_census_track_parameter_validation() -> None:
    with pytest.raises(ParameterError, match="seed"):
        run_census_track(seeds=())
    with pytest.raises(ParameterError, match="scenario"):
        run_census_track(scenarios=[])


def test_render_and_save_track_report(tmp_path: Path) -> None:
    report = run_census_track(
        scenarios=["correlated"], seeds=(0, 1), scale=SCALE
    )
    text = render_track(report)
    assert "correlated" in text and "corr_mi_top3" in text
    assert f"violations={report.violation_count}" in text
    path = save_track_report(report, tmp_path / "track.json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["scenarios"] == ["correlated"]
    assert payload["total_queries"] == report.total_queries
    assert len(payload["outcomes"]) == 2


def test_applications_layer_on_census_data() -> None:
    result = run_census_applications(
        "correlated", seed=0, scale=0.05, num_features=3, max_depth=2
    )
    assert result["label"] == "ancestry"
    assert 0.0 <= float(str(result["selection_overlap"])) <= 1.0
    # Both engines fit on the same kept store; exact is the ceiling the
    # SWOPE-backed tree must effectively match on this easy scenario.
    assert result["tree_accuracy_swope"] == pytest.approx(
        float(str(result["tree_accuracy_exact"])), abs=0.05
    )


def test_applications_requires_an_mi_target() -> None:
    with pytest.raises(ParameterError, match="no MI target"):
        run_census_applications("skewed", scale=SCALE)


# ----------------------------------------------------------------------
# Guarantee-violation audit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_guarantee_violation_rate_within_failure_budget(backend: str) -> None:
    # Each scenario x 20 seeds. With the default p_f = 1/N (N >= 512),
    # the expected violation count over this audit is ~< 0.2, so a single
    # observed violation would already exceed the budget many times over:
    # the empirical rate must be exactly zero.
    report = run_census_track(seeds=AUDIT_SEEDS, scale=SCALE, backend=backend)
    assert report.total_queries == len(AUDIT_SEEDS) * sum(
        len(s.queries) for s in SCENARIOS.values()
    )
    violating = [
        (o.scenario, o.seed, q.name, q.violations)
        for o in report.outcomes
        for q in o.queries
        if q.violations
    ]
    assert not violating, violating
    assert report.violation_rate <= report.max_failure_probability


# ----------------------------------------------------------------------
# Golden artifacts
# ----------------------------------------------------------------------
def _golden_trace_lines(backend: str | None = None) -> list[str]:
    dataset = generate_census(GOLDEN_SCENARIO, seed=GOLDEN_SEED, scale=SCALE)
    kept, _dropped = partition_by_support(dataset.store)
    buffer = io.StringIO()
    sink = JsonlSink(buffer)
    executor = PlanExecutor(kept, seed=GOLDEN_SEED, backend=backend)
    executor.execute(census_plan(dataset.scenario, kept), trace=sink)
    sink.close()
    return buffer.getvalue().splitlines()


def test_census_plan_trace_matches_golden(update_golden: bool) -> None:
    lines = _golden_trace_lines()
    path = GOLDEN_DIR / f"plan_census_{GOLDEN_SCENARIO}.jsonl"
    if update_golden:
        path.parent.mkdir(exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
        return
    assert path.exists(), (
        f"golden file {path} missing; generate with --update-golden"
    )
    golden = path.read_text().splitlines()
    header = json.loads(golden[0])
    assert header["event"] == "header"
    assert lines[1:] == golden[1:], (
        "census plan trace drifted from the golden; if the change is"
        " intentional, regenerate with --update-golden"
    )


def test_census_plan_trace_identical_across_backends() -> None:
    assert _golden_trace_lines("numpy") == _golden_trace_lines("threads")


def test_census_manifest_matches_golden(update_golden: bool) -> None:
    dataset = generate_census(GOLDEN_SCENARIO, seed=GOLDEN_SEED, scale=SCALE)
    rendered = manifest_json(dataset.manifest)
    path = GOLDEN_DIR / f"census_{GOLDEN_SCENARIO}.manifest.json"
    if update_golden:
        path.parent.mkdir(exist_ok=True)
        path.write_text(rendered, encoding="utf-8")
        return
    assert path.exists(), (
        f"golden manifest {path} missing; generate with --update-golden"
    )
    assert path.read_text(encoding="utf-8") == rendered, (
        "census manifest drifted from the golden; the generators changed"
        " without a manifest schema bump — regenerate with --update-golden"
    )


# ----------------------------------------------------------------------
# Cache identity: manifest sha256 == plan-cache dataset fingerprint
# ----------------------------------------------------------------------
def test_plan_cache_partitions_on_the_manifest_fingerprint() -> None:
    # The correlated scenario drops nothing, so the store that reaches
    # the executor is exactly the manifested dataset: its cache partition
    # key IS the manifest sha256. A regeneration from the manifest lands
    # in the same partition and is served the same bits.
    dataset = generate_census(GOLDEN_SCENARIO, seed=GOLDEN_SEED, scale=SCALE)
    kept, dropped = partition_by_support(dataset.store)
    assert dropped == ()
    assert store_fingerprint(kept) == dataset.fingerprint

    cache = PlanCache()
    plan = census_plan(dataset.scenario, kept)
    cold = PlanExecutor(kept, seed=GOLDEN_SEED, cache=cache)
    cold_result = cold.execute(plan)
    keys = list(cache._partitions)
    assert len(keys) == 1
    fingerprint, shuffle = keys[0]
    assert fingerprint == dataset.fingerprint
    # The on-disk partition name is a pure function of the manifest
    # fingerprint + shuffle, so persisted cache state survives a
    # regenerate-from-manifest round trip too.
    assert partition_filename(fingerprint, shuffle) == partition_filename(
        dataset.fingerprint, shuffle
    )

    # Warm run on a regenerated (bit-identical) dataset: every query is
    # answered from the cache with the exact same scores and no new scan.
    again = generate_census(GOLDEN_SCENARIO, seed=GOLDEN_SEED, scale=SCALE)
    assert again.fingerprint == dataset.fingerprint
    warm = PlanExecutor(again.store, seed=GOLDEN_SEED, cache=cache)
    warm_result = warm.execute(census_plan(again.scenario, again.store))
    assert warm_result.stats.cells_scanned == 0
    for spec in plan.specs:
        assert spec.name is not None
        cold_answer = cold_result[spec.name]
        warm_answer = warm_result[spec.name]
        assert tuple(warm_answer.attributes) == tuple(cold_answer.attributes)
        assert warm_answer.estimates == cold_answer.estimates
