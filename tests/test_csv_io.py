"""Unit tests for :mod:`repro.data.csv_io`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.csv_io import load_csv, load_npz, save_npz
from repro.exceptions import DataFormatError


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoadCsv:
    def test_basic_load(self, tmp_path):
        path = write(tmp_path, "a,b\nx,1\ny,2\nx,1\n")
        store, encoder = load_csv(path)
        assert store.num_rows == 3
        assert store.attributes == ("a", "b")
        assert store.support_size("a") == 2
        assert encoder.decode("a", store.column("a")) == ["x", "y", "x"]

    def test_max_rows(self, tmp_path):
        path = write(tmp_path, "a\n1\n2\n3\n4\n")
        store, _ = load_csv(path, max_rows=2)
        assert store.num_rows == 2

    def test_usecols(self, tmp_path):
        path = write(tmp_path, "a,b,c\n1,2,3\n4,5,6\n")
        store, _ = load_csv(path, usecols=["c", "a"])
        assert store.attributes == ("c", "a")

    def test_usecols_unknown_raises(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n")
        with pytest.raises(DataFormatError, match="unknown columns"):
            load_csv(path, usecols=["zzz"])

    def test_custom_delimiter(self, tmp_path):
        path = write(tmp_path, "a;b\n1;2\n")
        store, _ = load_csv(path, delimiter=";")
        assert store.attributes == ("a", "b")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataFormatError, match="no such file"):
            load_csv(tmp_path / "ghost.csv")

    def test_empty_file_raises(self, tmp_path):
        path = write(tmp_path, "")
        with pytest.raises(DataFormatError, match="empty"):
            load_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = write(tmp_path, "a,b\n")
        with pytest.raises(DataFormatError, match="no data rows"):
            load_csv(path)

    def test_duplicate_header_raises(self, tmp_path):
        path = write(tmp_path, "a,a\n1,2\n")
        with pytest.raises(DataFormatError, match="duplicate"):
            load_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(DataFormatError, match="row 3"):
            load_csv(path)

    def test_header_names_stripped(self, tmp_path):
        path = write(tmp_path, " a , b \n1,2\n")
        store, _ = load_csv(path)
        assert store.attributes == ("a", "b")


class TestNpzRoundTrip:
    def test_round_trip_preserves_data_and_support(self, tmp_path):
        store = ColumnStore(
            {"a": np.array([0, 1, 2]), "b": np.array([1, 1, 0])},
            support_sizes={"a": 10, "b": 2},
        )
        path = tmp_path / "store.npz"
        save_npz(store, path)
        loaded = load_npz(path)
        assert loaded.num_rows == 3
        assert loaded.support_size("a") == 10
        assert loaded.column("b").tolist() == [1, 1, 0]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DataFormatError, match="no such file"):
            load_npz(tmp_path / "ghost.npz")

    def test_load_foreign_npz_raises(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(DataFormatError, match="unexpected archive member"):
            load_npz(path)

    def test_load_npz_missing_support_raises(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, **{"col::a": np.arange(3)})
        with pytest.raises(DataFormatError, match="missing support"):
            load_npz(path)
