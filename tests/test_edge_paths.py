"""Edge-path tests filling coverage gaps across layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.adaptive_exact import exact_stopping_top_k
from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.core.engine import EntropyScoreProvider
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.experiments.runner import run_entropy_top_k, run_mi_filter
from repro.synth.datasets import load_dataset


class TestRunnerSequentialFlag:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("cdc", scale=0.01)

    def test_shuffled_path(self, dataset):
        outcome = run_entropy_top_k(
            dataset.store, "swope", 2, seed=3, sequential=False
        )
        assert len(outcome.answer) == 2

    def test_sequential_deterministic_regardless_of_seed(self, dataset):
        a = run_entropy_top_k(dataset.store, "swope", 2, seed=1, sequential=True)
        b = run_entropy_top_k(dataset.store, "swope", 2, seed=2, sequential=True)
        assert a.answer == b.answer
        assert a.cells_scanned == b.cells_scanned

    def test_mi_filter_exact_runner(self, dataset):
        target = dataset.mi_targets[0]
        outcome = run_mi_filter(dataset.store, "exact", target, 0.3)
        assert outcome.sample_fraction == 1.0
        assert outcome.accuracy == 1.0


class TestExactStoppingEdges:
    def test_k_covers_all_candidates_breaks_immediately(self, small_store):
        # With k >= |C| the separation test is vacuous: one iteration.
        result = entropy_rank_top_k(small_store, 10, seed=0)
        assert len(result.attributes) == small_store.num_attributes
        assert result.stats.iterations == 1

    def test_single_candidate(self, small_store):
        result = entropy_rank_top_k(small_store, 1, seed=0, attributes=["wide"])
        assert result.attributes == ["wide"]
        assert result.stats.iterations == 1

    def test_filter_tie_with_threshold_resolved_at_full_sample(self):
        # H(x) == 1.0 exactly: neither strict rule can ever fire, so the
        # loop must run to M = N and close the comparison there.
        store = ColumnStore({"x": np.array([0, 1] * 500)})
        result = entropy_filter(store, 1.0, seed=0)
        assert result.answer_set() == {"x"}
        assert result.stats.final_sample_size == store.num_rows

    def test_custom_provider_loop(self, small_store):
        # Drive the generic exact-stopping loop directly with a provider.
        sampler = PrefixSampler(small_store, seed=0)
        schedule = SampleSchedule(
            population_size=small_store.num_rows, initial_size=64
        )
        provider = EntropyScoreProvider(
            sampler, schedule.per_round_failure(0.01, 4)
        )
        result = exact_stopping_top_k(
            provider, sampler, list(small_store.attributes), 1, schedule
        )
        assert result.attributes == ["wide"]


class TestGeneratorSeeds:
    def test_generator_flows_through_query(self, small_store):
        from repro.core.topk import swope_top_k_entropy

        gen = np.random.default_rng(5)
        result = swope_top_k_entropy(small_store, 1, seed=gen)
        fresh = swope_top_k_entropy(small_store, 1, seed=np.random.default_rng(5))
        assert result.attributes == fresh.attributes
        assert result.stats.cells_scanned == fresh.stats.cells_scanned


class TestHeadStoreInteraction:
    def test_query_over_head_slice(self, small_store):
        from repro.core.topk import swope_top_k_entropy

        head = small_store.head(1000)
        result = swope_top_k_entropy(head, 1, seed=0)
        assert result.attributes == ["wide"]
        assert result.stats.population_size == 1000

    def test_take_accepts_plain_lists(self, small_store):
        sub = small_store.take([0, 2, 4])
        assert sub.num_rows == 3
