"""Tests for figure-run persistence (JSON round trip)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import DataFormatError
from repro.experiments.figures import run_figure
from repro.experiments.persistence import load_figure_run, save_figure_run


@pytest.fixture(scope="module")
def small_run():
    return run_figure("fig9", datasets=["cdc"], scale=0.01, seed=0)


class TestRoundTrip:
    def test_preserves_points(self, small_run, tmp_path):
        path = tmp_path / "fig9.json"
        save_figure_run(small_run, path)
        loaded = load_figure_run(path)
        assert loaded.spec.figure_id == "fig9"
        assert loaded.datasets == small_run.datasets
        assert loaded.scale == small_run.scale
        assert len(loaded.points) == len(small_run.points)
        for a, b in zip(loaded.points, small_run.points):
            assert a.dataset == b.dataset
            assert a.x == b.x
            assert a.algorithm == b.algorithm
            assert a.cells_scanned == pytest.approx(b.cells_scanned)
            assert a.accuracy == pytest.approx(b.accuracy)

    def test_series_survive_round_trip(self, small_run, tmp_path):
        path = tmp_path / "fig9.json"
        save_figure_run(small_run, path)
        loaded = load_figure_run(path)
        assert loaded.series("cdc", "swope", "accuracy") == small_run.series(
            "cdc", "swope", "accuracy"
        )


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError, match="no such file"):
            load_figure_run(tmp_path / "ghost.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DataFormatError, match="not valid JSON"):
            load_figure_run(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(DataFormatError, match="unsupported"):
            load_figure_run(path)

    def test_unknown_figure(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"version": 1, "figure": "fig99"}))
        with pytest.raises(DataFormatError, match="unknown figure"):
            load_figure_run(path)

    def test_malformed_points(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "figure": "fig9",
                    "datasets": ["cdc"],
                    "scale": 1.0,
                    "num_targets": 1,
                    "points": [{"dataset": "cdc"}],
                }
            )
        )
        with pytest.raises(DataFormatError, match="malformed"):
            load_figure_run(path)
