"""Property-based tests for trace-event and metrics invariants.

Hypothesis drives randomly shaped stores, seeds, and query parameters
through the engine and checks structural invariants of the event stream
and the metrics reconciliation — things the golden traces pin for four
fixed runs, generalised to arbitrary runs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filtering import swope_filter_entropy
from repro.core.schedule import SampleSchedule
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.obs import InMemorySink, MetricsRegistry

WIDTH_SLACK = 1e-9

store_params = st.fixed_dictionaries(
    {
        "num_rows": st.integers(min_value=256, max_value=1500),
        "supports": st.lists(
            st.integers(min_value=2, max_value=32), min_size=2, max_size=5
        ),
        "data_seed": st.integers(min_value=0, max_value=10_000),
    }
)


def _build_store(params: dict) -> ColumnStore:
    rng = np.random.default_rng(params["data_seed"])
    n = params["num_rows"]
    return ColumnStore(
        {
            f"col{i}": rng.integers(0, support, n)
            for i, support in enumerate(params["supports"])
        }
    )


def _run_traced(params: dict, seed: int, kind: str):
    store = _build_store(params)
    sink = InMemorySink()
    registry = MetricsRegistry()
    schedule = SampleSchedule(store.num_rows, 32)
    if kind == "top_k":
        result = swope_top_k_entropy(
            store, 1, seed=seed, schedule=schedule, trace=sink, metrics=registry
        )
    else:
        result = swope_filter_entropy(
            store, 1.5, seed=seed, schedule=schedule, trace=sink, metrics=registry
        )
    return result, sink, registry


@settings(max_examples=20, deadline=None)
@given(params=store_params, seed=st.integers(min_value=0, max_value=1000))
def test_iteration_sample_sizes_monotone_non_decreasing(params, seed):
    _, sink, _ = _run_traced(params, seed, "top_k")
    sizes = [e.sample_size for e in sink.of_kind("iteration")]
    assert sizes == sorted(sizes)
    assert all(b > a for a, b in zip(sizes, sizes[1:])), sizes


@settings(max_examples=20, deadline=None)
@given(params=store_params, seed=st.integers(min_value=0, max_value=1000))
def test_interval_widths_non_increasing(params, seed):
    _, sink, _ = _run_traced(params, seed, "top_k")
    iterations = sink.of_kind("iteration")
    widths: dict[str, list[float]] = {}
    for event in iterations:
        for attribute, (lower, upper) in event.bounds.items():
            widths.setdefault(attribute, []).append(upper - lower)
    assert widths
    for attribute, series in widths.items():
        assert all(
            a >= b - WIDTH_SLACK for a, b in zip(series, series[1:])
        ), (attribute, series)


@settings(max_examples=20, deadline=None)
@given(
    params=store_params,
    seed=st.integers(min_value=0, max_value=1000),
    kind=st.sampled_from(["top_k", "filter"]),
)
def test_cells_scanned_total_matches_run_stats(params, seed, kind):
    result, sink, registry = _run_traced(params, seed, kind)
    assert registry.counter("cells_scanned_total").value == float(
        result.stats.cells_scanned
    )
    end = sink.of_kind("query_end")[0]
    assert end.cells_scanned == result.stats.cells_scanned
    assert end.final_sample_size == result.stats.final_sample_size


@settings(max_examples=20, deadline=None)
@given(
    params=store_params,
    seed=st.integers(min_value=0, max_value=1000),
    kind=st.sampled_from(["top_k", "filter"]),
)
def test_trace_event_count_matches_sink(params, seed, kind):
    result, sink, _ = _run_traced(params, seed, kind)
    assert result.stats.trace_event_count == len(sink)
    kinds = sink.kinds()
    assert kinds[0] == "query_start"
    assert kinds[-1] == "query_end"
    assert kinds.count("query_start") == 1
    assert kinds.count("query_end") == 1


@settings(max_examples=10, deadline=None)
@given(
    params=store_params,
    seeds=st.lists(
        st.integers(min_value=0, max_value=1000), min_size=1, max_size=3
    ),
)
def test_latency_histograms_reconcile_with_phase_timings(params, seeds):
    store = _build_store(params)
    registry = MetricsRegistry()
    schedule = SampleSchedule(store.num_rows, 32)
    stats = [
        swope_top_k_entropy(
            store, 1, seed=seed, schedule=schedule, metrics=registry
        ).stats
        for seed in seeds
    ]
    for name, field in [
        ("query_wall_seconds", "wall_seconds"),
        ("query_counting_seconds", "counting_seconds"),
        ("query_bounds_seconds", "bounds_seconds"),
        ("query_loop_seconds", "loop_seconds"),
    ]:
        histogram = registry.histogram(name)
        assert histogram.count == len(seeds)
        assert histogram.sum == pytest.approx(
            sum(getattr(s, field) for s in stats)
        )
    assert registry.counter("iterations_total").value == float(
        sum(s.iterations for s in stats)
    )
