"""Stress tests at the paper's u = 1000 preprocessing boundary.

The paper drops attributes whose support exceeds ``u = 1000`` before
running SWOPE, because Lemma 1's bias bound ``b(α)`` grows with the
support ``u_α`` and eventually swamps the confidence interval. This
module pins the three faces of that boundary on the ISSUE's support grid
``u ∈ {998, 1000, 1001, 5000}``:

* the filter itself — kept iff ``u <= 1000``, exactly, on both the
  synthetic census scenario and hand-built stores;
* the analytic reason — ``bias_bound`` is strictly increasing in ``u``
  and vanishes only when the sample is the whole dataset;
* the algorithmic consequence — on the *kept* near-threshold columns
  (``u = 998`` and ``u = 1000``, the worst bias the engine ever accepts)
  the Definition 5/6 guarantees still hold against exact baselines.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import bias_bound
from repro.core.filtering import swope_filter_entropy
from repro.core.topk import swope_top_k_entropy
from repro.data.column_store import ColumnStore
from repro.data.filters import PAPER_MAX_SUPPORT, partition_by_support
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
)
from repro.baselines import exact_entropies
from repro.synth.census import generate_census

SUPPORT_GRID = (998, 1000, 1001, 5000)


def _grid_store(num_rows: int = 4000) -> ColumnStore:
    """One column per grid support, declared support = u exactly."""
    rng = np.random.default_rng(20210614)
    columns = {}
    support_sizes = {}
    for u in SUPPORT_GRID:
        name = f"u{u}"
        columns[name] = rng.integers(0, u, num_rows)
        support_sizes[name] = u
    return ColumnStore(columns, support_sizes=support_sizes)


# ----------------------------------------------------------------------
# The filter at the boundary
# ----------------------------------------------------------------------
def test_paper_cutoff_is_one_thousand() -> None:
    assert PAPER_MAX_SUPPORT == 1000


@pytest.mark.parametrize("u", SUPPORT_GRID)
def test_column_kept_iff_support_at_most_cutoff(u: int) -> None:
    store = _grid_store(num_rows=500)
    kept, dropped = partition_by_support(store)
    name = f"u{u}"
    if u <= PAPER_MAX_SUPPORT:
        assert name in kept.attributes and name not in dropped
    else:
        assert name in dropped and name not in kept.attributes


def test_declared_support_governs_the_filter_not_realized_values() -> None:
    # 100 rows cannot realize 1001 distinct values, but the *declared*
    # domain is what Lemma 1's bias depends on — the filter must use it.
    store = ColumnStore(
        {"sparse": np.arange(100) % 7, "small": np.arange(100) % 5},
        support_sizes={"sparse": PAPER_MAX_SUPPORT + 1, "small": 5},
    )
    kept, dropped = partition_by_support(store)
    assert dropped == ("sparse",)
    assert kept.attributes == ("small",)


def test_threshold_scenario_partitions_on_the_grid() -> None:
    dataset = generate_census("threshold", seed=0, scale=0.01)
    supports = {
        spec.name: spec.support_size for spec in dataset.scenario.columns
    }
    kept, dropped = partition_by_support(dataset.store)
    assert supports["near_low"] == 998 and "near_low" in kept.attributes
    assert supports["at_cut"] == 1000 and "at_cut" in kept.attributes
    assert supports["just_over"] == 1001 and "just_over" in dropped
    assert supports["far_over"] == 5000 and "far_over" in dropped


# ----------------------------------------------------------------------
# Lemma 1: the bias grows with the support
# ----------------------------------------------------------------------
def test_bias_bound_is_strictly_increasing_in_support() -> None:
    population, sample = 100_000, 2_000
    biases = [bias_bound(u, sample, population) for u in SUPPORT_GRID]
    for smaller, larger in zip(biases, biases[1:]):
        assert smaller < larger
    # Closed form spot-check at the cutoff itself (Lemma 1).
    u = PAPER_MAX_SUPPORT
    expected = math.log2(
        1.0 + (u - 1) * (population - sample) / (sample * (population - 1))
    )
    assert bias_bound(u, sample, population) == pytest.approx(expected)


@pytest.mark.parametrize("u", SUPPORT_GRID)
def test_bias_bound_vanishes_on_the_full_scan(u: int) -> None:
    # At M = N every bound collapses; that is what guarantees the
    # adaptive loop terminates even for the worst kept support.
    assert bias_bound(u, 50_000, 50_000) == 0.0


def test_bias_at_cutoff_exceeds_bias_below_it_at_every_sample_size() -> None:
    population = 50_000
    for sample in (500, 2_000, 10_000, 49_999):
        assert bias_bound(998, sample, population) < bias_bound(
            1000, sample, population
        )


# ----------------------------------------------------------------------
# Definition 5/6 on the kept near-threshold columns
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def threshold_dataset():
    # Scale 0.1 -> 5000 rows: enough that u = 1000 columns are genuinely
    # hard (support ~ sample size early on) while staying fast.
    return generate_census("threshold", seed=11, scale=0.1)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_top_k_guarantee_holds_with_near_threshold_columns(
    threshold_dataset, seed: int
) -> None:
    kept, _ = partition_by_support(threshold_dataset.store)
    exact = exact_entropies(kept)
    result = swope_top_k_entropy(kept, 3, epsilon=0.1, seed=seed)
    violations = check_top_k_guarantee(result, exact, 0.1)
    assert not violations, violations


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_filter_guarantee_holds_with_near_threshold_columns(
    threshold_dataset, seed: int
) -> None:
    kept, _ = partition_by_support(threshold_dataset.store)
    exact = exact_entropies(kept)
    # Pick the threshold between the near-threshold pair and the mid
    # columns so the boundary columns are exactly the contested ones.
    result = swope_filter_entropy(kept, 6.0, epsilon=0.05, seed=seed)
    violations = check_filter_guarantee(result, exact, 0.05)
    assert not violations, violations


def test_near_threshold_columns_are_live_candidates(threshold_dataset) -> None:
    # The kept u = 998 / u = 1000 columns must actually reach the
    # engine as candidates — dropping them silently would make the
    # guarantee tests above vacuous.
    kept, _ = partition_by_support(threshold_dataset.store)
    assert "near_low" in kept.attributes
    assert "at_cut" in kept.attributes
    exact = exact_entropies(kept)
    result = swope_top_k_entropy(kept, 3, epsilon=0.1, seed=0)
    top3_exact = sorted(exact, key=lambda n: -exact[n])[:3]
    assert set(result.attributes) == set(top3_exact)
