"""Tests for repro.durability: atomic writes and the checkpoint format.

Four layers:

* atomic write-rename — the destination either holds the old bytes or
  the complete new bytes, never a torn mix; ``AtomicTextFile`` only
  publishes on a clean close;
* checkpoint envelope — save/load round-trips every section; the loader
  refuses a wrong format marker, a future schema version
  (``CheckpointMismatchError``), a tampered or truncated payload
  (``CheckpointError``), and a checkpoint written for different data
  (dataset-fingerprint mismatch);
* sampler state — ``PrefixSampler.state_snapshot``/``from_state``
  reproduce the permutation, the prefix position, and every marginal
  and joint counter exactly, for both counting backends;
* the resume property — snapshot → restore → continue equals the
  uninterrupted run bit-for-bit (hypothesis sweeps store shapes and
  snapshot points on both backends).
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.plan import PlanExecutor, QuerySpec, plan_queries
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.durability.atomic import (
    AtomicTextFile,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.durability.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA_VERSION,
    decode_sampler_state,
    encode_sampler_state,
    load_checkpoint,
    save_checkpoint,
    store_fingerprint,
)
from repro.exceptions import (
    CheckpointError,
    CheckpointMismatchError,
    ParameterError,
)
from repro.testing.chaos import plan_fingerprint, truncate_file

BACKENDS = ["numpy", "threads"]
SEED = 7


@pytest.fixture()
def store(rng: np.random.Generator) -> ColumnStore:
    n = 1200
    target = rng.integers(0, 5, n)
    return ColumnStore(
        {
            "wide": rng.integers(0, 32, n),
            "narrow": rng.integers(0, 3, n),
            "target": target,
            "noisy": np.where(rng.random(n) < 0.6, target, rng.integers(0, 5, n)),
        }
    )


def _specs() -> list[QuerySpec]:
    return [
        QuerySpec(kind="top_k", score="entropy", k=2),
        QuerySpec(
            kind="top_k", score="mutual_information", k=1, target="target"
        ),
    ]


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrites:
    def test_write_text_creates_and_replaces(self, tmp_path):
        path = tmp_path / "artifact.txt"
        atomic_write_text(path, "first")
        assert path.read_text() == "first"
        atomic_write_text(path, "second")
        assert path.read_text() == "second"
        # no temp siblings survive a successful write
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_write_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\xff" * 10)
        assert path.read_bytes() == b"\x00\xff" * 10

    def test_streaming_file_publishes_only_on_close(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        out = AtomicTextFile(path)
        out.write("line 1\n")
        assert not path.exists()  # nothing published mid-stream
        out.close()
        assert path.read_text() == "line 1\n"

    def test_streaming_file_abort_leaves_previous_content(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        atomic_write_text(path, "previous\n")
        with pytest.raises(RuntimeError):
            with AtomicTextFile(path) as out:
                out.write("half-written garbage")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "previous\n"
        assert [p.name for p in tmp_path.iterdir()] == ["stream.jsonl"]


# ----------------------------------------------------------------------
# Dataset fingerprints
# ----------------------------------------------------------------------
class TestStoreFingerprint:
    def test_deterministic(self, store):
        assert store_fingerprint(store) == store_fingerprint(store)

    def test_sensitive_to_values(self, rng):
        a = ColumnStore({"x": np.array([0, 1, 2, 1])})
        b = ColumnStore({"x": np.array([0, 1, 2, 2])})
        assert store_fingerprint(a) != store_fingerprint(b)

    def test_sensitive_to_names_and_shape(self):
        a = ColumnStore({"x": np.array([0, 1, 2])})
        b = ColumnStore({"y": np.array([0, 1, 2])})
        c = ColumnStore({"x": np.array([0, 1, 2, 0])})
        assert len({store_fingerprint(s) for s in (a, b, c)}) == 3


# ----------------------------------------------------------------------
# Checkpoint envelope verification
# ----------------------------------------------------------------------
def _write_checkpoint(store, tmp_path, **executor_kwargs):
    path = tmp_path / "plan.ckpt"
    executor = PlanExecutor(
        store, seed=SEED, checkpoint_path=path, **executor_kwargs
    )
    result = executor.execute(plan_queries(store, _specs()))
    return path, result


class TestCheckpointEnvelope:
    def test_round_trip_and_store_verification(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        snapshot = load_checkpoint(path, store=store)
        assert snapshot.schema_version == CHECKPOINT_SCHEMA_VERSION
        assert snapshot.dataset["fingerprint"] == store_fingerprint(store)
        assert [spec["kind"] for spec in snapshot.specs] == ["top_k", "top_k"]
        assert snapshot.progress["in_flight"] is None  # plan completed

    def test_save_returns_bytes_written(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        snapshot = load_checkpoint(path)
        n = save_checkpoint(snapshot, tmp_path / "copy.ckpt")
        assert n == (tmp_path / "copy.ckpt").stat().st_size > 0

    def test_refuses_future_schema_version(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointMismatchError, match="schema"):
            load_checkpoint(path)

    def test_refuses_wrong_format_marker(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        envelope = json.loads(path.read_text())
        envelope["format"] = "something-else"
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match=CHECKPOINT_FORMAT):
            load_checkpoint(path)

    def test_refuses_tampered_payload(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["executor"]["sample_floor"] += 1
        path.write_text(json.dumps(envelope))
        with pytest.raises(CheckpointError, match="sha256"):
            load_checkpoint(path)

    def test_refuses_truncated_file(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        truncate_file(path, path.stat().st_size // 2)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_refuses_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.ckpt")

    def test_refuses_different_dataset(self, store, rng, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        other = ColumnStore(
            {name: store.column(name).copy() for name in store.attributes[:2]}
        )
        with pytest.raises(CheckpointMismatchError, match="fingerprint"):
            load_checkpoint(path, store=other)
        with pytest.raises(CheckpointMismatchError):
            PlanExecutor.resume(path, other)

    def test_resume_requires_same_plan(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        executor = PlanExecutor.resume(path, store)
        other_plan = plan_queries(
            store, [QuerySpec(kind="top_k", score="entropy", k=1)]
        )
        with pytest.raises(CheckpointMismatchError, match="different plan"):
            executor.execute(other_plan)

    def test_resumed_plan_only_before_execute(self, store, tmp_path):
        path, _ = _write_checkpoint(store, tmp_path)
        executor = PlanExecutor.resume(path, store)
        plan = executor.resumed_plan()
        executor.execute(plan)
        with pytest.raises(ParameterError, match="resumed_plan"):
            executor.resumed_plan()

    def test_checkpoint_every_validated(self, store, tmp_path):
        with pytest.raises(ParameterError, match="checkpoint_every"):
            PlanExecutor(
                store, seed=SEED,
                checkpoint_path=tmp_path / "x", checkpoint_every=0,
            )


# ----------------------------------------------------------------------
# Sampler state snapshots
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSamplerState:
    def test_snapshot_restores_counters_and_position(self, store, backend):
        sampler = PrefixSampler(store, seed=SEED, retain=True, backend=backend)
        sampler.marginal_counts("wide", 300)
        sampler.marginal_counts("narrow", 300)
        sampler.joint_counts("target", "noisy", 300)
        state = decode_sampler_state(encode_sampler_state(sampler.state_snapshot()))
        clone = PrefixSampler.from_state(store, state, backend=backend)
        assert clone.cells_scanned == sampler.cells_scanned
        for name in ("wide", "narrow"):
            np.testing.assert_array_equal(
                clone.marginal_counts(name, 300),
                sampler.marginal_counts(name, 300),
            )
        assert (
            clone.joint_counts("target", "noisy", 300).total
            == sampler.joint_counts("target", "noisy", 300).total
        )

    def test_restored_sampler_continues_identically(self, store, backend):
        reference = PrefixSampler(store, seed=SEED, retain=True, backend=backend)
        snapshotted = PrefixSampler(store, seed=SEED, retain=True, backend=backend)
        for sampler in (reference, snapshotted):
            for name in store.attributes:
                sampler.marginal_counts(name, 200)
        state = decode_sampler_state(
            encode_sampler_state(snapshotted.state_snapshot())
        )
        restored = PrefixSampler.from_state(store, state, backend=backend)
        # grow both to a deeper prefix and compare every counter
        for name in store.attributes:
            np.testing.assert_array_equal(
                restored.marginal_counts(name, 900),
                reference.marginal_counts(name, 900),
            )
        assert restored.cells_scanned == reference.cells_scanned


# ----------------------------------------------------------------------
# The resume property (hypothesis)
# ----------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    data_seed=st.integers(min_value=0, max_value=2**16),
    num_rows=st.integers(min_value=200, max_value=900),
    kill_at=st.integers(min_value=0, max_value=50),
    backend=st.sampled_from(BACKENDS),
)
def test_snapshot_restore_continue_matches_uninterrupted(
    tmp_path, data_seed, num_rows, kill_at, backend
):
    """Kill at any boundary, resume, and the answers are bit-identical."""
    from repro.testing.chaos import (
        BoundaryFaultToken,
        ChaosPlan,
        SimulatedKillError,
    )

    data_rng = np.random.default_rng(data_seed)
    target = data_rng.integers(0, 4, num_rows)
    store = ColumnStore(
        {
            "a": data_rng.integers(0, 16, num_rows),
            "b": data_rng.integers(0, 3, num_rows),
            "target": target,
            "mirror": np.where(
                data_rng.random(num_rows) < 0.5,
                target,
                data_rng.integers(0, 4, num_rows),
            ),
        }
    )
    plan = plan_queries(store, _specs())
    reference = plan_fingerprint(
        PlanExecutor(store, seed=SEED, backend=backend).execute(plan)
    )
    path = tmp_path / f"resume-{data_seed}-{num_rows}-{kill_at}-{backend}.ckpt"
    token = BoundaryFaultToken(ChaosPlan.kill_at(kill_at))
    try:
        PlanExecutor(
            store, seed=SEED, backend=backend, checkpoint_path=path
        ).execute(plan, cancellation=token)
        killed = False
    except SimulatedKillError:
        killed = True
    if killed:
        resumed = PlanExecutor.resume(path, store, backend=backend)
        outcome = resumed.execute(resumed.resumed_plan())
        assert plan_fingerprint(outcome) == reference
    # kill_at past the last boundary: the uninterrupted run must agree too
    else:
        assert (
            plan_fingerprint(
                PlanExecutor(store, seed=SEED, backend=backend).execute(plan)
            )
            == reference
        )
