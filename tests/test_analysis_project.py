"""Tests for the whole-program analysis engine.

Covers the graph layer (name resolution across aliased imports,
``self``-method calls, ``__init__`` re-exports; sha256 cache
invalidation), the four project rules SWP013–SWP016 with positive and
negative fixtures (matching the per-module fixture pattern in
``tests/test_analysis.py``), the SARIF reporter, the ``--changed-only``
narrowing semantics, and the live tree staying clean in ``--project``
mode.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import analyze_project, analyze_source
from repro.analysis.checker import build_context
from repro.analysis.graph import (
    ProjectGraph,
    extract_module,
    load_cache,
    save_cache,
)
from repro.analysis.reporting import render_sarif
from repro.analysis.rules import Severity

REPO_ROOT = Path(__file__).resolve().parent.parent


def codes(report) -> list[str]:
    return sorted(v.rule for v in report.violations)


def write_tree(root: Path, files: dict[str, str]) -> None:
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")


def run_project(tmp_path: Path, files: dict[str, str], **kwargs):
    write_tree(tmp_path, files)
    return analyze_project(
        [tmp_path / "src"], display_root=tmp_path, **kwargs
    )


def graph_of(files: dict[str, str]) -> ProjectGraph:
    """Build a ProjectGraph from in-memory sources (path → text)."""
    summaries = []
    for path, text in files.items():
        context = build_context(path, textwrap.dedent(text))
        summaries.append(extract_module(context))
    return ProjectGraph(summaries)


# ----------------------------------------------------------------------
# Graph layer: name resolution
# ----------------------------------------------------------------------
class TestResolution:
    def test_aliased_import_resolves(self):
        graph = graph_of(
            {
                "src/repro/a.py": "def helper():\n    return 1\n",
                "src/repro/b.py": (
                    "from repro.a import helper as h\n"
                    "def caller():\n"
                    "    return h()\n"
                ),
            }
        )
        edges = graph.edges()
        assert "repro.a:helper" in edges["repro.b:caller"]

    def test_module_alias_import_resolves(self):
        graph = graph_of(
            {
                "src/repro/a.py": "def helper():\n    return 1\n",
                "src/repro/b.py": (
                    "import repro.a as ra\n"
                    "def caller():\n"
                    "    return ra.helper()\n"
                ),
            }
        )
        assert "repro.a:helper" in graph.edges()["repro.b:caller"]

    def test_self_method_call_resolves(self):
        graph = graph_of(
            {
                "src/repro/c.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        return self._step()\n"
                    "    def _step(self):\n"
                    "        return 0\n"
                ),
            }
        )
        assert "repro.c:Engine._step" in graph.edges()["repro.c:Engine.run"]

    def test_self_method_through_base_class(self):
        graph = graph_of(
            {
                "src/repro/base.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        return 0\n"
                ),
                "src/repro/child.py": (
                    "from repro.base import Base\n"
                    "class Child(Base):\n"
                    "    def run(self):\n"
                    "        return self.shared()\n"
                ),
            }
        )
        assert "repro.base:Base.shared" in graph.edges()["repro.child:Child.run"]

    def test_reexport_via_init_resolves(self):
        graph = graph_of(
            {
                "src/repro/pkg/__init__.py": "from repro.pkg.impl import thing\n",
                "src/repro/pkg/impl.py": "def thing():\n    return 1\n",
                "src/repro/user.py": (
                    "from repro.pkg import thing\n"
                    "def caller():\n"
                    "    return thing()\n"
                ),
            }
        )
        assert "repro.pkg.impl:thing" in graph.edges()["repro.user:caller"]

    def test_relative_import_inside_package(self):
        graph = graph_of(
            {
                "src/repro/pkg/__init__.py": "",
                "src/repro/pkg/impl.py": "def thing():\n    return 1\n",
                "src/repro/pkg/user.py": (
                    "from .impl import thing\n"
                    "def caller():\n"
                    "    return thing()\n"
                ),
            }
        )
        assert "repro.pkg.impl:thing" in graph.edges()["repro.pkg.user:caller"]

    def test_class_call_resolves_to_init(self):
        graph = graph_of(
            {
                "src/repro/d.py": (
                    "class Widget:\n"
                    "    def __init__(self):\n"
                    "        self.x = 1\n"
                    "def make():\n"
                    "    return Widget()\n"
                ),
            }
        )
        assert "repro.d:Widget.__init__" in graph.edges()["repro.d:make"]

    def test_unresolvable_local_method_has_no_edge(self):
        graph = graph_of(
            {
                "src/repro/e.py": (
                    "def caller(ctx):\n"
                    "    return ctx.finish()\n"
                ),
            }
        )
        assert graph.edges()["repro.e:caller"] == set()

    def test_reachability_reports_first_root(self):
        graph = graph_of(
            {
                "src/repro/f.py": (
                    "def swope_entry():\n"
                    "    return inner()\n"
                    "def inner():\n"
                    "    return leaf()\n"
                    "def leaf():\n"
                    "    return 0\n"
                ),
            }
        )
        origin = graph.reachable(["repro.f:swope_entry"])
        assert origin["repro.f:leaf"] == "repro.f:swope_entry"


# ----------------------------------------------------------------------
# Graph layer: summary cache
# ----------------------------------------------------------------------
class TestGraphCache:
    FILES = {
        "src/repro/mod.py": (
            "def swope_q(schedule):\n"
            "    for n in schedule.sizes:\n"
            "        check_interruption(n)\n"
            "def check_interruption(n):\n"
            "    return n\n"
        ),
    }

    def test_cache_roundtrip(self, tmp_path):
        cache = tmp_path / "cache.json"
        report = run_project(tmp_path, self.FILES, cache_path=cache)
        assert codes(report) == []
        assert cache.exists()
        cached = load_cache(cache)
        assert len(cached) == 1

    def test_cache_invalidates_on_file_change(self, tmp_path):
        cache = tmp_path / "cache.json"
        report = run_project(tmp_path, self.FILES, cache_path=cache)
        assert codes(report) == []
        # Remove the budget check: the summary must be re-extracted, not
        # served from the (now content-mismatched) cache.
        changed = {
            "src/repro/mod.py": (
                "def swope_q(schedule):\n"
                "    for n in schedule.sizes:\n"
                "        consume(n)\n"
                "def consume(n):\n"
                "    return n\n"
            ),
        }
        report = run_project(tmp_path, changed, cache_path=cache)
        assert "SWP014" in codes(report)

    def test_corrupt_cache_is_ignored(self, tmp_path):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json", encoding="utf-8")
        report = run_project(tmp_path, self.FILES, cache_path=cache)
        assert codes(report) == []
        assert load_cache(cache)  # rewritten with valid content

    def test_save_and_load_preserve_summaries(self, tmp_path):
        context = build_context(
            "src/repro/x.py", "def f():\n    return g()\ndef g():\n    return 1\n"
        )
        summary = extract_module(context)
        cache = tmp_path / "c.json"
        save_cache(cache, [summary])
        restored = load_cache(cache)[summary.sha256]
        assert restored.to_dict() == summary.to_dict()


# ----------------------------------------------------------------------
# SWP013 — determinism taint
# ----------------------------------------------------------------------
#: A minimal events module so sink resolution is exercised end to end.
_EVENTS = "class QueryStartEvent:\n    def __init__(self, **fields):\n        self.fields = fields\n"


class TestSWP013:
    def test_wall_clock_into_event_payload_fires(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/obs/__init__.py": "",
                "src/repro/obs/events.py": _EVENTS,
                "src/repro/core/engine.py": (
                    "import time\n"
                    "from repro.obs.events import QueryStartEvent\n"
                    "def emit(sink):\n"
                    "    started = time.perf_counter()\n"
                    "    sink(QueryStartEvent(at=started))\n"
                ),
            },
        )
        assert "SWP013" in codes(report)

    def test_perf_counter_into_stats_only_is_clean(self, tmp_path):
        # The acceptance true-negative: wall time may feed RunStats
        # timing fields (the metrics layer), just never an event.
        report = run_project(
            tmp_path,
            {
                "src/repro/obs/__init__.py": "",
                "src/repro/obs/events.py": _EVENTS,
                "src/repro/core/engine.py": (
                    "import time\n"
                    "from repro.obs.events import QueryStartEvent\n"
                    "class RunStats:\n"
                    "    def __init__(self):\n"
                    "        self.wall_seconds = 0.0\n"
                    "def run(sink, n):\n"
                    "    started = time.perf_counter()\n"
                    "    stats = RunStats()\n"
                    "    sink(QueryStartEvent(size=n))\n"
                    "    stats.wall_seconds = time.perf_counter() - started\n"
                    "    return stats\n"
                ),
            },
        )
        assert "SWP013" not in codes(report)

    def test_taint_propagates_through_helper_return(self, tmp_path):
        # Interprocedural: the wall clock is read two calls away.
        report = run_project(
            tmp_path,
            {
                "src/repro/obs/__init__.py": "",
                "src/repro/obs/events.py": _EVENTS,
                "src/repro/core/engine.py": (
                    "import time\n"
                    "from repro.obs.events import QueryStartEvent\n"
                    "def now():\n"
                    "    return time.perf_counter()\n"
                    "def stamp():\n"
                    "    return now()\n"
                    "def emit(sink):\n"
                    "    sink(QueryStartEvent(at=stamp()))\n"
                ),
            },
        )
        assert "SWP013" in codes(report)

    def test_set_iteration_order_into_checkpoint_fires(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/durability/__init__.py": "",
                "src/repro/durability/checkpoint.py": (
                    "class PlanCheckpoint:\n"
                    "    def __init__(self, **fields):\n"
                    "        self.fields = fields\n"
                ),
                "src/repro/core/plan.py": (
                    "from repro.durability.checkpoint import PlanCheckpoint\n"
                    "def snapshot(names):\n"
                    "    pending = set(names)\n"
                    "    return PlanCheckpoint(pending=list(pending))\n"
                ),
            },
        )
        assert "SWP013" in codes(report)

    def test_sorted_cleanses_order_taint(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/durability/__init__.py": "",
                "src/repro/durability/checkpoint.py": (
                    "class PlanCheckpoint:\n"
                    "    def __init__(self, **fields):\n"
                    "        self.fields = fields\n"
                ),
                "src/repro/core/plan.py": (
                    "from repro.durability.checkpoint import PlanCheckpoint\n"
                    "def snapshot(names):\n"
                    "    pending = set(names)\n"
                    "    return PlanCheckpoint(pending=sorted(pending))\n"
                ),
            },
        )
        assert "SWP013" not in codes(report)

    def test_fingerprint_sink_fires_on_unseeded_rng(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/testing/__init__.py": "",
                "src/repro/testing/chaos.py": (
                    "def result_fingerprint(payload):\n"
                    "    return repr(payload)\n"
                ),
                "src/repro/core/engine.py": (
                    "import numpy as np\n"
                    "from repro.testing.chaos import result_fingerprint\n"
                    "def fp():\n"
                    "    rng = np.random.default_rng()\n"
                    "    return result_fingerprint(rng.random())\n"
                ),
            },
        )
        assert "SWP013" in codes(report)

    def test_noqa_suppresses_and_is_tracked(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/obs/__init__.py": "",
                "src/repro/obs/events.py": _EVENTS,
                "src/repro/core/engine.py": (
                    "import time\n"
                    "from repro.obs.events import QueryStartEvent\n"
                    "def emit(sink):\n"
                    "    sink(QueryStartEvent(at=time.perf_counter()))  # noqa: SWP013\n"
                ),
            },
        )
        assert "SWP013" not in codes(report)
        assert any(v.rule == "SWP013" for v in report.suppressed)

    def test_stale_project_suppression_reported(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/core/engine.py": (
                    "def emit(sink):\n"
                    "    sink(1)  # noqa: SWP013\n"
                ),
            },
        )
        assert "SWP000" in codes(report)


# ----------------------------------------------------------------------
# SWP014 — budget reachability
# ----------------------------------------------------------------------
class TestSWP014:
    def test_unchecked_adaptive_loop_reachable_from_entry_fires(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/api.py": (
                    "from repro.inner import drive\n"
                    "def swope_entropy(schedule):\n"
                    "    return drive(schedule)\n"
                ),
                "src/repro/inner.py": (
                    "def drive(schedule):\n"
                    "    total = 0\n"
                    "    for n in schedule.sizes:\n"
                    "        total += n\n"
                    "    return total\n"
                ),
            },
        )
        assert "SWP014" in codes(report)
        [violation] = [v for v in report.violations if v.rule == "SWP014"]
        assert "swope_entropy" in violation.message
        assert violation.path == "src/repro/inner.py"

    def test_checked_loop_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/api.py": (
                    "from repro.inner import drive\n"
                    "def swope_entropy(schedule, budget):\n"
                    "    return drive(schedule, budget)\n"
                ),
                "src/repro/inner.py": (
                    "from repro.budget import check_interruption\n"
                    "def drive(schedule, budget):\n"
                    "    total = 0\n"
                    "    for n in schedule.sizes:\n"
                    "        check_interruption(budget)\n"
                    "        total += n\n"
                    "    return total\n"
                ),
                "src/repro/budget.py": (
                    "def check_interruption(budget):\n"
                    "    return budget\n"
                ),
            },
        )
        assert "SWP014" not in codes(report)

    def test_unreachable_loop_is_clean(self, tmp_path):
        # Same loop, but nothing public reaches it: out of contract.
        report = run_project(
            tmp_path,
            {
                "src/repro/inner.py": (
                    "def _private_drive(schedule):\n"
                    "    total = 0\n"
                    "    for n in schedule.sizes:\n"
                    "        total += n\n"
                    "    return total\n"
                ),
            },
        )
        assert "SWP014" not in codes(report)


# ----------------------------------------------------------------------
# SWP015 — thread shared state
# ----------------------------------------------------------------------
class TestSWP015:
    def test_unlocked_global_mutation_in_worker_fires(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/data/backends.py": (
                    "_CACHE = {}\n"
                    "def _count_one(column):\n"
                    "    _CACHE[column] = column\n"
                    "    return column\n"
                    "class ThreadedBackend:\n"
                    "    def counts(self, pool, columns):\n"
                    "        return [pool.submit(_count_one, c) for c in columns]\n"
                ),
            },
        )
        assert "SWP015" in codes(report)

    def test_locked_mutation_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/data/backends.py": (
                    "import threading\n"
                    "_CACHE = {}\n"
                    "_LOCK = threading.Lock()\n"
                    "def _count_one(column):\n"
                    "    with _LOCK:\n"
                    "        _CACHE[column] = column\n"
                    "    return column\n"
                    "class ThreadedBackend:\n"
                    "    def counts(self, pool, columns):\n"
                    "        return [pool.submit(_count_one, c) for c in columns]\n"
                ),
            },
        )
        assert "SWP015" not in codes(report)

    def test_mutation_outside_worker_path_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/data/backends.py": (
                    "_CACHE = {}\n"
                    "def warm(column):\n"
                    "    _CACHE[column] = column\n"
                    "def _count_one(column):\n"
                    "    return column\n"
                    "class ThreadedBackend:\n"
                    "    def counts(self, pool, columns):\n"
                    "        return [pool.submit(_count_one, c) for c in columns]\n"
                ),
            },
        )
        assert "SWP015" not in codes(report)

    def test_thread_target_keyword_is_a_worker_root(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/data/backends.py": (
                    "import threading\n"
                    "_SEEN = []\n"
                    "def _drain():\n"
                    "    _SEEN.append(1)\n"
                    "def start():\n"
                    "    return threading.Thread(target=_drain)\n"
                ),
            },
        )
        assert "SWP015" in codes(report)


# ----------------------------------------------------------------------
# SWP016 — exception contract
# ----------------------------------------------------------------------
_EXC = (
    "class ReproError(Exception):\n"
    "    pass\n"
    "class ParameterError(ReproError, ValueError):\n"
    "    pass\n"
)


class TestSWP016:
    def test_builtin_raise_reachable_from_entry_fires(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/exceptions.py": _EXC,
                "src/repro/api.py": (
                    "from repro.inner import validate\n"
                    "def swope_entropy(n):\n"
                    "    return validate(n)\n"
                ),
                "src/repro/inner.py": (
                    "def validate(n):\n"
                    "    if n < 0:\n"
                    "        raise ValueError('negative')\n"
                    "    return n\n"
                ),
            },
        )
        assert "SWP016" in codes(report)

    def test_taxonomy_exception_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/exceptions.py": _EXC,
                "src/repro/api.py": (
                    "from repro.exceptions import ParameterError\n"
                    "from repro.inner import validate\n"
                    "def swope_entropy(n):\n"
                    "    return validate(n)\n"
                ),
                "src/repro/inner.py": (
                    "from repro.exceptions import ParameterError\n"
                    "def validate(n):\n"
                    "    if n < 0:\n"
                    "        raise ParameterError('negative')\n"
                    "    return n\n"
                ),
            },
        )
        assert "SWP016" not in codes(report)

    def test_subclass_of_taxonomy_in_other_module_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/exceptions.py": _EXC,
                "src/repro/api.py": (
                    "from repro.exceptions import ReproError\n"
                    "class LocalError(ReproError):\n"
                    "    pass\n"
                    "def swope_entropy(n):\n"
                    "    if n < 0:\n"
                    "        raise LocalError('negative')\n"
                    "    return n\n"
                ),
            },
        )
        assert "SWP016" not in codes(report)

    def test_unreachable_builtin_raise_is_clean(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/exceptions.py": _EXC,
                "src/repro/inner.py": (
                    "def _helper(n):\n"
                    "    raise ValueError('never reached from an entry')\n"
                ),
            },
        )
        assert "SWP016" not in codes(report)

    def test_not_implemented_error_is_allowed(self, tmp_path):
        report = run_project(
            tmp_path,
            {
                "src/repro/exceptions.py": _EXC,
                "src/repro/api.py": (
                    "def swope_entropy(n):\n"
                    "    raise NotImplementedError\n"
                ),
            },
        )
        assert "SWP016" not in codes(report)


# ----------------------------------------------------------------------
# --changed-only narrowing semantics
# ----------------------------------------------------------------------
class TestChangedOnly:
    FILES = {
        # A module-rule violation (SWP008 wall clock) in a file that is
        # NOT in the changed set...
        "src/repro/core/old.py": (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
        # ...and a cross-module SWP014 violation whose loop lives in the
        # unchanged file but is created by the changed entry point.
        "src/repro/api.py": (
            "from repro.core.old import drive\n"
            "def swope_entropy(schedule):\n"
            "    return drive(schedule)\n"
        ),
    }

    def test_project_rules_see_the_full_tree(self, tmp_path):
        files = dict(self.FILES)
        files["src/repro/core/old.py"] += (
            "def drive(schedule):\n"
            "    total = 0\n"
            "    for n in schedule.sizes:\n"
            "        total += n\n"
            "    return total\n"
        )
        report = run_project(
            tmp_path, files, module_files=["src/repro/api.py"]
        )
        found = codes(report)
        # Module rules skipped the unchanged file (no SWP008), but the
        # whole-program pass still positioned a finding inside it.
        assert "SWP008" not in found
        assert "SWP014" in found

    def test_full_run_reports_module_violations(self, tmp_path):
        report = run_project(tmp_path, dict(self.FILES))
        assert "SWP008" in codes(report)


# ----------------------------------------------------------------------
# SARIF output
# ----------------------------------------------------------------------
class TestSarif:
    def test_sarif_shape_and_fingerprints(self):
        report = analyze_source(
            "src/repro/core/example.py",
            "import time\ndef f():\n    return time.time()\n",
        )
        assert codes(report) == ["SWP008"]
        payload = json.loads(render_sarif(report))
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"SWP001", "SWP013", "SWP016", "SWP000", "PARSE"} <= rule_ids
        [result] = run["results"]
        assert result["ruleId"] == "SWP008"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/core/example.py"
        assert location["region"]["startLine"] == 3
        assert location["region"]["startColumn"] >= 1
        fingerprint = result["partialFingerprints"]["swopeFingerprint/v1"]
        assert fingerprint == report.violations[0].fingerprint

    def test_parse_errors_become_results(self):
        report = analyze_source("src/repro/broken.py", "def f(:\n")
        payload = json.loads(render_sarif(report))
        [result] = payload["runs"][0]["results"]
        assert result["ruleId"] == "PARSE"
        assert result["level"] == "error"


# ----------------------------------------------------------------------
# Live tree + CLI integration
# ----------------------------------------------------------------------
class TestLiveTreeProject:
    def test_live_tree_is_project_clean(self):
        report = analyze_project(
            [REPO_ROOT / "src", REPO_ROOT / "scripts"],
            display_root=REPO_ROOT,
        )
        findings = "\n".join(v.format_text() for v in report.violations)
        assert not report.violations, f"project-analysis violations:\n{findings}"
        assert not report.parse_errors

    def test_cli_project_mode_with_cache(self, tmp_path):
        cache = tmp_path / "graph.json"
        for _ in range(2):  # second run exercises the warm cache
            proc = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.analysis",
                    "--project",
                    "--graph-cache",
                    str(cache),
                    "src",
                ],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stdout + proc.stderr
        assert cache.exists()

    def test_cli_sarif_output_parses(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "--project",
                "--format",
                "sarif",
                "src",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["runs"][0]["results"] == []

    def test_graph_cache_without_project_is_usage_error(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.analysis",
                "--graph-cache",
                "x.json",
                "src",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 2

    def test_every_error_severity_project_rule(self):
        from repro.analysis.rules import RULES

        for code in ("SWP013", "SWP014", "SWP015", "SWP016"):
            assert RULES[code].severity is Severity.ERROR
