"""Tests for the ``repro`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig1"])
        assert args.figure_id == "fig1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "topk-entropy"])
        assert args.dataset == "cdc"
        assert args.k == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "pus" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "33,714,152" in out

    def test_figure_small(self, capsys):
        code = main(
            ["figure", "fig9", "--datasets", "cdc", "--scale", "0.01", "--seed", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "swope" in out

    def test_query_topk_entropy(self, capsys):
        code = main(
            ["query", "topk-entropy", "--dataset", "cdc", "--scale", "0.01", "-k", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "answer (3 attributes)" in out
        assert "stats:" in out

    def test_query_filter_entropy(self, capsys):
        code = main(
            ["query", "filter-entropy", "--dataset", "cdc", "--scale", "0.01",
             "--eta", "8.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "top_twin" in out

    def test_query_topk_mi_default_target(self, capsys):
        code = main(
            ["query", "topk-mi", "--dataset", "cdc", "--scale", "0.01", "-k", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mi_m_00" in out

    def test_query_filter_mi(self, capsys):
        code = main(
            ["query", "filter-mi", "--dataset", "cdc", "--scale", "0.01",
             "--eta", "1.0"]
        )
        assert code == 0

    def test_error_exit_code(self, capsys):
        code = main(
            ["query", "topk-mi", "--dataset", "cdc", "--scale", "0.01",
             "--target", "ghost"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestQueryBatch:
    def _plan_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                {
                    "queries": [
                        {"name": "a", "kind": "topk-entropy", "k": 2},
                        {"name": "b", "kind": "filter-entropy", "threshold": 2.0},
                        {
                            "name": "c", "kind": "topk-mi",
                            "target": "mi_base_00", "k": 2,
                        },
                    ]
                }
            )
        )
        return str(path)

    def test_batch_mode_runs_plan(self, tmp_path, capsys):
        code = main(
            ["query", "--queries", self._plan_file(tmp_path),
             "--dataset", "cdc", "--scale", "0.01", "--emit-metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan: 3 queries" in out
        for name in ("[a]", "[b]", "[c]"):
            assert name in out
        assert "shared-scan accounting:" in out
        assert "plans_total=1" in out
        assert "plan_queries_total=3" in out

    def test_kind_and_queries_are_mutually_exclusive(self, tmp_path, capsys):
        code = main(
            ["query", "topk-entropy", "--queries", self._plan_file(tmp_path),
             "--dataset", "cdc", "--scale", "0.01"]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_query_without_kind_or_plan_errors(self, capsys):
        code = main(["query", "--dataset", "cdc", "--scale", "0.01"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_plan_file_errors(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code = main(
            ["query", "--queries", str(path), "--dataset", "cdc",
             "--scale", "0.01"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_batch_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "plan_trace.jsonl"
        code = main(
            ["query", "--queries", self._plan_file(tmp_path),
             "--dataset", "cdc", "--scale", "0.01",
             "--trace-out", str(trace)]
        )
        assert code == 0
        lines = trace.read_text().splitlines()
        kinds = [json.loads(line)["event"] for line in lines]
        assert kinds[0] == "header"
        assert kinds[1] == "plan_start"
        assert kinds[-1] == "plan_end"
        assert kinds.count("query_retired") == 3
