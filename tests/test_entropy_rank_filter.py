"""Tests for the EntropyRank/EntropyFilter baselines (exact stopping)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.baselines.exact import (
    exact_entropies,
    exact_mutual_informations,
)
from repro.baselines.mi_filter import entropy_filter_mutual_information
from repro.baselines.mi_rank import entropy_rank_top_k_mutual_information
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError


class TestEntropyRank:
    def test_returns_exact_top_k(self, small_store):
        exact = exact_entropies(small_store)
        ranking = sorted(exact, key=lambda a: -exact[a])
        for k in (1, 2, 3):
            result = entropy_rank_top_k(small_store, k, seed=0)
            assert set(result.attributes) == set(ranking[:k])

    def test_exact_answer_across_seeds(self, small_store):
        answers = {
            tuple(sorted(entropy_rank_top_k(small_store, 2, seed=s).attributes))
            for s in range(5)
        }
        assert answers == {("medium", "wide")}

    def test_stops_early_on_separated_data(self, small_store):
        result = entropy_rank_top_k(small_store, 1, seed=0)
        assert result.stats.final_sample_size < small_store.num_rows

    def test_runs_to_full_sample_on_exact_ties(self):
        # Two identical columns: the gap is 0, so the exact stopping rule
        # can only fire at M = N.
        values = np.arange(2000) % 16
        store = ColumnStore({"t1": values, "t2": values.copy()})
        result = entropy_rank_top_k(store, 1, seed=0)
        assert result.stats.final_sample_size == store.num_rows

    def test_k_clamped(self, small_store):
        result = entropy_rank_top_k(small_store, 100, seed=0)
        assert len(result.attributes) == small_store.num_attributes

    def test_unknown_attribute_rejected(self, small_store):
        with pytest.raises(SchemaError):
            entropy_rank_top_k(small_store, 1, attributes=["ghost"])

    def test_prune_preserves_answer(self, small_store):
        pruned = entropy_rank_top_k(small_store, 2, seed=3)
        unpruned = entropy_rank_top_k(small_store, 2, seed=3, prune=False)
        assert set(pruned.attributes) == set(unpruned.attributes)


class TestEntropyFilter:
    def test_returns_exact_answer(self, small_store):
        exact = exact_entropies(small_store)
        for threshold in (0.5, 2.0, 6.0):
            result = entropy_filter(small_store, threshold, seed=0)
            expected = {a for a, s in exact.items() if s >= threshold}
            assert result.answer_set() == expected

    def test_score_equal_to_threshold_is_included(self):
        store = ColumnStore({"x": np.array([0, 1] * 100), "y": np.zeros(200, dtype=int)})
        result = entropy_filter(store, 1.0, seed=0)
        assert "x" in result  # H(x) == eta exactly -> >= eta -> included

    def test_stops_early_when_scores_far_from_threshold(self, small_store):
        result = entropy_filter(small_store, 4.0, seed=0)
        assert result.stats.final_sample_size < small_store.num_rows

    def test_empty_answer(self, small_store):
        assert entropy_filter(small_store, 100.0, seed=0).attributes == []

    def test_invalid_threshold(self, small_store):
        with pytest.raises(ParameterError):
            entropy_filter(small_store, -0.1)


class TestMIVariants:
    def test_mi_rank_exact_answer(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        ranking = sorted(exact, key=lambda a: -exact[a])
        result = entropy_rank_top_k_mutual_information(
            correlated_store, "target", 2, seed=0
        )
        assert set(result.attributes) == set(ranking[:2])
        assert result.target == "target"

    def test_mi_rank_target_excluded(self, correlated_store):
        result = entropy_rank_top_k_mutual_information(
            correlated_store, "target", 3, seed=0
        )
        assert "target" not in result.attributes

    def test_mi_rank_rejects_target_candidate(self, correlated_store):
        with pytest.raises(ParameterError):
            entropy_rank_top_k_mutual_information(
                correlated_store, "target", 1, candidates=["target"]
            )

    def test_mi_filter_exact_answer(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        for threshold in (0.5, 1.5):
            result = entropy_filter_mutual_information(
                correlated_store, "target", threshold, seed=0
            )
            expected = {a for a, s in exact.items() if s >= threshold}
            assert result.answer_set() == expected

    def test_mi_filter_unknown_target(self, correlated_store):
        with pytest.raises(SchemaError):
            entropy_filter_mutual_information(correlated_store, "ghost", 0.5)


class TestAgreementWithExactBaseline:
    """EntropyRank/Filter must agree with the full-scan baseline answer."""

    def test_topk_agreement_random_stores(self):
        rng = np.random.default_rng(7)
        for trial in range(3):
            n = 3000
            store = ColumnStore(
                {
                    f"c{i}": rng.integers(0, rng.integers(2, 100), n)
                    for i in range(6)
                }
            )
            exact = exact_entropies(store)
            ranking = sorted(exact, key=lambda a: -exact[a])
            result = entropy_rank_top_k(store, 2, seed=trial)
            assert set(result.attributes) == set(ranking[:2])

    def test_filter_agreement_random_stores(self):
        rng = np.random.default_rng(8)
        for trial in range(3):
            n = 3000
            store = ColumnStore(
                {
                    f"c{i}": rng.integers(0, rng.integers(2, 100), n)
                    for i in range(6)
                }
            )
            exact = exact_entropies(store)
            result = entropy_filter(store, 2.5, seed=trial)
            expected = {a for a, s in exact.items() if s >= 2.5}
            assert result.answer_set() == expected
