"""Tests for the naive fixed-size sampling baseline."""

from __future__ import annotations

import pytest

from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.baselines.naive_sampling import (
    naive_filter_entropy,
    naive_sample_entropies,
    naive_sample_mutual_informations,
    naive_top_k_entropy,
)
from repro.exceptions import ParameterError, SchemaError


class TestNaiveEntropies:
    def test_close_to_exact_on_large_sample(self, small_store):
        exact = exact_entropies(small_store)
        approx = naive_sample_entropies(small_store, small_store.num_rows - 1, seed=0)
        for name in exact:
            assert approx[name] == pytest.approx(exact[name], abs=0.05)

    def test_full_sample_is_exact(self, small_store):
        exact = exact_entropies(small_store)
        approx = naive_sample_entropies(small_store, small_store.num_rows, seed=0)
        for name in exact:
            assert approx[name] == pytest.approx(exact[name])

    def test_invalid_sample_size(self, small_store):
        with pytest.raises(ParameterError):
            naive_sample_entropies(small_store, 0)
        with pytest.raises(ParameterError):
            naive_sample_entropies(small_store, small_store.num_rows + 1)


class TestNaiveMI:
    def test_full_sample_matches_exact(self, correlated_store):
        exact = exact_mutual_informations(correlated_store, "target")
        approx = naive_sample_mutual_informations(
            correlated_store, "target", correlated_store.num_rows, seed=0
        )
        for name in exact:
            assert approx[name] == pytest.approx(exact[name])

    def test_unknown_target(self, correlated_store):
        with pytest.raises(SchemaError):
            naive_sample_mutual_informations(correlated_store, "ghost", 100)


class TestNaiveQueries:
    def test_top_k_on_separated_data(self, small_store):
        result = naive_top_k_entropy(small_store, 2, 2000, seed=0)
        assert result.attributes == ["wide", "medium"]
        assert result.stats.final_sample_size == 2000

    def test_filter_on_separated_data(self, small_store):
        result = naive_filter_entropy(small_store, 3.0, 2000, seed=0)
        assert result.answer_set() == {"wide", "medium"}

    def test_small_sample_underestimates_wide_entropy(self, small_store):
        # The plug-in estimator on 50 records cannot see 200 distinct
        # values, demonstrating why the bias term b(alpha) exists.
        exact = exact_entropies(small_store)["wide"]
        approx = naive_sample_entropies(small_store, 50, seed=0)["wide"]
        assert approx < exact - 1.0
