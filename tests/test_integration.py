"""End-to-end integration tests: CSV → preprocess → query → decode.

These walk the full user path a downstream adopter takes: raw CSV file in,
decoded query answers out, with the paper's preprocessing (support-size
filter) in the middle — plus a full cross-algorithm agreement check on one
synthetic registry dataset.
"""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.baselines import (
    entropy_filter,
    entropy_rank_top_k,
    exact_entropies,
    exact_filter_entropy,
    exact_top_k_entropy,
)
from repro.core import swope_filter_entropy, swope_top_k_entropy
from repro.data import drop_high_support_columns, load_csv
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
)
from repro.synth.datasets import load_dataset


@pytest.fixture(scope="module")
def census_csv(tmp_path_factory):
    """A small census-like CSV with mixed-type columns."""
    rng = np.random.default_rng(17)
    n = 4000
    path = tmp_path_factory.mktemp("data") / "census.csv"
    education = rng.choice(["none", "hs", "college", "grad"], size=n)
    state = rng.integers(0, 50, n)
    income_code = rng.integers(0, 400, n)
    record_id = np.arange(n)  # unique per row: support = n (to be dropped)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["education", "state", "income_code", "record_id"])
        for row in zip(education, state, income_code, record_id):
            writer.writerow(row)
    return path


class TestCsvPipeline:
    def test_load_filter_query_decode(self, census_csv):
        store, encoder = load_csv(census_csv)
        assert store.num_attributes == 4
        # the paper's preprocessing removes the id-like column
        store = drop_high_support_columns(store, max_support=1000)
        assert "record_id" not in store.attributes
        result = swope_top_k_entropy(store, k=1, seed=0)
        assert result.attributes == ["income_code"]
        # answers decode back to raw values
        top_attr = result.attributes[0]
        codes = store.column(top_attr)[:3]
        decoded = encoder.decode(top_attr, codes)
        assert len(decoded) == 3

    def test_filter_query_on_csv(self, census_csv):
        store, _ = load_csv(census_csv)
        store = drop_high_support_columns(store)
        exact = exact_entropies(store)
        result = swope_filter_entropy(store, 3.0, epsilon=0.05, seed=0)
        assert check_filter_guarantee(result, exact, 0.05) == []


class TestCrossAlgorithmAgreement:
    """On a registry dataset, all three algorithms must agree up to the
    documented approximation guarantees."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("cdc", scale=0.01)

    def test_topk_agreement(self, dataset):
        store = dataset.store
        exact_result = exact_top_k_entropy(store, 4)
        rank_result = entropy_rank_top_k(store, 4, seed=0)
        assert set(rank_result.attributes) == set(exact_result.attributes)
        exact = exact_entropies(store)
        swope_result = swope_top_k_entropy(store, 4, epsilon=0.1, seed=0)
        assert check_top_k_guarantee(swope_result, exact, 0.1) == []

    def test_filter_agreement(self, dataset):
        store = dataset.store
        threshold = 2.0
        exact_result = exact_filter_entropy(store, threshold)
        filter_result = entropy_filter(store, threshold, seed=0)
        assert filter_result.answer_set() == exact_result.answer_set()
        exact = exact_entropies(store)
        swope_result = swope_filter_entropy(store, threshold, epsilon=0.05, seed=0)
        assert check_filter_guarantee(swope_result, exact, 0.05) == []

    def test_swope_cheapest_on_registry_data(self, dataset):
        store = dataset.store
        swope = swope_top_k_entropy(store, 4, epsilon=0.1, seed=0)
        rank = entropy_rank_top_k(store, 4, seed=0)
        exact_cells = store.num_attributes * store.num_rows
        assert swope.stats.cells_scanned <= rank.stats.cells_scanned
        assert rank.stats.cells_scanned <= exact_cells * 1.01


class TestPublicApiSurface:
    def test_package_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
