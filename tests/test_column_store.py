"""Unit tests for :mod:`repro.data.column_store`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.exceptions import SchemaError


class TestConstruction:
    def test_basic_shape(self, tiny_store):
        assert tiny_store.num_rows == 8
        assert tiny_store.num_attributes == 3
        assert tiny_store.attributes == ("a", "b", "c")
        assert len(tiny_store) == 8

    def test_empty_columns_rejected(self):
        with pytest.raises(SchemaError):
            ColumnStore({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError, match="rows"):
            ColumnStore({"a": np.zeros(3, dtype=int), "b": np.zeros(4, dtype=int)})

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(SchemaError, match="1-D"):
            ColumnStore({"a": np.zeros((2, 2), dtype=int)})

    def test_float_column_rejected(self):
        with pytest.raises(SchemaError, match="integer"):
            ColumnStore({"a": np.array([0.5, 1.5])})

    def test_negative_codes_rejected(self):
        with pytest.raises(SchemaError, match="negative"):
            ColumnStore({"a": np.array([0, -1, 2])})

    def test_declared_support_too_small_rejected(self):
        with pytest.raises(SchemaError, match="support size"):
            ColumnStore({"a": np.array([0, 5])}, support_sizes={"a": 3})

    def test_declared_support_zero_rejected(self):
        with pytest.raises(SchemaError, match=">= 1"):
            ColumnStore({"a": np.array([0])}, support_sizes={"a": 0})

    def test_columns_are_read_only(self, tiny_store):
        col = tiny_store.column("a")
        with pytest.raises(ValueError):
            col[0] = 9

    def test_dtype_is_compact(self):
        store = ColumnStore({"a": np.array([0, 1, 2], dtype=np.int64)})
        assert store.column("a").dtype == np.int16

    def test_dtype_grows_with_support(self):
        store = ColumnStore(
            {"a": np.array([0], dtype=np.int64)}, support_sizes={"a": 100_000}
        )
        assert store.column("a").dtype == np.int32


class TestSupportSizes:
    def test_inferred_support(self, tiny_store):
        assert tiny_store.support_size("a") == 4
        assert tiny_store.support_size("b") == 2
        assert tiny_store.support_size("c") == 1

    def test_declared_support_preserved(self):
        store = ColumnStore({"a": np.array([0, 1])}, support_sizes={"a": 10})
        assert store.support_size("a") == 10

    def test_support_sizes_mapping_is_copy(self, tiny_store):
        mapping = tiny_store.support_sizes()
        mapping["a"] = 999
        assert tiny_store.support_size("a") == 4

    def test_max_support_size(self, tiny_store):
        assert tiny_store.max_support_size() == 4

    def test_unknown_attribute_raises(self, tiny_store):
        with pytest.raises(SchemaError, match="unknown"):
            tiny_store.support_size("nope")
        with pytest.raises(SchemaError, match="unknown"):
            tiny_store.column("nope")


class TestDerivedStores:
    def test_select_preserves_order_and_support(self, tiny_store):
        sub = tiny_store.select(["c", "a"])
        assert sub.attributes == ("c", "a")
        assert sub.support_size("a") == 4
        assert sub.num_rows == 8

    def test_select_unknown_raises(self, tiny_store):
        with pytest.raises(SchemaError):
            tiny_store.select(["a", "zzz"])

    def test_select_shares_arrays(self, tiny_store):
        sub = tiny_store.select(["a"])
        assert sub.column("a") is tiny_store.column("a")

    def test_drop(self, tiny_store):
        sub = tiny_store.drop(["b"])
        assert sub.attributes == ("a", "c")

    def test_drop_all_raises(self, tiny_store):
        with pytest.raises(SchemaError, match="empty"):
            tiny_store.drop(["a", "b", "c"])

    def test_drop_unknown_raises(self, tiny_store):
        with pytest.raises(SchemaError):
            tiny_store.drop(["zzz"])

    def test_head_keeps_declared_support(self, tiny_store):
        sub = tiny_store.head(2)
        assert sub.num_rows == 2
        # value 3 does not appear in the first 2 rows, but the domain is kept
        assert sub.support_size("a") == 4

    def test_head_clamps_to_num_rows(self, tiny_store):
        assert tiny_store.head(100).num_rows == 8

    def test_head_zero_raises(self, tiny_store):
        with pytest.raises(SchemaError):
            tiny_store.head(0)

    def test_take_reorders_rows(self, tiny_store):
        sub = tiny_store.take([7, 0])
        assert sub.num_rows == 2
        assert list(sub.column("a")) == [3, 0]

    def test_take_rejects_2d(self, tiny_store):
        with pytest.raises(SchemaError):
            tiny_store.take(np.array([[0, 1]]))

    def test_contains(self, tiny_store):
        assert "a" in tiny_store
        assert "zzz" not in tiny_store


class TestCounting:
    def test_value_counts_full(self, tiny_store):
        counts = tiny_store.value_counts("a")
        assert counts.tolist() == [2, 2, 2, 2]
        assert counts.dtype == np.int64

    def test_value_counts_prefix(self, tiny_store):
        counts = tiny_store.value_counts("a", num_rows=3)
        assert counts.tolist() == [2, 1, 0, 0]

    def test_value_counts_has_declared_length(self):
        store = ColumnStore({"a": np.array([0, 0])}, support_sizes={"a": 5})
        assert store.value_counts("a").shape == (5,)

    def test_memory_bytes_positive(self, tiny_store):
        assert tiny_store.memory_bytes() > 0


class TestTrustedFastPath:
    """Derived stores must skip ``__init__``'s O(cells) re-validation."""

    def test_derived_stores_never_revalidate(self, tiny_store, monkeypatch):
        def boom(self, *args, **kwargs):
            raise AssertionError("derived store re-ran __init__ validation")

        monkeypatch.setattr(ColumnStore, "__init__", boom)
        selected = tiny_store.select(["b", "a"])
        prefix = tiny_store.head(4)
        taken = tiny_store.take(np.array([3, 1, 5]))
        assert selected.attributes == ("b", "a")
        assert prefix.num_rows == 4
        assert taken.num_rows == 3

    def test_fast_path_matches_validated_construction(self, tiny_store):
        names = ["b", "a"]
        derived = tiny_store.select(names).head(5)
        rebuilt = ColumnStore(
            {n: tiny_store.column(n)[:5] for n in names},
            support_sizes={n: tiny_store.support_size(n) for n in names},
        )
        assert derived.attributes == rebuilt.attributes
        assert derived.num_rows == rebuilt.num_rows
        for n in names:
            np.testing.assert_array_equal(derived.column(n), rebuilt.column(n))
            assert derived.support_size(n) == rebuilt.support_size(n)

    def test_derived_columns_stay_read_only(self, tiny_store):
        for derived in (
            tiny_store.select(["a"]),
            tiny_store.head(3),
            tiny_store.take(np.array([0, 2])),
        ):
            with pytest.raises(ValueError):
                derived.column("a")[0] = 9

    def test_take_boolean_mask_row_count(self, tiny_store):
        mask = np.zeros(tiny_store.num_rows, dtype=bool)
        mask[[1, 4]] = True
        taken = tiny_store.take(mask)
        assert taken.num_rows == 2
        assert len(taken) == 2
