"""Unit tests for :mod:`repro.data.joint` (pair counters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.joint import DENSE_LIMIT, JointCounter
from repro.exceptions import ParameterError


class TestConstruction:
    def test_dense_below_limit(self):
        assert JointCounter(10, 10).is_dense

    def test_sparse_above_limit(self):
        counter = JointCounter(10, 10, dense_limit=50)
        assert not counter.is_dense

    def test_default_limit(self):
        assert DENSE_LIMIT == 1_000_000

    def test_invalid_supports_rejected(self):
        with pytest.raises(ParameterError):
            JointCounter(0, 5)
        with pytest.raises(ParameterError):
            JointCounter(5, -1)

    def test_support_product(self):
        assert JointCounter(3, 7).support_product == 21


@pytest.mark.parametrize("dense_limit", [1_000_000, 1])
class TestCounting:
    def test_update_and_count_of(self, dense_limit):
        counter = JointCounter(3, 4, dense_limit=dense_limit)
        counter.update(np.array([0, 0, 1, 2]), np.array([1, 1, 3, 0]))
        assert counter.total == 4
        assert counter.count_of(0, 1) == 2
        assert counter.count_of(1, 3) == 1
        assert counter.count_of(2, 0) == 1
        assert counter.count_of(2, 3) == 0

    def test_incremental_updates_accumulate(self, dense_limit):
        counter = JointCounter(2, 2, dense_limit=dense_limit)
        counter.update(np.array([0]), np.array([1]))
        counter.update(np.array([0, 1]), np.array([1, 1]))
        assert counter.count_of(0, 1) == 2
        assert counter.count_of(1, 1) == 1
        assert counter.total == 3

    def test_nonzero_counts_sum_to_total(self, dense_limit):
        rng = np.random.default_rng(0)
        counter = JointCounter(5, 6, dense_limit=dense_limit)
        counter.update(rng.integers(0, 5, 500), rng.integers(0, 6, 500))
        nonzero = counter.nonzero_counts()
        assert nonzero.sum() == 500
        assert (nonzero > 0).all()

    def test_distinct_pairs(self, dense_limit):
        counter = JointCounter(2, 2, dense_limit=dense_limit)
        counter.update(np.array([0, 0, 1]), np.array([0, 0, 1]))
        assert counter.distinct_pairs() == 2

    def test_empty_update_is_noop(self, dense_limit):
        counter = JointCounter(2, 2, dense_limit=dense_limit)
        counter.update(np.array([], dtype=int), np.array([], dtype=int))
        assert counter.total == 0
        assert counter.nonzero_counts().size == 0


class TestSparseDenseEquivalence:
    def test_same_counts_both_modes(self):
        rng = np.random.default_rng(42)
        a = rng.integers(0, 20, 2000)
        b = rng.integers(0, 30, 2000)
        dense = JointCounter(20, 30)
        sparse = JointCounter(20, 30, dense_limit=1)
        dense.update(a, b)
        sparse.update(a, b)
        assert dense.distinct_pairs() == sparse.distinct_pairs()
        assert np.array_equal(
            np.sort(dense.nonzero_counts()), np.sort(sparse.nonzero_counts())
        )


class TestErrors:
    def test_mismatched_batch_shapes(self):
        counter = JointCounter(2, 2)
        with pytest.raises(ParameterError, match="mismatched"):
            counter.update(np.array([0]), np.array([0, 1]))

    def test_count_of_out_of_range(self):
        counter = JointCounter(2, 2)
        with pytest.raises(ParameterError, match="outside supports"):
            counter.count_of(2, 0)
        with pytest.raises(ParameterError, match="outside supports"):
            counter.count_of(0, -1)
