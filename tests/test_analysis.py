"""Tests for :mod:`repro.analysis` — the SWOPE static-analysis pass.

Three layers:

* per-rule fixtures: each rule fires on a minimal known-bad module and
  stays silent on the matching known-good one;
* framework behaviour: ``# noqa`` suppression, unused-suppression
  reporting (SWP000), ``--select`` interplay, baseline ratcheting,
  reporter output, CLI exit codes;
* the live tree: the repository's own ``src/``, ``tests/`` and
  ``scripts/`` must be violation-free (the CI gate, asserted in-process).
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source
from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.reporting import render_json, render_text
from repro.analysis.rules import RULES, UNUSED_SUPPRESSION, Severity, all_codes

REPO_ROOT = Path(__file__).resolve().parent.parent

CORE = "src/repro/core/example.py"
BASELINES = "src/repro/baselines/example.py"
ENGINE = "src/repro/core/engine.py"


def codes(report) -> list[str]:
    return [v.rule for v in report.violations]


def check(path: str, text: str, **kwargs):
    return analyze_source(path, text, **kwargs)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_eighteen_rules_registered(self):
        assert all_codes() == [f"SWP{i:03d}" for i in range(1, 19)]

    def test_project_rules_are_marked(self):
        project_codes = {c for c, r in RULES.items() if r.project}
        assert project_codes == {"SWP013", "SWP014", "SWP015", "SWP016"}

    def test_unused_suppression_code_reserved(self):
        assert UNUSED_SUPPRESSION == "SWP000"
        assert UNUSED_SUPPRESSION not in RULES

    def test_every_rule_has_summary_and_scope(self):
        for rule in RULES.values():
            assert rule.summary
            assert rule.scope


# ----------------------------------------------------------------------
# SWP001 — base-2 logs in repro.core
# ----------------------------------------------------------------------
class TestSWP001:
    def test_math_log_fires_in_core(self):
        report = check(CORE, "import math\n\ndef f(p):\n    return math.log(p)\n")
        assert codes(report) == ["SWP001"]

    def test_np_log_fires_in_core(self):
        report = check(CORE, "import numpy as np\n\ndef f(p):\n    return np.log(p)\n")
        assert codes(report) == ["SWP001"]

    def test_log2_is_clean(self):
        text = "import math\nimport numpy as np\n\ndef f(p):\n    return math.log2(p) + np.log2(p)\n"
        assert codes(check(CORE, text)) == []

    def test_ln2_unit_constant_allowed(self):
        assert codes(check(CORE, "import math\nLN2 = math.log(2.0)\n")) == []

    def test_explicit_base_two_allowed(self):
        assert codes(check(CORE, "import math\n\ndef f(p):\n    return math.log(p, 2)\n")) == []

    def test_out_of_scope_module_is_clean(self):
        report = check("src/repro/synth/example.py", "import math\n\ndef f(p):\n    return math.log(p)\n")
        assert codes(report) == []


# ----------------------------------------------------------------------
# SWP002 — seeded RNG
# ----------------------------------------------------------------------
class TestSWP002:
    def test_legacy_np_random_fires(self):
        report = check(CORE, "import numpy as np\nnp.random.seed(0)\nx = np.random.rand(3)\n")
        assert codes(report) == ["SWP002", "SWP002"]

    def test_unseeded_default_rng_fires(self):
        report = check(CORE, "import numpy as np\nrng = np.random.default_rng()\n")
        assert codes(report) == ["SWP002"]

    def test_explicit_none_seed_fires(self):
        report = check(CORE, "import numpy as np\nrng = np.random.default_rng(None)\n")
        assert codes(report) == ["SWP002"]

    def test_seeded_default_rng_clean(self):
        assert codes(check(CORE, "import numpy as np\nrng = np.random.default_rng(17)\n")) == []

    def test_stdlib_random_fires(self):
        assert codes(check(CORE, "import random\nx = random.random()\n")) == ["SWP002"]

    def test_from_random_import_fires(self):
        assert codes(check(CORE, "from random import shuffle\n")) == ["SWP002"]

    def test_generator_constructors_allowed(self):
        text = "import numpy as np\nrng = np.random.Generator(np.random.PCG64(5))\n"
        assert codes(check(CORE, text)) == []

    def test_repro_testing_is_exempt(self):
        report = check("src/repro/testing/example.py", "import random\nx = random.random()\n")
        assert codes(report) == []


# ----------------------------------------------------------------------
# SWP003 — budget-checked adaptive loops
# ----------------------------------------------------------------------
_UNCHECKED_LOOP = """\
def run(schedule):
    for index, size in enumerate(schedule.sizes):
        work(size)
"""

_CHECKED_LOOP = """\
def run(schedule, budget, cancellation):
    for index, size in enumerate(schedule.sizes):
        work(size)
        reason = check_interruption(
            budget, cancellation,
            elapsed_seconds=0.0, cells_used=0, next_sample_size=size,
        )
        if reason is not None:
            break
"""


class TestSWP003:
    def test_unchecked_adaptive_loop_fires_in_baselines(self):
        assert codes(check(BASELINES, _UNCHECKED_LOOP)) == ["SWP003"]

    def test_unchecked_adaptive_loop_fires_in_engine(self):
        assert codes(check(ENGINE, _UNCHECKED_LOOP)) == ["SWP003"]

    def test_checked_loop_is_clean(self):
        assert codes(check(BASELINES, _CHECKED_LOOP)) == []

    def test_method_style_checkpoint_counts(self):
        text = (
            "def run(schedule, ctx):\n"
            "    for size in schedule.sizes:\n"
            "        if ctx.interruption(size) is not None:\n"
            "            break\n"
        )
        assert codes(check(BASELINES, text)) == []

    def test_while_loop_computing_intervals_fires(self):
        text = (
            "def run(provider, names):\n"
            "    while True:\n"
            "        ivs = [provider.interval(a, 8) for a in names]\n"
            "        break\n"
        )
        assert codes(check(BASELINES, text)) == ["SWP003"]

    def test_non_adaptive_loop_is_clean(self):
        assert codes(check(BASELINES, "def f(xs):\n    for x in xs:\n        print(x)\n")) == []

    def test_out_of_scope_module_is_clean(self):
        assert codes(check("src/repro/core/schedule.py", _UNCHECKED_LOOP)) == []


# ----------------------------------------------------------------------
# SWP004 — no float equality on scores
# ----------------------------------------------------------------------
class TestSWP004:
    def test_interval_attribute_equality_fires(self):
        text = "def f(iv):\n    return iv.estimate == 1.0\n"
        assert codes(check(CORE, text)) == ["SWP004"]

    def test_entropy_name_equality_fires(self):
        text = "def f(max_entropy):\n    return max_entropy != 0.0\n"
        assert codes(check(CORE, text)) == ["SWP004"]

    def test_ordering_comparison_is_clean(self):
        text = "def f(iv, max_entropy):\n    return iv.lower <= 1.0 and max_entropy <= 0.0\n"
        assert codes(check(CORE, text)) == []

    def test_plain_name_equality_is_clean(self):
        assert codes(check(CORE, "def f(count):\n    return count == 3\n")) == []


# ----------------------------------------------------------------------
# SWP005 — validate, don't assert
# ----------------------------------------------------------------------
class TestSWP005:
    def test_parameter_assert_fires_as_warning(self):
        report = check(CORE, "def query(k):\n    assert k > 0\n    return k\n")
        assert codes(report) == ["SWP005"]
        assert report.violations[0].severity is Severity.WARNING

    def test_narrowing_assert_allowed(self):
        text = "def query(sampler):\n    assert sampler is not None\n    return sampler\n"
        assert codes(check(CORE, text)) == []

    def test_local_invariant_assert_allowed(self):
        text = "def query(k):\n    total = k + 1\n    assert total\n    return total\n"
        assert codes(check(CORE, text)) == []

    def test_private_function_exempt(self):
        assert codes(check(CORE, "def _helper(k):\n    assert k > 0\n")) == []


# ----------------------------------------------------------------------
# SWP006 — __all__ hygiene
# ----------------------------------------------------------------------
class TestSWP006:
    def test_unlisted_public_def_fires(self):
        text = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef g():\n    pass\n'
        report = check(CORE, text)
        assert codes(report) == ["SWP006"]
        assert "'g'" in report.violations[0].message

    def test_phantom_export_fires(self):
        report = check(CORE, '__all__ = ["ghost"]\n')
        assert codes(report) == ["SWP006"]

    def test_matching_all_is_clean(self):
        text = '__all__ = ["f"]\n\ndef f():\n    pass\n\ndef _private():\n    pass\n'
        assert codes(check(CORE, text)) == []

    def test_module_without_all_is_out_of_scope(self):
        assert codes(check(CORE, "def f():\n    pass\n")) == []

    def test_constants_not_forced_into_all(self):
        assert codes(check(CORE, '__all__ = ["f"]\n\nLIMIT = 3\n\ndef f():\n    pass\n')) == []


# ----------------------------------------------------------------------
# SWP007 — repro exceptions only
# ----------------------------------------------------------------------
class TestSWP007:
    def test_builtin_raise_fires(self):
        report = check(CORE, 'def f(x):\n    raise ValueError("bad")\n')
        assert codes(report) == ["SWP007"]

    def test_repro_exception_is_clean(self):
        text = (
            "from repro.exceptions import ParameterError\n\n"
            'def f(x):\n    raise ParameterError("bad")\n'
        )
        assert codes(check(CORE, text)) == []

    def test_not_implemented_allowed(self):
        assert codes(check(CORE, "def f(x):\n    raise NotImplementedError\n")) == []

    def test_bare_reraise_allowed(self):
        text = "def f(x):\n    try:\n        g(x)\n    except Exception:\n        raise\n"
        assert codes(check(CORE, text)) == []

    def test_repro_testing_exempt(self):
        report = check("src/repro/testing/example.py", 'def f():\n    raise OSError("boom")\n')
        assert codes(report) == []


# ----------------------------------------------------------------------
# SWP008 — monotonic timing
# ----------------------------------------------------------------------
class TestSWP008:
    def test_time_time_fires_everywhere(self):
        for path in (CORE, "scripts/example.py", "tests/example.py"):
            report = check(path, "import time\nstart = time.time()\n")
            assert codes(report) == ["SWP008"], path

    def test_perf_counter_is_clean(self):
        assert codes(check(CORE, "import time\nstart = time.perf_counter()\n")) == []


# ----------------------------------------------------------------------
# SWP009 — counting stays behind the CountingBackend seam
# ----------------------------------------------------------------------
class TestSWP009:
    def test_bincount_fires_outside_repro_data(self):
        text = "import numpy as np\n\ndef f(col):\n    return np.bincount(col)\n"
        assert codes(check(CORE, text)) == ["SWP009"]

    def test_bincount_respects_numpy_alias(self):
        text = "import numpy\n\ndef f(col):\n    return numpy.bincount(col)\n"
        assert codes(check(CORE, text)) == ["SWP009"]

    def test_joint_counter_construction_fires(self):
        text = (
            "from repro.data.joint import JointCounter\n\n"
            "def f(u1, u2):\n    return JointCounter(u1, u2)\n"
        )
        assert codes(check(BASELINES, text)) == ["SWP009"]

    def test_repro_data_is_exempt(self):
        text = "import numpy as np\n\ndef f(col):\n    return np.bincount(col)\n"
        assert codes(check("src/repro/data/example.py", text)) == []

    def test_tests_and_scripts_out_of_scope(self):
        text = "import numpy as np\n\ndef f(col):\n    return np.bincount(col)\n"
        for path in ("tests/example.py", "scripts/example.py"):
            assert codes(check(path, text)) == [], path

    def test_noqa_with_justification_suppresses(self):
        text = (
            "import numpy as np\n\ndef f(col):\n"
            "    # derived values, not a sample prefix\n"
            "    return np.bincount(col)  # noqa: SWP009\n"
        )
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP009"]


# ----------------------------------------------------------------------
# SWP010 — no direct stdout/stderr output in repro.core
# ----------------------------------------------------------------------
class TestSWP010:
    def test_print_fires_in_repro_core(self):
        text = "def f(x):\n    print(x)\n    return x\n"
        assert codes(check(CORE, text)) == ["SWP010"]

    def test_sys_stdout_write_fires(self):
        text = "import sys\n\ndef f(x):\n    sys.stdout.write(str(x))\n"
        assert codes(check(CORE, text)) == ["SWP010"]

    def test_sys_stderr_writelines_fires(self):
        text = "import sys\n\ndef f(lines):\n    sys.stderr.writelines(lines)\n"
        assert codes(check(CORE, text)) == ["SWP010"]

    def test_respects_sys_alias(self):
        text = "import sys as system\n\ndef f(x):\n    system.stdout.write(x)\n"
        assert codes(check(CORE, text)) == ["SWP010"]

    def test_cli_and_tests_out_of_scope(self):
        text = "def f(x):\n    print(x)\n"
        for path in (
            "src/repro/cli.py",
            "src/repro/experiments/report.py",
            "tests/example.py",
            "scripts/example.py",
        ):
            assert codes(check(path, text)) == [], path

    def test_other_sys_calls_allowed(self):
        text = "import sys\n\ndef f():\n    return sys.exit(0)\n"
        assert codes(check(CORE, text)) == []

    def test_local_print_shadow_still_fires(self):
        # The rule is syntactic by design: a local function named
        # ``print`` in the engine is exactly as suspicious.
        text = "def f(x, print):\n    print(x)\n"
        assert codes(check(CORE, text)) == ["SWP010"]

    def test_noqa_suppresses(self):
        text = "def f(x):\n    print(x)  # noqa: SWP010\n"
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP010"]


# ----------------------------------------------------------------------
# SWP011 — adaptive loops stay behind the planner
# ----------------------------------------------------------------------
class TestSWP011:
    def test_direct_top_k_loop_fires_in_baselines(self):
        text = (
            "from repro.core.engine import adaptive_top_k\n\n"
            "def f(provider, sampler, names, schedule):\n"
            "    return adaptive_top_k(provider, sampler, names, 3, 0.1, schedule)\n"
        )
        assert codes(check(BASELINES, text)) == ["SWP011"]

    def test_direct_filter_loop_fires_in_core(self):
        text = (
            "from repro.core import engine\n\n"
            "def f(provider, sampler, names, schedule):\n"
            "    return engine.adaptive_filter(\n"
            "        provider, sampler, names, 2.0, 0.05, schedule\n"
            "    )\n"
        )
        assert codes(check(CORE, text)) == ["SWP011"]

    def test_engine_and_plan_are_exempt(self):
        text = (
            "def adaptive_top_k(*args):\n    return args\n\n"
            "def f(x):\n    return adaptive_top_k(x)\n"
        )
        for path in (ENGINE, "src/repro/core/plan.py"):
            assert codes(check(path, text)) == [], path

    def test_tests_and_benchmarks_out_of_scope(self):
        text = (
            "from repro.core.engine import adaptive_filter\n\n"
            "def f(provider, sampler, names, schedule):\n"
            "    return adaptive_filter(provider, sampler, names, 2.0, 0.05, schedule)\n"
        )
        for path in ("tests/example.py", "benchmarks/example.py"):
            assert codes(check(path, text)) == [], path

    def test_unrelated_call_names_are_clean(self):
        text = (
            "from repro.core.plan import run_query_spec\n\n"
            "def f(store, spec):\n    return run_query_spec(store, spec)\n"
        )
        assert codes(check(CORE, text)) == []

    def test_noqa_with_justification_suppresses(self):
        text = (
            "from repro.core.engine import adaptive_top_k\n\n"
            "def f(provider, sampler, names, schedule):\n"
            "    # ablation harness: deliberately bypasses plan accounting\n"
            "    return adaptive_top_k(provider, sampler, names, 3, 0.1, schedule)  # noqa: SWP011\n"
        )
        report = check(BASELINES, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP011"]


class TestSWP012:
    def test_path_write_text_fires(self):
        text = (
            "from pathlib import Path\n\n"
            "def f(path, payload):\n"
            "    Path(path).write_text(payload)\n"
        )
        assert codes(check(CORE, text)) == ["SWP012"]

    def test_write_bytes_fires(self):
        text = "def f(path, blob):\n    path.write_bytes(blob)\n"
        assert codes(check(CORE, text)) == ["SWP012"]

    def test_builtin_open_write_mode_fires(self):
        for mode in ("w", "wb", "a", "x"):
            text = f'def f(path):\n    return open(path, "{mode}")\n'
            assert codes(check(CORE, text)) == ["SWP012"], mode

    def test_open_mode_keyword_fires(self):
        text = 'def f(path):\n    return open(path, mode="w")\n'
        assert codes(check(CORE, text)) == ["SWP012"]

    def test_path_open_write_mode_fires(self):
        text = 'def f(path):\n    return path.open("w")\n'
        assert codes(check(CORE, text)) == ["SWP012"]

    def test_reads_are_clean(self):
        text = (
            "def f(path):\n"
            "    with open(path) as fh:\n"
            "        a = fh.read()\n"
            '    b = path.read_text(encoding="utf-8")\n'
            '    c = open(path, "rb").read()\n'
            "    return a, b, c\n"
        )
        assert codes(check(CORE, text)) == []

    def test_dynamic_mode_is_clean(self):
        # A non-constant mode cannot be judged syntactically; the rule
        # stays silent rather than guessing.
        text = "def f(path, mode):\n    return open(path, mode)\n"
        assert codes(check(CORE, text)) == []

    def test_durability_and_testing_are_exempt(self):
        text = "def f(path, payload):\n    path.write_text(payload)\n"
        for path in (
            "src/repro/durability/atomic.py",
            "src/repro/testing/chaos.py",
        ):
            assert codes(check(path, text)) == [], path

    def test_tests_and_scripts_out_of_scope(self):
        text = "def f(path, payload):\n    path.write_text(payload)\n"
        for path in ("tests/example.py", "scripts/example.py"):
            assert codes(check(path, text)) == [], path

    def test_noqa_with_justification_suppresses(self):
        text = (
            "def f(path, payload):\n"
            "    # scratch file consumed in-process; durability not needed\n"
            "    path.write_text(payload)  # noqa: SWP012\n"
        )
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP012"]


# ----------------------------------------------------------------------
# SWP017 — cache access names the dataset fingerprint
# ----------------------------------------------------------------------
class TestSWP017:
    def test_direct_cache_partition_construction_fires(self):
        text = (
            "from repro.cache import CachePartition\n\n"
            "def f(fp, sh):\n"
            '    return CachePartition(fingerprint=fp, shuffle=sh)\n'
        )
        assert codes(check(CORE, text)) == ["SWP017"]

    def test_partition_missing_fingerprint_fires(self):
        text = "def f(cache, sh):\n    return cache.partition(shuffle=sh)\n"
        assert codes(check(CORE, text)) == ["SWP017"]

    def test_partition_missing_shuffle_fires(self):
        text = "def f(cache, fp):\n    return cache.partition(fingerprint=fp)\n"
        assert codes(check(CORE, text)) == ["SWP017"]

    def test_partition_no_arguments_fires(self):
        text = "def f(cache):\n    return cache.partition()\n"
        assert codes(check(CORE, text)) == ["SWP017"]

    def test_partition_positional_keys_fire(self):
        # Keys passed positionally hide which is which — the signature is
        # keyword-only precisely so call sites must spell them.
        text = "def f(cache, fp, sh):\n    return cache.partition(fp, sh)\n"
        assert codes(check(CORE, text)) == ["SWP017"]

    def test_both_keywords_are_clean(self):
        text = (
            "def f(cache, fp, sh):\n"
            "    return cache.partition(fingerprint=fp, shuffle=sh)\n"
        )
        assert codes(check(CORE, text)) == []

    def test_str_partition_is_clean(self):
        text = 'def f(line):\n    return line.partition("=")\n'
        assert codes(check(CORE, text)) == []

    def test_cache_package_is_exempt(self):
        text = (
            "def f(fp, sh):\n"
            "    return CachePartition(fingerprint=fp, shuffle=sh)\n"
        )
        assert codes(check("src/repro/cache/store.py", text)) == []

    def test_tests_out_of_scope(self):
        text = "def f(cache):\n    return cache.partition()\n"
        assert codes(check("tests/example.py", text)) == []

    def test_noqa_with_justification_suppresses(self):
        text = (
            "def f(table, key):\n"
            "    # external hash-ring API, not the plan cache\n"
            "    return table.partition(key=key)  # noqa: SWP017\n"
        )
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP017"]


# ----------------------------------------------------------------------
# SWP018 — no whole-column materialisation outside the storage layer
# ----------------------------------------------------------------------
class TestSWP018:
    def test_whole_column_read_fires_in_core(self):
        text = "def f(store, name):\n    return store.column(name)\n"
        assert codes(check(CORE, text)) == ["SWP018"]

    def test_chained_attribute_read_fires(self):
        text = "def f(self, name):\n    return self._store.column(name)\n"
        assert codes(check(CORE, text)) == ["SWP018"]

    def test_column_block_is_clean(self):
        text = (
            "def f(store, name, rows):\n"
            "    return store.column_block(name, rows)\n"
        )
        assert codes(check(CORE, text)) == []

    def test_data_package_is_exempt(self):
        text = "def f(store, name):\n    return store.column(name)\n"
        assert codes(check("src/repro/data/example.py", text)) == []

    def test_baselines_package_is_exempt(self):
        text = "def f(store, name):\n    return store.column(name)\n"
        assert codes(check(BASELINES, text)) == []

    def test_tests_out_of_scope(self):
        text = "def f(store, name):\n    return store.column(name)\n"
        assert codes(check("tests/example.py", text)) == []

    def test_noqa_with_justification_suppresses(self):
        text = (
            "def f(store, name):\n"
            "    # deliberate full scan: exact baseline comparison\n"
            "    return store.column(name)  # noqa: SWP018\n"
        )
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP018"]


# ----------------------------------------------------------------------
# noqa suppression + SWP000
# ----------------------------------------------------------------------
class TestSuppression:
    def test_noqa_suppresses_and_is_counted(self):
        text = "import math\n\ndef f(p):\n    return math.log(p)  # noqa: SWP001\n"
        report = check(CORE, text)
        assert codes(report) == []
        assert [v.rule for v in report.suppressed] == ["SWP001"]

    def test_noqa_is_per_code(self):
        text = "import math\n\ndef f(p):\n    return math.log(p)  # noqa: SWP008\n"
        report = check(CORE, text)
        # SWP001 still fires; the SWP008 noqa is itself stale.
        assert sorted(codes(report)) == ["SWP000", "SWP001"]

    def test_unused_suppression_reported(self):
        report = check(CORE, "x = 1  # noqa: SWP001\n")
        assert codes(report) == ["SWP000"]
        assert report.violations[0].severity is Severity.WARNING

    def test_unused_reporting_can_be_disabled(self):
        report = check(CORE, "x = 1  # noqa: SWP001\n", report_unused=False)
        assert codes(report) == []

    def test_select_does_not_stale_other_rules_noqa(self):
        # Narrowing to SWP002 must not judge an SWP001 suppression stale.
        report = check(CORE, "x = 1  # noqa: SWP001\n", select=["SWP002"])
        assert codes(report) == []

    def test_unknown_rule_suppression_reported(self):
        # A code that no rule registers — a typo or a deleted rule —
        # is SWP000 even though it can never fire.
        report = check(CORE, "x = 1  # noqa: SWP999\n")
        assert codes(report) == ["SWP000"]
        assert "unknown rule SWP999" in report.violations[0].message

    def test_unknown_rule_suppression_survives_select(self):
        # Unlike staleness, unknown-ness is judgeable under any --select:
        # no narrowing can make a nonexistent rule fire.
        report = check(CORE, "x = 1  # noqa: SWP999\n", select=["SWP002"])
        assert codes(report) == ["SWP000"]

    def test_unknown_rule_reporting_can_be_disabled(self):
        report = check(CORE, "x = 1  # noqa: SWP999\n", report_unused=False)
        assert codes(report) == []

    def test_noqa_text_inside_string_is_not_a_suppression(self):
        text = 'import math\nNOTE = "use # noqa: SWP001 sparingly"\n\ndef f(p):\n    return math.log(p)\n'
        report = check(CORE, text)
        assert codes(report) == ["SWP001"]

    def test_multiple_codes_in_one_noqa(self):
        text = (
            "import math\nimport time\n\n"
            "def f(p):\n"
            "    return math.log(p) + time.time()  # noqa: SWP001, SWP008\n"
        )
        report = check(CORE, text)
        assert codes(report) == []
        assert sorted(v.rule for v in report.suppressed) == ["SWP001", "SWP008"]


# ----------------------------------------------------------------------
# select / ignore
# ----------------------------------------------------------------------
class TestSelection:
    BOTH = "import math\nimport time\n\ndef f(p):\n    return math.log(p) + time.time()\n"

    def test_select_narrows(self):
        assert codes(check(CORE, self.BOTH, select=["SWP008"])) == ["SWP008"]

    def test_ignore_drops(self):
        assert codes(check(CORE, self.BOTH, ignore=["SWP001"])) == ["SWP008"]

    def test_unknown_code_is_an_error(self):
        from repro.exceptions import AnalysisError

        with pytest.raises(AnalysisError):
            check(CORE, "x = 1\n", select=["SWP999"])

    def test_syntax_error_becomes_parse_error(self):
        report = check(CORE, "def f(:\n")
        assert report.violations == []
        assert len(report.parse_errors) == 1
        assert report.has_errors()


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def test_text_reporter_lines(self):
        report = check(CORE, "import time\nstart = time.time()\n")
        text = render_text(report, baselined=[])
        assert "SWP008" in text
        assert f"{CORE}:2:" in text

    def test_json_reporter_shape(self):
        report = check(CORE, "import time\nstart = time.time()\n")
        payload = json.loads(render_json(report, baselined=[]))
        assert payload["checked_files"] == 1
        assert payload["counts"] == {"SWP008": 1}
        (violation,) = payload["violations"]
        assert violation["rule"] == "SWP008"
        assert violation["path"] == CORE
        assert violation["line"] == 2
        assert violation["severity"] == "error"

    def test_clean_report_text(self):
        report = check(CORE, "x = 1\n")
        assert "no violations" in render_text(report, baselined=[])


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
class TestBaseline:
    def test_round_trip(self, tmp_path):
        report = check(CORE, "import time\nstart = time.time()\n")
        baseline = Baseline.from_violations(report.violations)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(baseline) == 1
        new, baselined = loaded.filter(report.violations)
        assert new == []
        assert len(baselined) == 1

    def test_fingerprint_survives_line_drift(self, tmp_path):
        report = check(CORE, "import time\nstart = time.time()\n")
        path = tmp_path / "baseline.json"
        Baseline.from_violations(report.violations).save(path)
        # Same offending source line, shifted two lines down.
        drifted = check(CORE, "import time\n\n\nstart = time.time()\n")
        new, baselined = Baseline.load(path).filter(drifted.violations)
        assert new == []
        assert len(baselined) == 1

    def test_count_semantics(self):
        two = check(CORE, "import time\na = time.time()\nb = time.time()\n")
        one = Baseline.from_violations(two.violations[:1])
        # Identical lines share a fingerprint; the baseline absorbs as
        # many occurrences as it recorded, no more.
        new, baselined = one.filter(two.violations)
        assert len(baselined) == 1 or len(new) == 1
        assert len(new) + len(baselined) == 2

    def test_malformed_baseline_is_an_error(self, tmp_path):
        from repro.exceptions import AnalysisError

        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def lint_tree(tmp_path, monkeypatch):
    """A tiny fake repo with one violation, cwd-pinned for the CLI."""
    pkg = tmp_path / "code"
    pkg.mkdir()
    (pkg / "clean.py").write_text("import time\nstart = time.perf_counter()\n")
    (pkg / "dirty.py").write_text("import time\nstart = time.time()\n")
    monkeypatch.chdir(tmp_path)
    return pkg


class TestCLI:
    def test_violations_exit_one(self, lint_tree, capsys):
        assert main(["code"]) == 1
        assert "SWP008" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, lint_tree, capsys):
        (lint_tree / "dirty.py").unlink()
        assert main(["code"]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_select_bypasses(self, lint_tree, capsys):
        assert main(["code", "--select", "SWP001"]) == 0
        capsys.readouterr()

    def test_json_format(self, lint_tree, capsys):
        assert main(["code", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"SWP008": 1}

    def test_missing_path_exits_two(self, lint_tree, capsys):
        assert main(["no/such/dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, lint_tree, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in all_codes():
            assert code in out

    def test_warning_only_exit_policy(self, lint_tree, capsys):
        (lint_tree / "dirty.py").write_text("x = 1  # noqa: SWP001\n")
        assert main(["code"]) == 0  # SWP000 is a warning
        assert main(["code", "--fail-on-warning"]) == 1
        assert main(["code", "--no-unused-suppressions"]) == 0
        capsys.readouterr()

    def test_baseline_ratchet_round_trip(self, lint_tree, capsys):
        baseline = "baseline.json"
        # Record the current debt, then the same tree passes.
        assert main(["code", "--baseline", baseline, "--update-baseline"]) == 0
        assert main(["code", "--baseline", baseline]) == 0
        # A new violation is NOT absorbed by the baseline...
        (lint_tree / "worse.py").write_text("import time\nt0 = time.time()\n")
        assert main(["code", "--baseline", baseline]) == 1
        # ...and the ratchet refuses to swallow it.
        assert main(["code", "--baseline", baseline, "--update-baseline"]) == 2
        assert "refusing to grow" in capsys.readouterr().err
        # Fixing everything lets the baseline shrink to empty.
        (lint_tree / "worse.py").unlink()
        (lint_tree / "dirty.py").write_text("import time\nt0 = time.perf_counter()\n")
        assert main(["code", "--baseline", baseline, "--update-baseline"]) == 0
        assert json.loads(Path(baseline).read_text())["fingerprints"] == {}

    def test_update_baseline_requires_baseline(self, lint_tree, capsys):
        assert main(["code", "--update-baseline"]) == 2
        capsys.readouterr()


# ----------------------------------------------------------------------
# The live tree (the CI gate, in-process)
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_repository_is_violation_free(self):
        report = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "scripts"],
            display_root=REPO_ROOT,
        )
        findings = "\n".join(v.format_text() for v in report.violations)
        assert not report.violations, f"static-analysis violations:\n{findings}"
        assert not report.parse_errors
        assert report.checked_files > 50

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "--select", "SWP008"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# Strict typing sweep (runs only where mypy is installed, e.g. CI)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None, reason="mypy not installed"
)
def test_strict_typing_sweep():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "setup.cfg"),
            "-p",
            "repro",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
