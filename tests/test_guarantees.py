"""Statistical guarantee tests: the paper's theorems, checked empirically.

These are the heavyweight tests of the suite (moderate dataset sizes, many
repetitions). Each one validates a theorem's *contract* rather than a
point answer:

* Theorem 1/5 — SWOPE top-k answers satisfy Definition 5 across seeds;
* Theorem 3/6 — SWOPE filtering answers satisfy Definition 6 across seeds;
* Theorem 2/4 — the stopping sample size is within a small factor of the
  Lemma 4 prediction, and shrinks as ε or η grows;
* EntropyRank/Filter (the [32] baselines) return exact answers across
  seeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.entropy_filter import entropy_filter
from repro.baselines.entropy_rank import entropy_rank_top_k
from repro.baselines.exact import exact_entropies, exact_mutual_informations
from repro.core.bounds import sample_size_for_width
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.topk import swope_top_k_entropy
from repro.experiments.accuracy import (
    check_filter_guarantee,
    check_top_k_guarantee,
)

N = 20_000
SEEDS = range(8)


@pytest.fixture(scope="module")
def store():
    """A 10-column store with a mix of gaps, ties, and near-thresholds."""
    rng = np.random.default_rng(99)
    columns = {
        "u500_a": rng.integers(0, 500, N),
        "u500_b": rng.integers(0, 500, N),  # near-tie with u500_a
        "u64": rng.integers(0, 64, N),
        "u16": rng.integers(0, 16, N),
        "u8": rng.integers(0, 8, N),
        "u4": rng.integers(0, 4, N),  # entropy ~2.0 (threshold anchor)
        "skew": (rng.random(N) < 0.1).astype(np.int64),
        "const": np.zeros(N, dtype=np.int64),
    }
    base = rng.integers(0, 32, N)
    keep = rng.random(N) < 0.8
    columns["mi_target"] = base
    columns["mi_member"] = np.where(keep, base, rng.integers(0, 32, N))
    from repro.data.column_store import ColumnStore

    return ColumnStore(columns)


class TestTheorem1TopKGuarantee:
    @pytest.mark.parametrize("k", [1, 2, 4])
    @pytest.mark.parametrize("epsilon", [0.1, 0.3])
    def test_definition5_across_seeds(self, store, k, epsilon):
        exact = exact_entropies(store)
        for seed in SEEDS:
            result = swope_top_k_entropy(store, k, epsilon=epsilon, seed=seed)
            violations = check_top_k_guarantee(result, exact, epsilon)
            assert violations == [], f"seed={seed}: {violations}"


class TestTheorem3FilterGuarantee:
    @pytest.mark.parametrize("threshold", [0.5, 2.0, 5.0])
    @pytest.mark.parametrize("epsilon", [0.05, 0.3])
    def test_definition6_across_seeds(self, store, threshold, epsilon):
        exact = exact_entropies(store)
        for seed in SEEDS:
            result = swope_filter_entropy(
                store, threshold, epsilon=epsilon, seed=seed
            )
            violations = check_filter_guarantee(result, exact, epsilon)
            assert violations == [], f"seed={seed}: {violations}"


class TestTheorem5MIGuarantees:
    def test_mi_topk_definition5(self, store):
        exact = exact_mutual_informations(store, "mi_target")
        epsilon = 0.5
        for seed in SEEDS:
            result = swope_top_k_mutual_information(
                store, "mi_target", 1, epsilon=epsilon, seed=seed
            )
            violations = check_top_k_guarantee(result, exact, epsilon)
            assert violations == [], f"seed={seed}: {violations}"

    def test_mi_filter_definition6(self, store):
        exact = exact_mutual_informations(store, "mi_target")
        epsilon = 0.5
        for threshold in (0.5, 2.0):
            for seed in SEEDS:
                result = swope_filter_mutual_information(
                    store, "mi_target", threshold, epsilon=epsilon, seed=seed
                )
                violations = check_filter_guarantee(result, exact, epsilon)
                assert violations == [], f"seed={seed}: {violations}"


class TestTheorem2SampleComplexity:
    def test_stop_within_factor_two_of_lemma4(self, store):
        """Algorithm 1 doubles M, so it stops at most one doubling past
        the Lemma 4 sufficient size for width ε·H(α*_k)."""
        epsilon = 0.2
        exact = exact_entropies(store)
        h_k = sorted(exact.values(), reverse=True)[0]  # k = 1
        result = swope_top_k_entropy(store, 1, epsilon=epsilon, seed=0)
        u_max = max(store.support_size(a) for a in store.attributes)
        m_star = sample_size_for_width(
            epsilon * h_k, u_max, store.num_rows, 1e-6
        )
        assert result.stats.final_sample_size <= min(store.num_rows, 2 * m_star)

    def test_cost_decreases_with_epsilon(self, store):
        sizes = [
            swope_top_k_entropy(store, 2, epsilon=e, seed=1).stats.final_sample_size
            for e in (0.05, 0.1, 0.3, 0.6)
        ]
        assert sizes == sorted(sizes, reverse=True)

    def test_filter_cost_decreases_with_epsilon(self, store):
        cells = [
            swope_filter_entropy(store, 2.0, epsilon=e, seed=1).stats.cells_scanned
            for e in (0.05, 0.2, 0.6)
        ]
        assert cells == sorted(cells, reverse=True)

    def test_filter_cost_decreases_with_threshold(self, store):
        # Theorem 4: cost ~ 1/eta^2 (given the same decisions structure).
        low = swope_filter_entropy(store, 0.5, epsilon=0.1, seed=1)
        high = swope_filter_entropy(store, 6.0, epsilon=0.1, seed=1)
        assert high.stats.cells_scanned <= low.stats.cells_scanned


class TestBaselineExactness:
    def test_entropy_rank_always_exact(self, store):
        exact = exact_entropies(store)
        ranking = sorted(exact, key=lambda a: -exact[a])
        for seed in SEEDS:
            result = entropy_rank_top_k(store, 3, seed=seed)
            assert set(result.attributes) == set(ranking[:3]), f"seed={seed}"

    def test_entropy_filter_always_exact(self, store):
        exact = exact_entropies(store)
        for threshold in (1.0, 3.0):
            expected = {a for a, s in exact.items() if s >= threshold}
            for seed in SEEDS:
                result = entropy_filter(store, threshold, seed=seed)
                assert result.answer_set() == expected, f"seed={seed}"


class TestCostOrdering:
    def test_swope_never_costlier_than_exact_scan(self, store):
        exact_cells = store.num_attributes * store.num_rows
        result = swope_top_k_entropy(store, 2, epsilon=0.2, seed=0)
        assert result.stats.cells_scanned <= exact_cells * 1.01

    def test_swope_cheaper_than_entropy_rank_on_near_ties(self, store):
        # u500_a vs u500_b is a near-tie: the exact rule must resolve it,
        # the approximate rule must not.
        swope = swope_top_k_entropy(store, 1, epsilon=0.2, seed=0)
        rank = entropy_rank_top_k(store, 1, seed=0)
        assert swope.stats.cells_scanned < rank.stats.cells_scanned
