"""Tests for :mod:`repro.synth.distributions`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.estimators import entropy_from_probabilities
from repro.exceptions import ParameterError
from repro.synth.distributions import (
    geometric_probabilities,
    head_mixture_probabilities,
    probabilities_with_entropy,
    sample_categorical,
    uniform_probabilities,
    zipf_probabilities,
)


class TestFamilies:
    def test_uniform(self):
        p = uniform_probabilities(8)
        assert p.sum() == pytest.approx(1.0)
        assert entropy_from_probabilities(p) == pytest.approx(3.0)

    def test_zipf_zero_exponent_is_uniform(self):
        assert np.allclose(zipf_probabilities(10, 0.0), uniform_probabilities(10))

    def test_zipf_entropy_decreases_with_exponent(self):
        entropies = [
            entropy_from_probabilities(zipf_probabilities(64, s))
            for s in (0.0, 0.5, 1.0, 2.0)
        ]
        assert entropies == sorted(entropies, reverse=True)

    def test_zipf_negative_exponent_rejected(self):
        with pytest.raises(ParameterError):
            zipf_probabilities(10, -1.0)

    def test_geometric_normalised(self):
        p = geometric_probabilities(20, 0.5)
        assert p.sum() == pytest.approx(1.0)
        assert (p[:-1] >= p[1:]).all()

    def test_geometric_ratio_one_is_uniform(self):
        assert np.allclose(geometric_probabilities(5, 1.0), uniform_probabilities(5))

    def test_geometric_invalid_ratio(self):
        with pytest.raises(ParameterError):
            geometric_probabilities(5, 0.0)
        with pytest.raises(ParameterError):
            geometric_probabilities(5, 1.5)

    def test_head_mixture_extremes(self):
        u = 16
        point = head_mixture_probabilities(u, 0.0)
        assert point[0] == pytest.approx(1.0)
        assert entropy_from_probabilities(point) == 0.0
        flat = head_mixture_probabilities(u, 1.0)
        assert entropy_from_probabilities(flat) == pytest.approx(4.0)

    def test_head_mixture_entropy_monotone(self):
        entropies = [
            entropy_from_probabilities(head_mixture_probabilities(32, t))
            for t in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert entropies == sorted(entropies)

    def test_support_one(self):
        assert uniform_probabilities(1).tolist() == [1.0]
        with pytest.raises(ParameterError):
            uniform_probabilities(0)


class TestEntropyTargeting:
    @pytest.mark.parametrize("support,target", [
        (4, 1.0), (16, 2.5), (64, 5.9), (1000, 7.5), (1000, 0.5),
    ])
    def test_hits_target(self, support, target):
        p = probabilities_with_entropy(support, target)
        assert entropy_from_probabilities(p) == pytest.approx(target, abs=1e-4)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()

    def test_zero_entropy(self):
        p = probabilities_with_entropy(10, 0.0)
        assert entropy_from_probabilities(p) == 0.0

    def test_max_entropy(self):
        p = probabilities_with_entropy(8, 3.0)
        assert np.allclose(p, uniform_probabilities(8))

    def test_target_above_log_u_rejected(self):
        with pytest.raises(ParameterError):
            probabilities_with_entropy(4, 2.5)

    def test_negative_target_rejected(self):
        with pytest.raises(ParameterError):
            probabilities_with_entropy(4, -0.1)


class TestSampling:
    def test_empirical_distribution_matches(self):
        rng = np.random.default_rng(0)
        p = zipf_probabilities(8, 1.0)
        draws = sample_categorical(rng, p, 200_000)
        freq = np.bincount(draws, minlength=8) / draws.size
        assert np.abs(freq - p).max() < 0.01

    def test_codes_in_range(self):
        rng = np.random.default_rng(1)
        draws = sample_categorical(rng, uniform_probabilities(5), 10_000)
        assert draws.min() >= 0
        assert draws.max() < 5

    def test_size_zero(self):
        rng = np.random.default_rng(2)
        assert sample_categorical(rng, uniform_probabilities(3), 0).size == 0

    def test_deterministic_given_seed(self):
        p = uniform_probabilities(4)
        a = sample_categorical(np.random.default_rng(3), p, 100)
        b = sample_categorical(np.random.default_rng(3), p, 100)
        assert np.array_equal(a, b)

    def test_point_mass_never_misassigned(self):
        # cdf guard: value with probability 0 at the end must never appear
        rng = np.random.default_rng(4)
        p = np.array([1.0, 0.0])
        draws = sample_categorical(rng, p, 10_000)
        assert (draws == 0).all()

    def test_invalid_inputs(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ParameterError):
            sample_categorical(rng, np.array([0.5, 0.4]), 10)
        with pytest.raises(ParameterError):
            sample_categorical(rng, np.array([]), 10)
        with pytest.raises(ParameterError):
            sample_categorical(rng, uniform_probabilities(3), -1)
