"""Unit tests for :mod:`repro.data.filters`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.filters import (
    PAPER_MAX_SUPPORT,
    drop_constant_columns,
    drop_high_support_columns,
)
from repro.exceptions import ParameterError


def make_store():
    return ColumnStore(
        {
            "small": np.array([0, 1, 0, 1]),
            "big": np.array([0, 1, 2, 3]),
            "constant": np.array([0, 0, 0, 0]),
        },
        support_sizes={"small": 2, "big": 5000, "constant": 1},
    )


class TestHighSupportFilter:
    def test_paper_cutoff_value(self):
        assert PAPER_MAX_SUPPORT == 1000

    def test_drops_only_high_support(self):
        filtered = drop_high_support_columns(make_store())
        assert filtered.attributes == ("small", "constant")

    def test_no_drop_returns_same_store(self):
        store = make_store().select(["small"])
        assert drop_high_support_columns(store) is store

    def test_custom_cutoff(self):
        filtered = drop_high_support_columns(make_store(), max_support=1)
        assert filtered.attributes == ("constant",)

    def test_all_dropped_raises(self):
        store = make_store().select(["big"])
        with pytest.raises(ParameterError, match="exceed support size"):
            drop_high_support_columns(store)

    def test_invalid_cutoff_raises(self):
        with pytest.raises(ParameterError):
            drop_high_support_columns(make_store(), max_support=0)


class TestConstantColumnFilter:
    def test_drops_constant(self):
        filtered = drop_constant_columns(make_store())
        assert filtered.attributes == ("small", "big")

    def test_all_constant_returned_unchanged(self):
        store = ColumnStore({"c1": np.zeros(4, dtype=int), "c2": np.zeros(4, dtype=int)})
        assert drop_constant_columns(store) is store

    def test_no_constant_returned_unchanged(self):
        store = make_store().select(["small", "big"])
        assert drop_constant_columns(store) is store

    def test_declared_but_unobserved_values_do_not_count(self):
        # support size 5 declared but only one value observed -> constant
        store = ColumnStore(
            {"c": np.zeros(4, dtype=int), "keep": np.array([0, 1, 0, 1])},
            support_sizes={"c": 5, "keep": 2},
        )
        assert drop_constant_columns(store).attributes == ("keep",)
