"""Property-based tests (hypothesis) on the core invariants.

These encode the mathematical facts the algorithms rely on:

* entropy axioms on the plug-in estimator;
* interval structure of the Lemma 3 bounds (ordering, width identity,
  monotonicity, collapse at M = N);
* MI non-negativity and symmetry;
* permutation-invariance of count-based estimators;
* the encode/decode round trip;
* schedule structure for arbitrary shapes.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    beta_sensitivity,
    bias_bound,
    entropy_interval,
    permutation_half_width,
)
from repro.core.estimators import (
    entropy_from_counts,
    miller_madow_entropy,
    mutual_information_from_counts,
)
from repro.core.schedule import SampleSchedule
from repro.data.encoding import encode_column
from repro.data.joint import JointCounter

counts_strategy = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=64
).map(lambda xs: np.array(xs, dtype=np.int64))


class TestEntropyProperties:
    @given(counts=counts_strategy)
    def test_entropy_bounded_by_log_support(self, counts):
        h = entropy_from_counts(counts)
        observed = int((counts > 0).sum())
        assert 0.0 <= h <= math.log2(max(observed, 1)) + 1e-9

    @given(counts=counts_strategy)
    def test_entropy_invariant_under_permutation(self, counts):
        shuffled = counts[::-1].copy()
        assert entropy_from_counts(counts) == pytest.approx(
            entropy_from_counts(shuffled)
        )

    @given(counts=counts_strategy, factor=st.integers(min_value=2, max_value=10))
    def test_entropy_scale_invariant(self, counts, factor):
        assert entropy_from_counts(counts) == pytest.approx(
            entropy_from_counts(counts * factor), abs=1e-9
        )

    @given(counts=counts_strategy)
    def test_miller_madow_at_least_plug_in(self, counts):
        assert miller_madow_entropy(counts) >= entropy_from_counts(counts) - 1e-12

    @given(counts=counts_strategy)
    def test_zero_padding_is_noop(self, counts):
        padded = np.concatenate([counts, np.zeros(5, dtype=np.int64)])
        assert entropy_from_counts(padded) == pytest.approx(
            entropy_from_counts(counts)
        )


class TestMIProperties:
    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            min_size=1,
            max_size=300,
        )
    )
    def test_mi_non_negative_and_symmetric(self, data):
        a = np.array([x for x, _ in data])
        b = np.array([y for _, y in data])
        ca = np.bincount(a, minlength=6)
        cb = np.bincount(b, minlength=6)
        ab = JointCounter(6, 6)
        ab.update(a, b)
        ba = JointCounter(6, 6)
        ba.update(b, a)
        mi_ab = mutual_information_from_counts(ca, cb, ab)
        mi_ba = mutual_information_from_counts(cb, ca, ba)
        assert mi_ab >= 0.0
        assert mi_ab == pytest.approx(mi_ba, abs=1e-9)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=200)
    )
    def test_self_mi_equals_entropy(self, values):
        a = np.array(values)
        counts = np.bincount(a, minlength=8)
        joint = JointCounter(8, 8)
        joint.update(a, a)
        assert mutual_information_from_counts(counts, counts, joint) == pytest.approx(
            entropy_from_counts(counts), abs=1e-9
        )


class TestBoundProperties:
    sizes = st.tuples(
        st.integers(min_value=2, max_value=10_000),
        st.integers(min_value=2, max_value=10_000),
    ).map(lambda t: (min(t), max(t)))

    @given(sizes=sizes, p=st.floats(min_value=1e-9, max_value=0.99))
    def test_half_width_non_negative(self, sizes, p):
        m, n = sizes
        assert permutation_half_width(m, n, p) >= 0.0

    @given(sizes=sizes, u=st.integers(min_value=1, max_value=100_000))
    def test_bias_bound_non_negative(self, sizes, u):
        m, n = sizes
        assert bias_bound(u, m, n) >= 0.0

    @given(
        sizes=sizes,
        u=st.integers(min_value=1, max_value=1000),
        h=st.floats(min_value=0.0, max_value=20.0),
        p=st.floats(min_value=1e-9, max_value=0.99),
    )
    def test_interval_structure(self, sizes, u, h, p):
        m, n = sizes
        iv = entropy_interval(h, u, m, n, p)
        assert 0.0 <= iv.lower <= iv.upper
        assert iv.lower <= h <= iv.upper
        assert iv.width == pytest.approx(2 * iv.half_width + iv.bias)
        if m == n:
            assert iv.lower == iv.upper == h

    @given(m=st.integers(min_value=2, max_value=10**6))
    def test_beta_below_paper_bound(self, m):
        assert beta_sensitivity(m) <= 2 * math.log2(m) / m + 1e-12


class TestEncodingProperties:
    @given(values=st.lists(st.text(max_size=5) | st.integers() | st.none()))
    def test_encode_round_trip(self, values):
        codes, vocab = encode_column(values)
        decoded = [vocab[c] for c in codes]
        assert decoded == values

    @given(values=st.lists(st.integers(min_value=-5, max_value=5), min_size=1))
    def test_codes_dense(self, values):
        codes, vocab = encode_column(values)
        assert codes.max() == len(vocab) - 1
        assert set(codes.tolist()) == set(range(len(vocab)))


class TestScheduleProperties:
    @given(
        n=st.integers(min_value=1, max_value=10**7),
        m0=st.integers(min_value=1, max_value=10**7),
        factor=st.floats(min_value=1.01, max_value=8.0),
    )
    @settings(max_examples=50)
    def test_schedule_covers_population(self, n, m0, factor):
        m0 = min(m0, n)
        schedule = SampleSchedule(
            population_size=n, initial_size=m0, growth_factor=factor
        )
        sizes = schedule.sizes
        assert sizes[0] == m0
        assert sizes[-1] == n
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
        # geometric growth => logarithmically many iterations
        assert len(sizes) <= math.ceil(math.log(n / m0 + 1, factor)) + 2

    @given(
        n=st.integers(min_value=2, max_value=10**6),
        h=st.integers(min_value=1, max_value=500),
        pf=st.floats(min_value=1e-9, max_value=0.5),
        bounds=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50)
    def test_failure_budget_union_bound(self, n, h, pf, bounds):
        schedule = SampleSchedule(population_size=n, initial_size=max(1, n // 8))
        per = schedule.per_round_failure(pf, h, bounds_per_attribute=bounds)
        total = per * schedule.num_iterations * h * bounds
        assert total == pytest.approx(pf, rel=1e-9)
