"""CI gate: trace schema version and golden traces must move together.

Any change to the trace wire format must bump
``repro.obs.events.TRACE_SCHEMA_VERSION`` *and* regenerate the committed
golden traces in the same commit. This script enforces the pairing: it
fails when any ``tests/golden/*.jsonl`` header records a schema version
different from the code's current one (schema bumped without
regeneration — or goldens regenerated against stale code), when any
record's ``event`` kind is not in ``repro.obs.events.EVENT_KINDS``
(stale goldens from before a kind was renamed, or a kind emitted but
never registered), and when the golden directory is empty or malformed.

Usage::

    PYTHONPATH=src python scripts/check_trace_schema.py

Exit status 0 when every golden header matches, 1 otherwise. Regenerate
the goldens with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.events import EVENT_KINDS, TRACE_SCHEMA_VERSION

KNOWN_KINDS = frozenset(EVENT_KINDS) | {"header"}

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
REGENERATE_HINT = (
    "regenerate with: PYTHONPATH=src python -m pytest"
    " tests/test_golden_traces.py --update-golden"
)


def main() -> int:
    paths = sorted(GOLDEN_DIR.glob("*.jsonl"))
    if not paths:
        print(
            f"error: no golden traces under {GOLDEN_DIR}; {REGENERATE_HINT}",
            file=sys.stderr,
        )
        return 1
    failures = 0
    for path in paths:
        lines = path.read_text().splitlines()
        first_line = lines[0] if lines else ""
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            print(f"error: {path.name}: first line is not JSON", file=sys.stderr)
            failures += 1
            continue
        if header.get("event") != "header":
            print(
                f"error: {path.name}: first record is not the schema header",
                file=sys.stderr,
            )
            failures += 1
            continue
        recorded = header.get("schema_version")
        if recorded != TRACE_SCHEMA_VERSION:
            print(
                f"error: {path.name} was generated for trace schema"
                f" {recorded}, but repro.obs.events.TRACE_SCHEMA_VERSION is"
                f" {TRACE_SCHEMA_VERSION}; {REGENERATE_HINT}",
                file=sys.stderr,
            )
            failures += 1
            continue
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(
                    f"error: {path.name}:{lineno}: record is not JSON",
                    file=sys.stderr,
                )
                failures += 1
                continue
            kind = record.get("event")
            if kind not in KNOWN_KINDS:
                print(
                    f"error: {path.name}:{lineno}: unknown event kind"
                    f" {kind!r} (registered kinds: {sorted(KNOWN_KINDS)});"
                    f" {REGENERATE_HINT}",
                    file=sys.stderr,
                )
                failures += 1
    if failures:
        return 1
    print(
        f"trace schema OK: {len(paths)} golden trace(s) at schema"
        f" version {TRACE_SCHEMA_VERSION}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
