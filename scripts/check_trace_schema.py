"""CI gate: golden artifacts and their schema versions must move together.

Two artifact families live under ``tests/golden/``:

* **traces** (``*.jsonl``) — any change to the trace wire format must bump
  ``repro.obs.events.TRACE_SCHEMA_VERSION`` *and* regenerate the committed
  golden traces in the same commit. This script fails when a golden
  header records a different schema version, when a record's ``event``
  kind is not in ``repro.obs.events.EVENT_KINDS``, or when the golden
  directory is empty or malformed.
* **census manifests** (``*.manifest.json``) — provenance manifests of
  :mod:`repro.synth.census`. Each must parse under the current
  ``MANIFEST_SCHEMA_VERSION``, and its recorded ``(scenario, seed,
  scale)`` triple must regenerate the *byte-identical* manifest (which
  also proves the dataset sha256 round-trips). Every golden census plan
  trace (``plan_census*.jsonl``) must be **paired** with a manifest for
  the same scenario — a trace over an unpinned dataset is unverifiable.

Usage::

    PYTHONPATH=src python scripts/check_trace_schema.py

Exit status 0 when every golden artifact matches, 1 otherwise.
Regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py \
        tests/test_census_track.py --update-golden
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.obs.events import EVENT_KINDS, TRACE_SCHEMA_VERSION
from repro.synth.census import (
    MANIFEST_SCHEMA_VERSION,
    generate_census,
    load_manifest,
    manifest_json,
)

KNOWN_KINDS = frozenset(EVENT_KINDS) | {"header"}

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_DIR = REPO_ROOT / "tests" / "golden"
REGENERATE_HINT = (
    "regenerate with: PYTHONPATH=src python -m pytest"
    " tests/test_golden_traces.py tests/test_census_track.py --update-golden"
)


def check_traces(paths: list[Path]) -> int:
    failures = 0
    for path in paths:
        lines = path.read_text().splitlines()
        first_line = lines[0] if lines else ""
        try:
            header = json.loads(first_line)
        except json.JSONDecodeError:
            print(f"error: {path.name}: first line is not JSON", file=sys.stderr)
            failures += 1
            continue
        if header.get("event") != "header":
            print(
                f"error: {path.name}: first record is not the schema header",
                file=sys.stderr,
            )
            failures += 1
            continue
        recorded = header.get("schema_version")
        if recorded != TRACE_SCHEMA_VERSION:
            print(
                f"error: {path.name} was generated for trace schema"
                f" {recorded}, but repro.obs.events.TRACE_SCHEMA_VERSION is"
                f" {TRACE_SCHEMA_VERSION}; {REGENERATE_HINT}",
                file=sys.stderr,
            )
            failures += 1
            continue
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(
                    f"error: {path.name}:{lineno}: record is not JSON",
                    file=sys.stderr,
                )
                failures += 1
                continue
            kind = record.get("event")
            if kind not in KNOWN_KINDS:
                print(
                    f"error: {path.name}:{lineno}: unknown event kind"
                    f" {kind!r} (registered kinds: {sorted(KNOWN_KINDS)});"
                    f" {REGENERATE_HINT}",
                    file=sys.stderr,
                )
                failures += 1
    return failures


def check_manifests(paths: list[Path]) -> tuple[int, set[str]]:
    """Validate golden manifests; returns (failures, manifested scenarios)."""
    failures = 0
    scenarios: set[str] = set()
    for path in paths:
        try:
            manifest = load_manifest(path)
        except Exception as exc:
            print(f"error: {path.name}: {exc}", file=sys.stderr)
            failures += 1
            continue
        scenarios.add(str(manifest["scenario"]))
        dataset = generate_census(
            str(manifest["scenario"]),
            seed=int(str(manifest["seed"])),
            scale=float(str(manifest["scale"])),
        )
        regenerated = manifest_json(dataset.manifest)
        committed = path.read_text(encoding="utf-8")
        if regenerated != committed:
            print(
                f"error: {path.name}: recorded (scenario={manifest['scenario']},"
                f" seed={manifest['seed']}, scale={manifest['scale']}) no"
                f" longer regenerates this manifest byte-for-byte — the"
                f" generators changed without a manifest schema bump;"
                f" {REGENERATE_HINT}",
                file=sys.stderr,
            )
            failures += 1
    return failures, scenarios


def check_pairing(trace_paths: list[Path], scenarios: set[str]) -> int:
    """Every census plan trace needs a manifest pinning its dataset."""
    failures = 0
    for path in trace_paths:
        if not path.name.startswith("plan_census"):
            continue
        stem = path.name[len("plan_census_"):].removesuffix(".jsonl")
        if stem not in scenarios:
            print(
                f"error: {path.name}: census plan trace has no paired"
                f" census_{stem}.manifest.json golden pinning its dataset;"
                f" {REGENERATE_HINT}",
                file=sys.stderr,
            )
            failures += 1
    return failures


def main() -> int:
    trace_paths = sorted(GOLDEN_DIR.glob("*.jsonl"))
    manifest_paths = sorted(GOLDEN_DIR.glob("*.manifest.json"))
    if not trace_paths:
        print(
            f"error: no golden traces under {GOLDEN_DIR}; {REGENERATE_HINT}",
            file=sys.stderr,
        )
        return 1
    failures = check_traces(trace_paths)
    manifest_failures, scenarios = check_manifests(manifest_paths)
    failures += manifest_failures
    failures += check_pairing(trace_paths, scenarios)
    if failures:
        return 1
    print(
        f"golden artifacts OK: {len(trace_paths)} trace(s) at trace schema"
        f" {TRACE_SCHEMA_VERSION}, {len(manifest_paths)} manifest(s) at"
        f" {MANIFEST_SCHEMA_VERSION}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
