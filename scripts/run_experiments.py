"""Run the complete paper evaluation and dump results under results/.

Usage::

    python scripts/run_experiments.py [--scale 1.0] [--datasets cdc,hus,pus,enem]
                                      [--targets 2] [--out results]

Produces, for Table 2 and each of Figures 1–12:

* ``results/<id>.txt`` — the rendered per-dataset series (paper layout);
* ``results/<id>.json`` — the raw points for downstream analysis;
* ``results/summary.txt`` — one line per figure with the headline SWOPE
  speedup factors (cells-scanned ratio vs EntropyRank/Exact).

This is the script that generated the measured numbers in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.durability.atomic import atomic_write_text
from repro.experiments.figures import FIGURES, run_figure, run_table2
from repro.experiments.persistence import save_figure_run
from repro.experiments.summary import summarize_run
from repro.experiments.report import render_figure, render_table2


def dump_figure(run, out_dir: Path) -> dict:
    """Write one figure's text + JSON artifacts; return summary stats."""
    fig_id = run.spec.figure_id
    atomic_write_text(out_dir / f"{fig_id}.txt", render_figure(run) + "\n")
    # The JSON uses the repro.experiments.persistence format so stored
    # references load directly into `repro compare`.
    save_figure_run(run, out_dir / f"{fig_id}.json")
    stats = summarize_run(run)
    summary: dict = {"figure": fig_id}
    for baseline, bounds in stats.speedups.items():
        summary[f"speedup_vs_{baseline}"] = bounds
    summary["swope_accuracy"] = stats.swope_accuracy
    return summary


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--datasets", default="cdc,hus,pus,enem")
    parser.add_argument("--targets", type=int, default=2)
    parser.add_argument("--out", default="results")
    parser.add_argument("--figures", default=",".join(sorted(FIGURES)))
    args = parser.parse_args()

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    datasets = args.datasets.split(",")

    table2 = run_table2(scale=args.scale)
    atomic_write_text(out_dir / "table2.txt", render_table2(table2) + "\n")
    atomic_write_text(out_dir / "table2.json", json.dumps(table2, indent=1))
    print("table2 done")

    summaries = []
    for fig_id in sorted(FIGURES, key=lambda f: int(f[3:])):
        if fig_id not in args.figures.split(","):
            continue
        started = time.perf_counter()
        run = run_figure(
            fig_id,
            datasets=datasets,
            scale=args.scale,
            num_targets=args.targets,
            seed=0,
        )
        summary = dump_figure(run, out_dir)
        summaries.append(summary)
        print(f"{fig_id} done in {time.perf_counter() - started:.1f}s: {summary}")

    lines = [json.dumps(s) for s in summaries]
    atomic_write_text(out_dir / "summary.txt", "\n".join(lines) + "\n")
    print(f"all results under {out_dir}/")


if __name__ == "__main__":
    main()
