"""Summarise a pytest-benchmark JSON dump into per-figure tables.

pytest-benchmark's console output hides ``extra_info`` — which is where
the benches record the paper's companion metrics (cells scanned, sample
fraction, accuracy). This script recovers them:

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python scripts/bench_report.py bench.json

Output: one aligned table per benchmark group (figure/ablation), one row
per parameter combination, sorted by the parameter tuple, plus a SWOPE
speedup summary per figure where the grouping allows it.

Malformed dumps (missing ``benchmarks`` key, entries without a name or a
``stats.mean``) are reported as warnings on stderr and skipped;
``--fail-on-warn`` turns any warning into a non-zero exit so CI catches
silently-degraded bench artifacts.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict
from pathlib import Path

from repro.experiments.report import format_table


def _group_name(benchmark_name: str) -> str:
    """``test_fig01_entropy_topk_time[4-swope-cdc]`` → ``fig01_entropy_topk_time``."""
    match = re.match(r"test_([a-zA-Z0-9_]+)\[", benchmark_name)
    return match.group(1) if match else benchmark_name


def _params(benchmark_name: str) -> str:
    match = re.search(r"\[(.*)\]", benchmark_name)
    return match.group(1) if match else ""


def _fmt_seconds(value: float) -> str:
    return f"{value * 1000:.1f}ms" if value < 100 else f"{value:.1f}s"


def _valid_entries(payload: dict, warnings: list[str]) -> list[dict]:
    """The well-formed benchmark entries; malformed ones become warnings."""
    if not isinstance(payload, dict):
        warnings.append(f"payload is not a JSON object (got {type(payload).__name__})")
        return []
    if "benchmarks" not in payload:
        warnings.append("payload has no 'benchmarks' key")
        return []
    raw = payload["benchmarks"]
    if not isinstance(raw, list):
        warnings.append("'benchmarks' is not a list")
        return []
    entries: list[dict] = []
    for index, bench in enumerate(raw):
        if not isinstance(bench, dict):
            warnings.append(f"benchmarks[{index}] is not an object; skipped")
            continue
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            warnings.append(f"benchmarks[{index}] has no name; skipped")
            continue
        stats = bench.get("stats")
        if not isinstance(stats, dict) or not isinstance(
            stats.get("mean"), (int, float)
        ):
            warnings.append(f"benchmarks[{index}] ({name}) has no stats.mean; skipped")
            continue
        entries.append(bench)
    return entries


def render(payload: dict, warnings: list[str] | None = None) -> str:
    """Render the whole benchmark dump as grouped text tables.

    ``warnings``, when given, collects one message per malformed entry
    the renderer had to skip.
    """
    if warnings is None:
        warnings = []
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in _valid_entries(payload, warnings):
        groups[_group_name(bench["name"])].append(bench)

    blocks: list[str] = []
    for group in sorted(groups):
        benches = groups[group]
        extra_keys = sorted({k for b in benches for k in b.get("extra_info", {})})
        headers = ["params", "time", *extra_keys]
        rows = []
        for bench in sorted(benches, key=lambda b: _params(b["name"])):
            extra = bench.get("extra_info", {})
            row = [_params(bench["name"]), _fmt_seconds(bench["stats"]["mean"])]
            for key in extra_keys:
                value = extra.get(key, "")
                if isinstance(value, float):
                    value = f"{value:,.3f}".rstrip("0").rstrip(".")
                elif isinstance(value, int):
                    value = f"{value:,}"
                row.append(str(value))
            rows.append(row)
        blocks.append(f"== {group} ({len(benches)} benchmarks) ==")
        blocks.append(format_table(headers, rows))
        blocks.append("")
    return "\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="pytest-benchmark JSON dump")
    parser.add_argument(
        "--fail-on-warn",
        action="store_true",
        help="exit non-zero if the dump contains malformed entries",
    )
    args = parser.parse_args(argv)
    path = Path(args.json_path)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: {path} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    warnings: list[str] = []
    print(render(payload, warnings))
    for message in warnings:
        print(f"warning: {message}", file=sys.stderr)
    if warnings and args.fail_on_warn:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
