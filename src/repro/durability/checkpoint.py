"""Versioned, fingerprint-keyed checkpoints of plan-executor progress.

A :class:`~repro.core.plan.PlanExecutor` run is deterministic at a fixed
seed: the sample is a prefix of one shuffle, counters only grow, and
every trace event is derived from counter state — so a snapshot of
(shuffle, counters, retired answers, loop position) is enough to restart
a killed plan and produce *bit-identical* final answers. This module
owns that snapshot's on-disk form:

* a single JSON document (``{"format", "schema_version", "sha256",
  "payload"}``) written through
  :func:`repro.durability.atomic.atomic_write_text`, so a crash during a
  save leaves the previous checkpoint intact;
* arrays encoded as base64(zlib(raw bytes)) with dtype and shape, so the
  restored counters are byte-for-byte the saved ones;
* a sha256 over the canonical payload serialization, verified on load —
  a truncated or hand-edited file raises
  :class:`~repro.exceptions.CheckpointError` instead of resuming from
  garbage;
* a schema version and a dataset fingerprint (sha256 over row count,
  attribute names, support sizes, and raw column bytes); loading against
  a different code version or a different dataset raises
  :class:`~repro.exceptions.CheckpointMismatchError` — the counters of a
  snapshot describe exactly one dataset, so "best effort" loading would
  silently produce wrong answers.

The version policy (see ``docs/RESILIENCE.md``): any change to the
payload layout, to what the executor snapshots, or to the engine's
iteration-boundary semantics bumps :data:`CHECKPOINT_SCHEMA_VERSION`.
Old checkpoints are then refused, never migrated — a checkpoint is a
crash-recovery artifact with the lifetime of one plan run, not an
archive format.
"""

from __future__ import annotations

import base64
import hashlib
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.core.engine import LoopCheckpoint
from repro.core.results import (
    AttributeEstimate,
    FilterResult,
    GuaranteeStatus,
    RunStats,
    TopKResult,
)
from repro.data.column_store import ColumnSource
from repro.durability.atomic import atomic_write_text
from repro.exceptions import CheckpointError, CheckpointMismatchError

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "PlanCheckpoint",
    "decode_array",
    "decode_joint_snapshot",
    "decode_sampler_state",
    "encode_array",
    "encode_joint_snapshot",
    "encode_sampler_state",
    "load_checkpoint",
    "loop_state_from_payload",
    "loop_state_to_payload",
    "result_from_payload",
    "result_to_payload",
    "save_checkpoint",
    "store_fingerprint",
]

#: Discriminator in the envelope; a file without it is not a checkpoint.
CHECKPOINT_FORMAT = "repro-plan-checkpoint"

#: Bumped on any change to the payload layout or resume semantics;
#: mismatching files are refused, never migrated.
#: v2: planner-v2 fields — sampler state and run stats carry
#: ``cells_saved`` (plan-cache accounting) and plan progress carries the
#: scheduled plan's metadata (count groups, order, cost estimates).
CHECKPOINT_SCHEMA_VERSION = 2

_PAYLOAD_KEYS = ("dataset", "executor", "sampler", "specs", "progress")


# ----------------------------------------------------------------------
# Dataset fingerprint
# ----------------------------------------------------------------------
def store_fingerprint(store: ColumnSource) -> str:
    """sha256 identity of a dataset: rows, names, supports, column bytes.

    Two stores with the same fingerprint produce identical counters for
    every prefix, which is exactly the property resuming needs. The
    fingerprint deliberately covers the *encoded* columns — re-encoding
    the same raw data differently changes every counter, so it must
    change the fingerprint too.

    Delegates to :meth:`~repro.data.column_store.ColumnSource.fingerprint`,
    so every storage engine hashes itself the way that suits it — the
    in-memory store over its resident arrays, the mmap store by
    returning its manifest's build-time value — while all engines agree
    byte-for-byte on the same encoded data. A checkpoint written against
    one engine therefore verifies against the other.
    """
    return store.fingerprint()


# ----------------------------------------------------------------------
# Array and counter-state codecs
# ----------------------------------------------------------------------
def _encode_array(arr: np.ndarray) -> dict[str, Any]:
    data = np.ascontiguousarray(arr)
    return {
        "dtype": data.dtype.str,
        "shape": list(data.shape),
        "data": base64.b64encode(zlib.compress(data.tobytes())).decode("ascii"),
    }


def _decode_array(payload: Any) -> np.ndarray:
    try:
        raw = zlib.decompress(base64.b64decode(payload["data"]))
        arr = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
        arr = arr.reshape([int(d) for d in payload["shape"]])
    except (KeyError, TypeError, ValueError, zlib.error) as exc:
        raise CheckpointError(f"corrupt array payload in checkpoint: {exc}") from exc
    return arr.copy()  # frombuffer is read-only; counters must be writable


def _encode_joint(snapshot: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {
        "support_first": int(snapshot["support_first"]),
        "support_second": int(snapshot["support_second"]),
        "total": int(snapshot["total"]),
    }
    if "dense" in snapshot:
        out["dense"] = _encode_array(snapshot["dense"])
    else:
        out["sparse_codes"] = _encode_array(snapshot["sparse_codes"])
        out["sparse_counts"] = _encode_array(snapshot["sparse_counts"])
    return out


def _decode_joint(payload: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {
        "support_first": int(payload["support_first"]),
        "support_second": int(payload["support_second"]),
        "total": int(payload["total"]),
    }
    if "dense" in payload:
        out["dense"] = _decode_array(payload["dense"])
    else:
        out["sparse_codes"] = _decode_array(payload["sparse_codes"])
        out["sparse_counts"] = _decode_array(payload["sparse_counts"])
    return out


# Public aliases: the same array/joint codecs back the plan cache's
# partition files (repro.cache), which share this envelope discipline.
encode_array = _encode_array
decode_array = _decode_array
encode_joint_snapshot = _encode_joint
decode_joint_snapshot = _decode_joint


def encode_sampler_state(state: dict[str, Any]) -> dict[str, Any]:
    """JSON-ready form of :meth:`~repro.data.sampling.PrefixSampler.state_snapshot`."""
    permutation = state["permutation"]
    marginals = state["marginals"]
    assert isinstance(marginals, dict)
    return {
        "num_rows": int(state["num_rows"]),
        "sequential": bool(state["sequential"]),
        "permutation": None if permutation is None else _encode_array(permutation),
        "cells_scanned": int(state["cells_scanned"]),
        "cells_saved": int(state.get("cells_saved", 0)),
        "marginals": {
            name: {
                "counted": int(entry["counted"]),
                "counts": _encode_array(entry["counts"]),
            }
            for name, entry in marginals.items()
        },
        "joints": [
            {
                "first": entry["first"],
                "second": entry["second"],
                "counted": int(entry["counted"]),
                "counter": _encode_joint(entry["counter"]),
            }
            for entry in state["joints"]
        ],
    }


def decode_sampler_state(payload: dict[str, Any]) -> dict[str, Any]:
    """Live-array form :meth:`~repro.data.sampling.PrefixSampler.from_state` takes."""
    try:
        permutation = payload["permutation"]
        return {
            "num_rows": int(payload["num_rows"]),
            "sequential": bool(payload["sequential"]),
            "permutation": (
                None if permutation is None else _decode_array(permutation)
            ),
            "cells_scanned": int(payload["cells_scanned"]),
            "cells_saved": int(payload.get("cells_saved", 0)),
            "marginals": {
                name: {
                    "counted": int(entry["counted"]),
                    "counts": _decode_array(entry["counts"]),
                }
                for name, entry in payload["marginals"].items()
            },
            "joints": [
                {
                    "first": str(entry["first"]),
                    "second": str(entry["second"]),
                    "counted": int(entry["counted"]),
                    "counter": _decode_joint(entry["counter"]),
                }
                for entry in payload["joints"]
            ],
        }
    except (KeyError, TypeError, AttributeError) as exc:
        raise CheckpointError(
            f"corrupt sampler state in checkpoint: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Result / loop-state codecs
# ----------------------------------------------------------------------
def _estimate_to_payload(estimate: AttributeEstimate) -> dict[str, Any]:
    return {
        "attribute": estimate.attribute,
        "estimate": estimate.estimate,
        "lower": estimate.lower,
        "upper": estimate.upper,
        "sample_size": estimate.sample_size,
    }


def _estimate_from_payload(payload: dict[str, Any]) -> AttributeEstimate:
    return AttributeEstimate(
        attribute=str(payload["attribute"]),
        estimate=float(payload["estimate"]),
        lower=float(payload["lower"]),
        upper=float(payload["upper"]),
        sample_size=int(payload["sample_size"]),
    )


def _guarantee_to_payload(guarantee: GuaranteeStatus | None) -> dict[str, Any] | None:
    if guarantee is None:
        return None
    return {
        "guarantee_met": guarantee.guarantee_met,
        "stopping_reason": guarantee.stopping_reason,
        "requested_epsilon": guarantee.requested_epsilon,
        "achieved_epsilon": guarantee.achieved_epsilon,
        "undecided": list(guarantee.undecided),
    }


def _guarantee_from_payload(payload: dict[str, Any] | None) -> GuaranteeStatus | None:
    if payload is None:
        return None
    return GuaranteeStatus(
        guarantee_met=bool(payload["guarantee_met"]),
        stopping_reason=str(payload["stopping_reason"]),
        requested_epsilon=float(payload["requested_epsilon"]),
        achieved_epsilon=float(payload["achieved_epsilon"]),
        undecided=tuple(payload["undecided"]),
    )


def _stats_to_payload(stats: RunStats) -> dict[str, Any]:
    return {
        "iterations": stats.iterations,
        "final_sample_size": stats.final_sample_size,
        "population_size": stats.population_size,
        "cells_scanned": stats.cells_scanned,
        "wall_seconds": stats.wall_seconds,
        "candidates_pruned": stats.candidates_pruned,
        "counting_seconds": stats.counting_seconds,
        "bounds_seconds": stats.bounds_seconds,
        "trace_event_count": stats.trace_event_count,
        "cells_saved": stats.cells_saved,
    }


def _stats_from_payload(payload: dict[str, Any]) -> RunStats:
    return RunStats(
        iterations=int(payload["iterations"]),
        final_sample_size=int(payload["final_sample_size"]),
        population_size=int(payload["population_size"]),
        cells_scanned=int(payload["cells_scanned"]),
        wall_seconds=float(payload["wall_seconds"]),
        candidates_pruned=int(payload["candidates_pruned"]),
        counting_seconds=float(payload["counting_seconds"]),
        bounds_seconds=float(payload["bounds_seconds"]),
        trace_event_count=int(payload["trace_event_count"]),
        cells_saved=int(payload.get("cells_saved", 0)),
    )


def result_to_payload(result: Union[TopKResult, FilterResult]) -> dict[str, Any]:
    """JSON-ready form of a retired query result, round-tripping exactly.

    JSON floats serialize via ``repr`` and parse back to the identical
    double, so the restored estimates sort and compare exactly as the
    originals — load-bearing for bit-identical resumed answers.
    """
    if isinstance(result, TopKResult):
        return {
            "type": "top_k",
            "attributes": list(result.attributes),
            "estimates": [_estimate_to_payload(e) for e in result.estimates],
            "stats": _stats_to_payload(result.stats),
            "k": result.k,
            "target": result.target,
            "guarantee": _guarantee_to_payload(result.guarantee),
        }
    if isinstance(result, FilterResult):
        return {
            "type": "filter",
            "attributes": list(result.attributes),
            # A list, not a mapping: FilterResult.estimates is keyed by
            # name but its insertion order (decision order) must survive.
            "estimates": [
                _estimate_to_payload(result.estimates[name])
                for name in result.estimates
            ],
            "stats": _stats_to_payload(result.stats),
            "threshold": result.threshold,
            "target": result.target,
            "guarantee": _guarantee_to_payload(result.guarantee),
        }
    raise CheckpointError(
        f"cannot checkpoint result of type {type(result).__name__}"
    )


def result_from_payload(payload: dict[str, Any]) -> Union[TopKResult, FilterResult]:
    """Rebuild a retired result from :func:`result_to_payload`."""
    try:
        kind = payload["type"]
        if kind == "top_k":
            return TopKResult(
                attributes=[str(a) for a in payload["attributes"]],
                estimates=[_estimate_from_payload(e) for e in payload["estimates"]],
                stats=_stats_from_payload(payload["stats"]),
                k=int(payload["k"]),
                target=payload["target"],
                guarantee=_guarantee_from_payload(payload["guarantee"]),
            )
        if kind == "filter":
            estimates = [_estimate_from_payload(e) for e in payload["estimates"]]
            return FilterResult(
                attributes=[str(a) for a in payload["attributes"]],
                estimates={e.attribute: e for e in estimates},
                stats=_stats_from_payload(payload["stats"]),
                threshold=float(payload["threshold"]),
                target=payload["target"],
                guarantee=_guarantee_from_payload(payload["guarantee"]),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt result payload in checkpoint: {exc}"
        ) from exc
    raise CheckpointError(f"unknown result type {kind!r} in checkpoint")


def loop_state_to_payload(state: LoopCheckpoint) -> dict[str, Any]:
    """JSON-ready form of an engine :class:`~repro.core.engine.LoopCheckpoint`."""
    return {
        "kind": state.kind,
        "next_index": state.next_index,
        "iterations": state.iterations,
        "live": list(state.live),
        "pruned": state.pruned,
        "included": list(state.included),
        "estimates": [_estimate_to_payload(e) for e in state.estimates],
    }


def loop_state_from_payload(payload: dict[str, Any]) -> LoopCheckpoint:
    """Rebuild a :class:`~repro.core.engine.LoopCheckpoint` from its payload."""
    try:
        return LoopCheckpoint(
            kind=str(payload["kind"]),
            next_index=int(payload["next_index"]),
            iterations=int(payload["iterations"]),
            live=tuple(str(a) for a in payload["live"]),
            pruned=int(payload["pruned"]),
            included=tuple(str(a) for a in payload["included"]),
            estimates=tuple(
                _estimate_from_payload(e) for e in payload["estimates"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt loop state in checkpoint: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanCheckpoint:
    """One plan-executor snapshot, as five JSON-ready sections.

    The sections are exactly what :meth:`repro.core.plan.PlanExecutor`
    needs to restart mid-plan:

    * ``dataset`` — ``{"fingerprint", "num_rows"}`` identity of the
      store the counters describe;
    * ``executor`` — failure probability, ratcheted sample floor,
      queries run, iteration boundaries seen, checkpoint cadence;
    * ``sampler`` — the encoded shuffle and every counter
      (:func:`encode_sampler_state`);
    * ``specs`` — the normalized plan specs, so resuming against a
      different plan is refused;
    * ``progress`` — retired results (with their
      :class:`~repro.core.results.GuaranteeStatus`), per-query cell
      accounting, the in-flight query's loop state, and the residual
      plan budget.
    """

    dataset: dict[str, Any]
    executor: dict[str, Any]
    sampler: dict[str, Any]
    specs: list[dict[str, Any]]
    progress: dict[str, Any]
    schema_version: int = CHECKPOINT_SCHEMA_VERSION

    def verify_store(self, store: ColumnSource) -> None:
        """Refuse this checkpoint against a dataset it does not describe."""
        num_rows = self.dataset.get("num_rows")
        if num_rows != store.num_rows:
            raise CheckpointMismatchError(
                f"checkpoint covers {num_rows} rows but the store has"
                f" {store.num_rows}"
            )
        expected = self.dataset.get("fingerprint")
        actual = store_fingerprint(store)
        if expected != actual:
            raise CheckpointMismatchError(
                "checkpoint dataset fingerprint does not match this store"
                f" (checkpoint {str(expected)[:12]}..., store {actual[:12]}...);"
                " refusing to resume against different data"
            )


def _json_default(obj: object) -> object:
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    # json.dumps requires its default= hook to raise TypeError, not a
    # repro error, to signal "cannot serialize".
    raise TypeError(  # noqa: SWP007
        f"checkpoint payload contains non-serializable {type(obj)!r}"
    )


def _canonical(payload: dict[str, Any]) -> str:
    """The one serialization the sha256 is computed over, save and load."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def save_checkpoint(checkpoint: PlanCheckpoint, path: Union[str, Path]) -> int:
    """Atomically write ``checkpoint`` to ``path``; return bytes written.

    The destination only ever holds a complete, verified-on-load
    document: the write goes through
    :func:`repro.durability.atomic.atomic_write_text`, and the sha256 in
    the envelope covers the canonical payload serialization.
    """
    payload = {
        "dataset": checkpoint.dataset,
        "executor": checkpoint.executor,
        "sampler": checkpoint.sampler,
        "specs": checkpoint.specs,
        "progress": checkpoint.progress,
    }
    canonical = _canonical(payload)
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "schema_version": checkpoint.schema_version,
        "sha256": hashlib.sha256(canonical.encode("utf-8")).hexdigest(),
        "payload": payload,
    }
    text = json.dumps(
        envelope, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    atomic_write_text(path, text)
    return len(text.encode("utf-8"))


def load_checkpoint(
    path: Union[str, Path], *, store: ColumnSource | None = None
) -> PlanCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`.

    Verification order: file readability and JSON shape, format marker,
    schema version (:class:`~repro.exceptions.CheckpointMismatchError`),
    sha256 integrity over the canonical payload
    (:class:`~repro.exceptions.CheckpointError` — e.g. a file truncated
    by a crash that bypassed the atomic writer), payload structure, and
    finally — when ``store`` is given — the dataset fingerprint
    (:class:`~repro.exceptions.CheckpointMismatchError`).
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {target}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {target} is not valid JSON ({exc}); the file is"
            " corrupt or was written without the atomic writer"
        ) from exc
    if not isinstance(envelope, dict) or envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{target} is not a {CHECKPOINT_FORMAT!r} file"
        )
    version = envelope.get("schema_version")
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointMismatchError(
            f"checkpoint {target} has schema version {version!r}; this build"
            f" reads only version {CHECKPOINT_SCHEMA_VERSION} and never"
            " migrates old checkpoints — rerun the plan from the start"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {target} has no payload object")
    digest = hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()
    if digest != envelope.get("sha256"):
        raise CheckpointError(
            f"checkpoint {target} failed its sha256 integrity check;"
            " refusing to resume from a corrupt snapshot"
        )
    missing = [key for key in _PAYLOAD_KEYS if key not in payload]
    if missing:
        raise CheckpointError(
            f"checkpoint {target} payload is missing sections: {missing}"
        )
    if not isinstance(payload["specs"], list):
        raise CheckpointError(f"checkpoint {target} has a malformed spec list")
    checkpoint = PlanCheckpoint(
        dataset=payload["dataset"],
        executor=payload["executor"],
        sampler=payload["sampler"],
        specs=payload["specs"],
        progress=payload["progress"],
        schema_version=int(version),
    )
    if store is not None:
        checkpoint.verify_store(store)
    return checkpoint
