"""Atomic write-rename: the one sanctioned way to write durable artifacts.

A checkpoint, trace, metrics dump, or bench-result file that a crash can
truncate is worse than no file at all — a resuming process (or a CI
diff) would read half a JSON document and fail far from the fault. The
helpers here write to a hidden sibling temp file in the *same directory*
(same filesystem, so the final :func:`os.replace` is an atomic rename on
POSIX) and fsync before renaming, so the destination path only ever
holds a complete artifact: either the previous version or the new one,
never a prefix of the new one.

Analysis rule SWP012 keeps every other ``src/repro`` module from calling
``open(path, "w")`` / ``Path.write_text`` directly; this module (and the
fault injectors in :mod:`repro.testing`) are the sanctioned exceptions.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

__all__ = ["AtomicTextFile", "atomic_write_bytes", "atomic_write_text"]


def _temp_sibling(target: Path) -> Path:
    """A hidden temp path next to ``target`` (same dir ⇒ same filesystem)."""
    return target.with_name(f".{target.name}.tmp-{os.getpid()}")


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    Returns the destination path. On any failure the temp file is
    removed best-effort and the destination is left untouched (holding
    its previous contents, if any).
    """
    target = Path(path)
    tmp = _temp_sibling(target)
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return target


def atomic_write_text(
    path: Union[str, Path], text: str, *, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically; see :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


class AtomicTextFile:
    """A streaming text writer that commits via rename on :meth:`close`.

    For artifacts built incrementally (JSONL traces), buffering the
    whole document in memory is wasteful; this wrapper streams into the
    temp sibling and renames it over the destination only when closed
    cleanly. A crash mid-stream leaves the previous version of the
    destination intact (or no file at all on first write) — never a
    truncated stream. :meth:`abort` discards the temp file without
    touching the destination.

    Duck-compatible with the slice of the text-IO interface
    :class:`repro.obs.sinks.JsonlSink` needs: ``write``/``flush``/
    ``close``, plus the context-manager protocol (committing on clean
    exit, aborting when an exception is in flight).
    """

    def __init__(self, path: Union[str, Path], *, encoding: str = "utf-8") -> None:
        self._target = Path(path)
        self._tmp = _temp_sibling(self._target)
        self._file = open(self._tmp, "w", encoding=encoding)
        self._closed = False

    @property
    def path(self) -> Path:
        """The destination path the stream commits to."""
        return self._target

    def write(self, text: str) -> int:
        return self._file.write(text)

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        """Fsync, close, and atomically publish the stream to its path."""
        if self._closed:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        os.replace(self._tmp, self._target)
        self._closed = True

    def abort(self) -> None:
        """Discard the stream: close and remove the temp file."""
        if self._closed:
            return
        self._file.close()
        try:
            self._tmp.unlink()
        except OSError:
            pass
        self._closed = True

    def __enter__(self) -> "AtomicTextFile":
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()
