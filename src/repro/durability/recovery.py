"""Plan-level crash recovery: retry → checkpoint → resume.

:func:`execute_plan_with_recovery` is the degradation ladder the
durability layer promises for flaky storage: an attempt that dies on a
transient error (an :class:`OSError` from a flaky
:class:`~repro.data.column_store.ColumnStore`, say) is retried with
bounded exponential backoff, and every retry *resumes from the last
durable checkpoint* instead of restarting the plan — the work already
paid for (retired queries, grown counters, the scanned prefix) is never
re-bought. Because resumed runs are bit-identical to uninterrupted ones
(the :class:`~repro.core.plan.PlanExecutor` contract), recovery changes
*when* the answers arrive, never *what* they are.

A corrupt or version-mismatched checkpoint is not fatal either: the
attempt falls back to a fresh run, whose plan-start snapshot immediately
replaces the bad file. Only
:class:`~repro.testing.chaos.SimulatedKillError` (and anything else
outside ``retryable``) propagates — a simulated SIGKILL must kill.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence, Union

import numpy as np

from repro.core.plan import PlanExecutor, plan_queries
from repro.exceptions import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.budget import CancellationToken, QueryBudget
    from repro.core.plan import PlanResult, QuerySpec
    from repro.data.backends import CountingBackend
    from repro.data.column_store import ColumnStore
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sinks import TraceSink

__all__ = ["execute_plan_with_recovery"]


def execute_plan_with_recovery(
    store: "ColumnStore",
    specs: "Sequence[QuerySpec]",
    *,
    checkpoint_path: Union[str, Path],
    seed: int | np.random.Generator | None = None,
    backend: "str | CountingBackend | None" = None,
    budget: "QueryBudget | None" = None,
    cancellation: "CancellationToken | None" = None,
    strict: bool = False,
    trace: "TraceSink | None" = None,
    metrics: "MetricsRegistry | None" = None,
    checkpoint_every: int = 1,
    max_retries: int = 3,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
    jitter: float = 0.5,
    max_elapsed_s: float | None = None,
    retryable: tuple[type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    rng: int | np.random.Generator | None = None,
) -> "PlanResult":
    """Execute ``specs`` durably, retrying transient failures via resume.

    Each attempt resumes from ``checkpoint_path`` when a loadable
    checkpoint exists there (falling back to a fresh, seeded run when
    the file is absent, corrupt, or written for a different dataset —
    :class:`~repro.exceptions.CheckpointError` is a fallback signal, not
    a failure) and otherwise starts fresh with checkpointing enabled.
    Failures of ``retryable`` types are retried with the exact backoff
    contract of :func:`~repro.testing.faults.retry_with_backoff`
    (``max_retries``/``base_delay_s``/``max_delay_s``/``jitter``/
    ``max_elapsed_s``/``sleep``/``rng`` pass straight through); anything
    else propagates on the spot with the latest checkpoint intact on
    disk for a later manual resume.
    """
    from repro.testing.faults import retry_with_backoff

    path = Path(checkpoint_path)
    plan = plan_queries(store, list(specs))

    def attempt() -> "PlanResult":
        executor: PlanExecutor | None = None
        if path.exists():
            try:
                executor = PlanExecutor.resume(
                    path, store, backend=backend, trace=trace, metrics=metrics
                )
                if executor.resumed_plan().specs != plan.specs:
                    # A stale checkpoint for some other plan: start fresh
                    # and let the plan-start snapshot overwrite it.
                    executor = None
            except CheckpointError:
                executor = None
        if executor is None:
            executor = PlanExecutor(
                store,
                seed=seed,
                backend=backend,
                budget=budget,
                trace=trace,
                metrics=metrics,
                checkpoint_path=path,
                checkpoint_every=checkpoint_every,
            )
        return executor.execute(
            plan, cancellation=cancellation, strict=strict
        )

    result = retry_with_backoff(
        attempt,
        max_retries=max_retries,
        base_delay_s=base_delay_s,
        max_delay_s=max_delay_s,
        jitter=jitter,
        max_elapsed_s=max_elapsed_s,
        retryable=retryable,
        sleep=sleep,
        rng=rng,
    )
    return result  # type: ignore[return-value]
