"""Durable plan execution: atomic writes, checkpoints, crash recovery.

Three layers (see ``docs/RESILIENCE.md``):

* :mod:`repro.durability.atomic` — the shared write-temp-then-rename
  helpers every durable artifact (checkpoints, traces, metrics dumps,
  bench JSON) must go through, so a crash mid-write never leaves a
  truncated file behind (analysis rule SWP012 enforces this);
* :mod:`repro.durability.checkpoint` — the versioned, sha256-verified,
  dataset-fingerprinted checkpoint format that snapshots
  :class:`~repro.core.plan.PlanExecutor` progress at iteration
  boundaries: the shuffle, every marginal/joint counter, the ratcheted
  sample floor, retired answers with their
  :class:`~repro.core.results.GuaranteeStatus`, residual budgets, and
  the in-flight query's loop state;
* :mod:`repro.durability.recovery` — plan-level retry → checkpoint →
  resume, so a flaky :class:`~repro.data.column_store.ColumnStore`
  degrades to a bounded-backoff retry instead of aborting the batch.
"""

from repro.durability.atomic import (
    AtomicTextFile,
    atomic_write_bytes,
    atomic_write_text,
)

# checkpoint/recovery re-exports resolve lazily: they import the engine
# and plan layers, which themselves import repro.durability.atomic — an
# eager import here would turn that into a cycle for any low-level
# module (e.g. repro.obs.sinks) that only wants the atomic writer.
_LAZY = {
    "CHECKPOINT_FORMAT": "repro.durability.checkpoint",
    "CHECKPOINT_SCHEMA_VERSION": "repro.durability.checkpoint",
    "PlanCheckpoint": "repro.durability.checkpoint",
    "load_checkpoint": "repro.durability.checkpoint",
    "save_checkpoint": "repro.durability.checkpoint",
    "store_fingerprint": "repro.durability.checkpoint",
    "execute_plan_with_recovery": "repro.durability.recovery",
}


def __getattr__(name: str) -> object:
    module_name = _LAZY.get(name)
    if module_name is None:
        # The module __getattr__ protocol (PEP 562) requires a plain
        # AttributeError so hasattr()/getattr() fallbacks keep working.
        raise AttributeError(  # noqa: SWP007
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))


# The checkpoint/recovery names resolve through __getattr__ above
# (lazily, to break the import cycle) — SWP006 cannot see that.
__all__ = [  # noqa: SWP006
    "AtomicTextFile",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA_VERSION",
    "PlanCheckpoint",
    "atomic_write_bytes",
    "atomic_write_text",
    "execute_plan_with_recovery",
    "load_checkpoint",
    "save_checkpoint",
    "store_fingerprint",
]
