"""Dense categorical encoding (the paper's one-to-one preprocessing match).

Section 2.1 of the paper assumes every attribute's values "fall into the
range ``[1, u_alpha]``, which can be easily handled by a simple one-to-one
match preprocessing". This module is that preprocessing: it maps arbitrary
hashable raw values (strings, floats, ints, ``None``) onto the dense integer
codes a :class:`~repro.data.column_store.ColumnStore` requires, and remembers
the mapping so codes can be decoded back to raw values.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.data.column_store import ColumnStore
from repro.exceptions import EncodingError

__all__ = ["CategoricalEncoder", "encode_column", "encode_table"]


def _is_nan(value: object) -> bool:
    """True for any float-like NaN (``float``, ``np.floating``, Decimal)."""
    try:
        return bool(value != value)
    except Exception:
        return False


def encode_column(values: Sequence[object] | np.ndarray) -> tuple[np.ndarray, list[object]]:
    """Encode one column of raw values into dense integer codes.

    Values are assigned codes in order of first appearance, which keeps the
    encoding deterministic for a fixed input sequence.

    All NaN values share a single code. NaN compares unequal to itself,
    so a plain dict keyed on the values would hand every NaN row a fresh
    code — a column with missing values recorded as NaN would silently
    explode to support size ~N and then be dropped whole by the paper's
    u <= 1000 preprocessing filter. Canonicalising NaN keeps "missing"
    as one ordinary category, which is what every count-based score
    expects.

    Returns
    -------
    (codes, vocabulary):
        ``codes`` is an int64 array with ``codes[r]`` the code of row ``r``;
        ``vocabulary[i]`` is the raw value assigned code ``i`` (the first
        NaN encountered stands for all of them).

    Raises
    ------
    EncodingError
        If a value is unhashable.
    """
    mapping: dict[object, int] = {}
    vocabulary: list[object] = []
    nan_code: int | None = None
    codes = np.empty(len(values), dtype=np.int64)
    for row, value in enumerate(values):
        try:
            code = mapping.get(value)
        except TypeError as exc:
            raise EncodingError(
                f"unhashable value at row {row}: {value!r}"
            ) from exc
        if code is None:
            if _is_nan(value):
                if nan_code is None:
                    nan_code = len(vocabulary)
                    vocabulary.append(value)
                code = nan_code
            else:
                code = len(vocabulary)
                mapping[value] = code
                vocabulary.append(value)
        codes[row] = code
    return codes, vocabulary


@dataclass
class CategoricalEncoder:
    """Stateful encoder for a multi-attribute table.

    Use :meth:`fit_transform` to build a :class:`ColumnStore` from raw
    columns, then :meth:`decode` to translate codes back to raw values
    (e.g. when presenting query answers to a user).

    Attributes
    ----------
    vocabularies:
        ``{attribute: [raw value for code 0, code 1, ...]}`` for every
        attribute seen by :meth:`fit_transform`.
    """

    vocabularies: dict[str, list[object]] = field(default_factory=dict)

    def fit_transform(
        self, table: Mapping[str, Sequence[object] | np.ndarray]
    ) -> ColumnStore:
        """Encode every column of ``table`` and return the resulting store."""
        encoded: dict[str, np.ndarray] = {}
        for name, values in table.items():
            codes, vocabulary = encode_column(values)
            self.vocabularies[name] = vocabulary
            encoded[name] = codes
        return ColumnStore(encoded)

    def decode(self, attribute: str, codes: Iterable[int]) -> list[object]:
        """Translate integer codes of ``attribute`` back to raw values."""
        try:
            vocabulary = self.vocabularies[attribute]
        except KeyError:
            raise EncodingError(
                f"attribute {attribute!r} was never encoded by this encoder"
            ) from None
        out: list[object] = []
        for code in codes:
            code = int(code)
            if not 0 <= code < len(vocabulary):
                raise EncodingError(
                    f"code {code} out of range for attribute {attribute!r}"
                    f" (support size {len(vocabulary)})"
                )
            out.append(vocabulary[code])
        return out

    def decode_value(self, attribute: str, code: int) -> object:
        """Translate a single code of ``attribute`` back to its raw value."""
        return self.decode(attribute, [code])[0]


def encode_table(
    table: Mapping[str, Sequence[object] | np.ndarray]
) -> tuple[ColumnStore, CategoricalEncoder]:
    """Convenience wrapper: encode ``table`` and return store and encoder."""
    encoder = CategoricalEncoder()
    store = encoder.fit_transform(table)
    return store, encoder
