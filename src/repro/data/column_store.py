"""Columnar dataset container used by every algorithm in this package.

The paper (Section 2.1) assumes the input dataset :math:`\\mathcal{D}` has
``N`` records and ``h`` categorical attributes whose values fall into the
dense integer range ``[1, u_alpha]`` after a one-to-one preprocessing match.
:class:`ColumnStore` is that preprocessed representation: one NumPy integer
array per attribute, values in ``[0, u_alpha)`` (zero-based; the shift is
immaterial to every count-based formula), plus the per-attribute support
size ``u_alpha``.

The store is deliberately immutable after construction: the sampling layer
(:mod:`repro.data.sampling`) hands out views of these arrays, and mutating a
column under a live sampler would silently corrupt incremental counters.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Mapping, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import SchemaError

__all__ = ["ColumnSource", "ColumnStore"]

#: Integer dtypes accepted for encoded columns.
_INTEGER_KINDS = ("i", "u")


def _pick_dtype(support_size: int) -> np.dtype:
    """Return the smallest integer dtype that holds ``[0, support_size)``."""
    if support_size <= np.iinfo(np.int16).max:
        return np.dtype(np.int16)
    if support_size <= np.iinfo(np.int32).max:
        return np.dtype(np.int32)
    return np.dtype(np.int64)


@runtime_checkable
class ColumnSource(Protocol):
    """Read-side protocol every storage engine implements.

    The sampling substrate (and everything above it) touches a dataset
    through exactly this surface: shape metadata, support sizes, column
    *handles* for the counting backends, and permutation-prefix block
    reads. Two implementations ship with the package:

    * :class:`ColumnStore` — every column fully resident in memory;
    * :class:`~repro.data.mmap_store.MmapStore` — ``.npy``-backed
      memory-mapped columns, so ``N ≫ RAM`` datasets stream through the
      engine with only the touched pages resident.

    :meth:`column` returns an *array-like handle* — for a memory-mapped
    store it is a :class:`numpy.memmap`, and materialising it in full
    defeats the storage engine. Code outside :mod:`repro.data` and
    :mod:`repro.baselines` must read through :meth:`column_block`
    (enforced by analysis rule SWP018); the counting backends index the
    handle with a block selector, which touches only the selected pages.
    """

    @property
    def num_rows(self) -> int:
        """Number of records ``N`` in the dataset."""
        ...

    @property
    def num_attributes(self) -> int:
        """Number of attributes ``h`` in the dataset."""
        ...

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        ...

    def __contains__(self, name: object) -> bool: ...

    def column(self, name: str) -> np.ndarray:
        """Read-only array-like handle of the encoded column (may be mmap)."""
        ...

    def column_block(self, name: str, rows: np.ndarray | slice) -> np.ndarray:
        """Materialised block ``column(name)[rows]`` — the hot-path read API."""
        ...

    def support_size(self, name: str) -> int:
        """``u_alpha``, the declared number of distinct values of ``name``."""
        ...

    def support_sizes(self) -> dict[str, int]:
        """Fresh ``{attribute: u_alpha}`` mapping for all attributes."""
        ...

    def max_support_size(self) -> int:
        """``u_max``, the largest support size over all attributes."""
        ...

    def value_counts(self, name: str, num_rows: int | None = None) -> np.ndarray:
        """Exact occurrence counts of ``name`` over the (prefix of the) data."""
        ...

    def fingerprint(self) -> str:
        """sha256 identity over rows, names, supports, and column bytes.

        Two sources with equal fingerprints produce identical counters
        for every prefix — the property checkpoints and plan caches key
        on. In-memory and mmap stores of the same encoded data return
        the *same* value.
        """
        ...


class ColumnStore:
    """Immutable columnar dataset of dense-encoded categorical attributes.

    Parameters
    ----------
    columns:
        Mapping from attribute name to a 1-D integer array of encoded
        values. All arrays must have the same length and contain values in
        ``[0, support_size)`` for that attribute.
    support_sizes:
        Optional mapping from attribute name to the support size
        ``u_alpha``. When omitted, the support size of each column is
        inferred as ``max(column) + 1`` (``1`` for an empty dataset). Pass
        it explicitly when a value of the domain may be absent from the
        data but should still count toward ``u_alpha``.

    Raises
    ------
    SchemaError
        If columns disagree on length, a column is not 1-D integral, a
        value is negative or at least the declared support size, or the
        store would have no columns.

    Examples
    --------
    >>> import numpy as np
    >>> store = ColumnStore({"a": np.array([0, 1, 1, 2]), "b": np.array([0, 0, 1, 0])})
    >>> store.num_rows, store.num_attributes
    (4, 2)
    >>> store.support_size("a")
    3
    """

    def __init__(
        self,
        columns: Mapping[str, np.ndarray],
        support_sizes: Mapping[str, int] | None = None,
    ) -> None:
        if not columns:
            raise SchemaError("a ColumnStore requires at least one column")
        self._columns: dict[str, np.ndarray] = {}
        self._support: dict[str, int] = {}
        num_rows: int | None = None
        for name, raw in columns.items():
            arr = np.asarray(raw)
            if arr.ndim != 1:
                raise SchemaError(f"column {name!r} must be 1-D, got shape {arr.shape}")
            if arr.dtype.kind not in _INTEGER_KINDS:
                raise SchemaError(
                    f"column {name!r} must be an integer array, got dtype {arr.dtype};"
                    " encode raw values first (see repro.data.encoding)"
                )
            if num_rows is None:
                num_rows = arr.shape[0]
            elif arr.shape[0] != num_rows:
                raise SchemaError(
                    f"column {name!r} has {arr.shape[0]} rows, expected {num_rows}"
                )
            observed_max = int(arr.max(initial=-1))
            observed_min = int(arr.min(initial=0))
            if observed_min < 0:
                raise SchemaError(f"column {name!r} contains negative codes")
            if support_sizes is not None and name in support_sizes:
                u = int(support_sizes[name])
                if u < 1:
                    raise SchemaError(f"support size of {name!r} must be >= 1, got {u}")
                if observed_max >= u:
                    raise SchemaError(
                        f"column {name!r} contains code {observed_max} but declares"
                        f" support size {u}"
                    )
            else:
                u = observed_max + 1 if observed_max >= 0 else 1
            arr = np.ascontiguousarray(arr, dtype=_pick_dtype(u))
            arr.setflags(write=False)
            self._columns[name] = arr
            self._support[name] = u
        assert num_rows is not None
        self._num_rows = num_rows

    @classmethod
    def _from_trusted_parts(
        cls,
        columns: dict[str, np.ndarray],
        support_sizes: dict[str, int],
        num_rows: int,
    ) -> "ColumnStore":
        """Assemble a store from parts that already satisfy the invariants.

        The derived-store fast path: ``select``/``head``/``take`` of a
        validated store cannot produce out-of-range codes or ragged
        columns, so re-running ``__init__``'s O(cells) validation would
        only burn time. Callers must hand over read-only integer arrays
        of length ``num_rows`` with codes in ``[0, support)``.
        """
        store = cls.__new__(cls)
        store._columns = columns
        store._support = support_sizes
        store._num_rows = num_rows
        return store

    # ------------------------------------------------------------------
    # Basic shape accessors
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of records ``N`` in the dataset."""
        return self._num_rows

    @property
    def num_attributes(self) -> int:
        """Number of attributes ``h`` in the dataset."""
        return len(self._columns)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in insertion order."""
        return tuple(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnStore(num_rows={self._num_rows},"
            f" num_attributes={self.num_attributes})"
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Return the (read-only) encoded value array of attribute ``name``."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def column_block(self, name: str, rows: np.ndarray | slice) -> np.ndarray:
        """Return the encoded values of ``name`` at ``rows`` (gather or slice).

        The block-read form of :meth:`column`: the one access pattern
        the adaptive algorithms need (permutation-prefix blocks and row
        subsets), and the only one that stays cheap on every storage
        engine. Code outside :mod:`repro.data` / :mod:`repro.baselines`
        must use this instead of materialising whole columns (SWP018).
        """
        return self.column(name)[rows]

    def support_size(self, name: str) -> int:
        """Return ``u_alpha``, the number of distinct values of ``name``."""
        try:
            return self._support[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def support_sizes(self) -> dict[str, int]:
        """Return a fresh ``{attribute: u_alpha}`` mapping for all attributes."""
        return dict(self._support)

    def max_support_size(self) -> int:
        """Return ``u_max``, the largest support size over all attributes."""
        return max(self._support.values())

    # ------------------------------------------------------------------
    # Derived stores
    # ------------------------------------------------------------------
    def select(self, names: Iterable[str]) -> "ColumnStore":
        """Return a new store restricted to ``names`` (order preserved).

        The underlying arrays are shared, not copied.
        """
        names = list(names)
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise SchemaError(f"unknown attributes: {missing}")
        if not names:
            raise SchemaError("a ColumnStore requires at least one column")
        return ColumnStore._from_trusted_parts(
            {n: self._columns[n] for n in names},
            {n: self._support[n] for n in names},
            self._num_rows,
        )

    def drop(self, names: Iterable[str]) -> "ColumnStore":
        """Return a new store without the attributes in ``names``."""
        dropped = set(names)
        missing = [n for n in dropped if n not in self._columns]
        if missing:
            raise SchemaError(f"unknown attributes: {missing}")
        kept = [n for n in self._columns if n not in dropped]
        if not kept:
            raise SchemaError("dropping these attributes would leave an empty store")
        return self.select(kept)

    def head(self, num_rows: int) -> "ColumnStore":
        """Return a new store containing the first ``num_rows`` records.

        Support sizes are preserved from the parent store (the domain does
        not shrink just because a prefix is taken).
        """
        if num_rows < 1:
            raise SchemaError(f"head() requires num_rows >= 1, got {num_rows}")
        num_rows = min(num_rows, self._num_rows)
        # Slices are views of the read-only parents: O(columns), no copy.
        return ColumnStore._from_trusted_parts(
            {n: col[:num_rows] for n, col in self._columns.items()},
            dict(self._support),
            num_rows,
        )

    def take(self, row_indices: Sequence[int] | np.ndarray) -> "ColumnStore":
        """Return a new store containing the given rows, in the given order."""
        idx = np.asarray(row_indices)
        if idx.ndim != 1:
            raise SchemaError("row_indices must be 1-D")
        taken: dict[str, np.ndarray] = {}
        num_rows = 0
        for n, col in self._columns.items():
            rows = col[idx]
            rows.setflags(write=False)
            taken[n] = rows
            # gathered length, not len(idx): a boolean mask selects fewer.
            num_rows = rows.shape[0]
        return ColumnStore._from_trusted_parts(taken, dict(self._support), num_rows)

    # ------------------------------------------------------------------
    # Counting (the only data access pattern the algorithms need)
    # ------------------------------------------------------------------
    def value_counts(self, name: str, num_rows: int | None = None) -> np.ndarray:
        """Return occurrence counts ``n_i`` of attribute ``name``.

        Parameters
        ----------
        name:
            Attribute to count.
        num_rows:
            When given, only the first ``num_rows`` records are counted
            (used by sequential-prefix sampling); otherwise all records.

        Returns
        -------
        numpy.ndarray
            Length-``u_alpha`` int64 array with ``counts[i]`` = number of
            records whose encoded value equals ``i``.
        """
        col = self.column(name)
        if num_rows is not None:
            col = col[:num_rows]
        return np.bincount(col, minlength=self.support_size(name)).astype(np.int64)

    def memory_bytes(self) -> int:
        """Return the total bytes held by the encoded column arrays."""
        return sum(col.nbytes for col in self._columns.values())

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """sha256 identity: rows, names, supports, and raw column bytes.

        The dataset identity checkpoints and plan caches key on (see
        :func:`repro.durability.checkpoint.store_fingerprint`, which
        delegates here). The byte layout is pinned by golden census
        manifests: ``rows:{N}\\n`` then, per attribute in schema order,
        ``col:{name}:{support}:{dtype.str}\\n`` followed by the raw
        little-endian column bytes. :class:`~repro.data.mmap_store.MmapStore`
        computes the identical value over its on-disk columns, so the
        two engines interoperate under one fingerprint.
        """
        digest = hashlib.sha256()
        digest.update(f"rows:{self._num_rows}\n".encode("utf-8"))
        for name in self.attributes:
            column = np.ascontiguousarray(self.column(name))
            digest.update(
                f"col:{name}:{self.support_size(name)}:{column.dtype.str}\n".encode(
                    "utf-8"
                )
            )
            digest.update(column.tobytes())
        return digest.hexdigest()
