"""Column pre-filters applied before querying.

Section 6.1 of the paper: "we remove columns with a too large support size,
since they are usually not the preferred attributes for downstream data
mining tasks. In our experiment, we eliminate columns with a support size
larger than 1000." This module implements that preprocessing step plus a
couple of closely related hygiene filters that real census extracts need.
"""

from __future__ import annotations

from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError

__all__ = [
    "PAPER_MAX_SUPPORT",
    "drop_high_support_columns",
    "drop_constant_columns",
    "partition_by_support",
]

#: The support-size cutoff used throughout the paper's evaluation.
PAPER_MAX_SUPPORT = 1000


def partition_by_support(
    store: ColumnStore, max_support: int = PAPER_MAX_SUPPORT
) -> tuple[ColumnStore, tuple[str, ...]]:
    """Split ``store`` at the support cutoff: ``(kept store, dropped names)``.

    The kept store contains every column with ``u_alpha <= max_support``;
    the returned tuple names the columns that were removed, in store
    order, so callers (the census workload track, reports) can account
    for what the paper's preprocessing discarded instead of losing that
    information silently. If every column would be removed the cutoff is
    clearly inappropriate for this dataset, so a
    :class:`~repro.exceptions.ParameterError` is raised instead of
    returning an unusable empty store.
    """
    if max_support < 1:
        raise ParameterError(f"max_support must be >= 1, got {max_support}")
    kept = [
        name for name in store.attributes if store.support_size(name) <= max_support
    ]
    if not kept:
        raise ParameterError(
            f"all {store.num_attributes} columns exceed support size {max_support}"
        )
    dropped = tuple(
        name for name in store.attributes if store.support_size(name) > max_support
    )
    if not dropped:
        return store, ()
    return store.select(kept), dropped


def drop_high_support_columns(
    store: ColumnStore, max_support: int = PAPER_MAX_SUPPORT
) -> ColumnStore:
    """Return a store without columns whose support size exceeds ``max_support``.

    Mirrors the paper's evaluation preprocessing (cutoff 1000); see
    :func:`partition_by_support` for the variant that also reports which
    columns were removed.
    """
    kept, _ = partition_by_support(store, max_support)
    return kept


def drop_constant_columns(store: ColumnStore) -> ColumnStore:
    """Return a store without columns that take a single value on the data.

    Constant columns have empirical entropy exactly 0 and mutual
    information exactly 0 against any target; dropping them is a safe,
    common preprocessing step. If *every* column is constant the store is
    returned unchanged (queries then trivially return zero scores).
    """
    kept = [
        name
        for name in store.attributes
        if int((store.value_counts(name) > 0).sum()) > 1
    ]
    if not kept or len(kept) == store.num_attributes:
        return store
    return store.select(kept)
