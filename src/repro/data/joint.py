"""Incremental joint (pairwise) occurrence counting.

Empirical mutual information needs the joint counts ``n_{i,j}`` of record
values over a pair of attributes (paper Definition 1, joint entropy). A pair
``(i, j)`` with supports ``(u1, u2)`` is coded as the single integer
``i * u2 + j``; counting then reduces to the same ``bincount`` pattern the
marginal counters use.

Two storage strategies are used, switching automatically:

* **dense** — a flat ``int64`` array of length ``u1 * u2`` when that product
  is small enough (fast, cache friendly);
* **sparse** — a dictionary keyed by code when the cross product is large
  (the paper's datasets cap ``u_alpha`` at 1000, so ``u1 * u2`` can reach
  10^6; real pair supports are far smaller, which is exactly why the paper
  upper-bounds ``u_{t,a}`` by ``u_t * u_a`` instead of materialising it).

Only nonzero counts ever matter to entropy, so the sparse form loses
nothing.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError

__all__ = ["JointCounter", "DENSE_LIMIT"]

#: Largest ``u1 * u2`` for which a dense count array is allocated (8 MB).
DENSE_LIMIT = 1_000_000


class JointCounter:
    """Joint occurrence counter over a pair of encoded attributes.

    Parameters
    ----------
    support_first, support_second:
        Support sizes ``u1``, ``u2`` of the two attributes.
    dense_limit:
        Threshold on ``u1 * u2`` above which sparse storage is used.
        Exposed mainly so tests can force either representation.
    """

    def __init__(
        self,
        support_first: int,
        support_second: int,
        *,
        dense_limit: int = DENSE_LIMIT,
    ) -> None:
        if support_first < 1 or support_second < 1:
            raise ParameterError(
                "support sizes must be >= 1, got"
                f" ({support_first}, {support_second})"
            )
        self._u1 = int(support_first)
        self._u2 = int(support_second)
        self._total = 0
        product = self._u1 * self._u2
        self._dense: np.ndarray | None
        self._sparse: dict[int, int] | None
        if product <= dense_limit:
            self._dense = np.zeros(product, dtype=np.int64)
            self._sparse = None
        else:
            self._dense = None
            self._sparse = {}

    # ------------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of records counted so far."""
        return self._total

    @property
    def support_product(self) -> int:
        """``u1 * u2``, the worst-case number of distinct pairs."""
        return self._u1 * self._u2

    @property
    def is_dense(self) -> bool:
        """Whether counts are held in a flat array (vs. a hash map)."""
        return self._dense is not None

    # ------------------------------------------------------------------
    def update(self, first: np.ndarray, second: np.ndarray) -> None:
        """Add one batch of records' pair observations to the counter."""
        if first.shape != second.shape:
            raise ParameterError(
                f"mismatched batch shapes {first.shape} vs {second.shape}"
            )
        if first.size == 0:
            return
        # asarray, not astype: already-int64 blocks (the batch layer
        # pre-casts the shared first-column block once) pass through
        # without a copy.
        codes = np.asarray(first, dtype=np.int64) * self._u2 + np.asarray(
            second, dtype=np.int64
        )
        if self._dense is not None:
            self._dense += np.bincount(codes, minlength=self._dense.shape[0])
        else:
            assert self._sparse is not None
            unique, counts = np.unique(codes, return_counts=True)
            sparse = self._sparse
            for code, count in zip(unique.tolist(), counts.tolist()):
                sparse[code] = sparse.get(code, 0) + count
        self._total += first.size

    def nonzero_counts(self) -> np.ndarray:
        """Return the nonzero joint counts ``n_{i,j}`` as a flat int64 array.

        Order is unspecified; entropy is permutation-invariant over counts.
        """
        if self._dense is not None:
            return self._dense[self._dense > 0]
        assert self._sparse is not None
        if not self._sparse:
            return np.zeros(0, dtype=np.int64)
        return np.fromiter(self._sparse.values(), dtype=np.int64, count=len(self._sparse))

    def distinct_pairs(self) -> int:
        """Number of distinct pairs observed so far (the true ``u_{t,a}``
        of the *sample*)."""
        if self._dense is not None:
            return int((self._dense > 0).sum())
        assert self._sparse is not None
        return len(self._sparse)

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing substrate)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """In-memory state snapshot for checkpointing.

        Arrays are returned live for the dense form and materialised as
        parallel code/count arrays for the sparse form; the caller
        (:mod:`repro.durability.checkpoint`) owns serialisation. The
        returned arrays must not be mutated.
        """
        state: dict[str, object] = {
            "support_first": self._u1,
            "support_second": self._u2,
            "total": self._total,
        }
        if self._dense is not None:
            state["dense"] = self._dense
        else:
            assert self._sparse is not None
            codes = np.fromiter(
                self._sparse.keys(), dtype=np.int64, count=len(self._sparse)
            )
            counts = np.fromiter(
                self._sparse.values(), dtype=np.int64, count=len(self._sparse)
            )
            state["sparse_codes"] = codes
            state["sparse_counts"] = counts
        return state

    @classmethod
    def from_snapshot(cls, state: dict[str, object]) -> "JointCounter":
        """Rebuild a counter from a :meth:`snapshot` state.

        The storage form (dense vs. sparse) is taken from the snapshot
        itself, not re-derived from :data:`DENSE_LIMIT`, so a counter
        round-trips bit-identically even if the limit changes.
        """
        u1 = int(state["support_first"])  # type: ignore[arg-type]
        u2 = int(state["support_second"])  # type: ignore[arg-type]
        counter = cls(u1, u2, dense_limit=0)  # start sparse; overwrite below
        dense = state.get("dense")
        if dense is not None:
            arr = np.asarray(dense, dtype=np.int64)
            if arr.shape != (u1 * u2,):
                raise ParameterError(
                    f"dense joint snapshot has shape {arr.shape}, expected"
                    f" ({u1 * u2},)"
                )
            counter._dense = arr.copy()
            counter._sparse = None
        else:
            codes = np.asarray(state["sparse_codes"], dtype=np.int64)
            counts = np.asarray(state["sparse_counts"], dtype=np.int64)
            if codes.shape != counts.shape:
                raise ParameterError(
                    "sparse joint snapshot has mismatched codes/counts shapes"
                    f" {codes.shape} vs {counts.shape}"
                )
            counter._dense = None
            counter._sparse = dict(zip(codes.tolist(), counts.tolist()))
        counter._total = int(state["total"])  # type: ignore[arg-type]
        return counter

    def count_of(self, first_value: int, second_value: int) -> int:
        """Return the count of one specific pair (mainly for tests)."""
        if not (0 <= first_value < self._u1 and 0 <= second_value < self._u2):
            raise ParameterError(
                f"pair ({first_value}, {second_value}) outside supports"
                f" ({self._u1}, {self._u2})"
            )
        code = first_value * self._u2 + second_value
        if self._dense is not None:
            return int(self._dense[code])
        assert self._sparse is not None
        return self._sparse.get(code, 0)
