"""Streaming (out-of-core) count accumulation for very large CSV files.

The paper's datasets run to 33.7M rows; a laptop-friendly library should
still compute exact scores when the encoded table does not fit memory.
:class:`StreamingCounts` makes one pass over a CSV in bounded memory,
maintaining per-attribute value counts (and, optionally, pairwise joint
counts against one designated target attribute), from which exact
empirical entropies and mutual informations follow directly.

This deliberately trades the *sampling* machinery for sequential
streaming: it answers the "Exact" side of the paper's comparison for
datasets where even materialising the encoded columns is unattractive.
"""

from __future__ import annotations

import csv
import warnings
from collections import Counter
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.estimators import entropy_from_counts
from repro.exceptions import DataFormatError, ParameterError, SchemaError
from repro.testing.faults import retry_with_backoff

__all__ = ["StreamingCounts", "stream_csv_counts"]


class StreamingCounts:
    """Value (and optional pair) counts accumulated row by row.

    Parameters
    ----------
    attributes:
        Attribute names, in file order.
    target:
        Optional attribute against which joint counts are kept for every
        other attribute (enables streaming mutual information).
    """

    def __init__(self, attributes: list[str], *, target: str | None = None) -> None:
        if not attributes:
            raise ParameterError("need at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise ParameterError("attribute names must be unique")
        if target is not None and target not in attributes:
            raise SchemaError(f"target {target!r} not among the attributes")
        self._attributes = list(attributes)
        self._target = target
        self._rows = 0
        self._bad_rows = 0
        self._marginals: dict[str, Counter] = {a: Counter() for a in attributes}
        self._joints: dict[str, Counter] | None = None
        if target is not None:
            self._joints = {a: Counter() for a in attributes if a != target}

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Rows consumed so far."""
        return self._rows

    @property
    def attributes(self) -> list[str]:
        """The tracked attribute names."""
        return list(self._attributes)

    @property
    def bad_rows(self) -> int:
        """Malformed rows skipped during ingestion (see ``on_bad_row``)."""
        return self._bad_rows

    def record_bad_row(self) -> None:
        """Count one malformed input row that was skipped, not consumed."""
        self._bad_rows += 1

    def consume(self, row: list[object]) -> None:
        """Add one record (values aligned with ``attributes``)."""
        if len(row) != len(self._attributes):
            raise ParameterError(
                f"row has {len(row)} fields, expected {len(self._attributes)}"
            )
        values = dict(zip(self._attributes, row))
        for name, value in values.items():
            self._marginals[name][value] += 1
        if self._joints is not None:
            assert self._target is not None
            target_value = values[self._target]
            for name, counter in self._joints.items():
                counter[(target_value, values[name])] += 1
        self._rows += 1

    # ------------------------------------------------------------------
    def support_size(self, attribute: str) -> int:
        """Distinct values of ``attribute`` seen so far."""
        if attribute not in self._marginals:
            raise SchemaError(f"unknown attribute {attribute!r}")
        return len(self._marginals[attribute])

    def _counts(self, attribute: str) -> np.ndarray:
        if attribute not in self._marginals:
            raise SchemaError(f"unknown attribute {attribute!r}")
        counter = self._marginals[attribute]
        if not counter:
            return np.zeros(0, dtype=np.int64)
        return np.fromiter(counter.values(), dtype=np.int64, count=len(counter))

    def entropy(self, attribute: str) -> float:
        """Exact empirical entropy (bits) of one attribute so far."""
        return entropy_from_counts(self._counts(attribute))

    def entropies(self) -> dict[str, float]:
        """Exact empirical entropies of all attributes."""
        return {name: self.entropy(name) for name in self._attributes}

    def mutual_information(self, attribute: str) -> float:
        """Exact empirical MI between the target and ``attribute``."""
        if self._joints is None:
            raise ParameterError(
                "no target attribute was configured; pass target= at"
                " construction to enable streaming mutual information"
            )
        assert self._target is not None
        if attribute == self._target:
            raise SchemaError("MI of the target with itself is its entropy")
        if attribute not in self._joints:
            raise SchemaError(f"unknown attribute {attribute!r}")
        joint_counter = self._joints[attribute]
        joint = np.fromiter(
            joint_counter.values(), dtype=np.int64, count=len(joint_counter)
        )
        h_joint = entropy_from_counts(joint)
        h_target = self.entropy(self._target)
        h_attr = self.entropy(attribute)
        return max(0.0, h_target + h_attr - h_joint)

    def mutual_informations(self) -> dict[str, float]:
        """Exact MI against the target for every other attribute."""
        if self._joints is None:
            raise ParameterError("no target attribute was configured")
        return {name: self.mutual_information(name) for name in self._joints}


_BAD_ROW_POLICIES = ("raise", "skip", "warn")


def stream_csv_counts(
    path: str | Path,
    *,
    target: str | None = None,
    delimiter: str = ",",
    max_rows: int | None = None,
    on_bad_row: str = "raise",
    opener: Callable[[Path], object] | None = None,
    max_retries: int = 0,
    retry_base_delay_s: float = 0.05,
) -> StreamingCounts:
    """One bounded-memory pass over a headered CSV.

    Returns the filled :class:`StreamingCounts`; memory use is
    proportional to the number of *distinct* values (and distinct
    target-pairs), never to the number of rows.

    Parameters
    ----------
    on_bad_row:
        What to do with a ragged row (wrong field count): ``"raise"``
        (default) aborts with :class:`~repro.exceptions.DataFormatError`,
        ``"skip"`` drops it silently, ``"warn"`` drops it with a
        :class:`UserWarning`. Skipped rows are tallied in
        :attr:`StreamingCounts.bad_rows` and do not count against
        ``max_rows`` — one ragged record no longer aborts a 33M-row
        ingestion pass.
    opener:
        Callable ``path -> file-like`` replacing the default
        ``path.open(newline="")`` — the injection point for
        :class:`~repro.testing.faults.FlakyReader`.
    max_retries:
        When > 0, transient ``OSError`` failures restart the whole pass
        (fresh counts, so nothing is double-counted) via
        :func:`~repro.testing.faults.retry_with_backoff`, up to this
        many retries. Malformed-input errors are not retryable and
        surface immediately.
    retry_base_delay_s:
        Backoff base delay for the retry wrapper.
    """
    if on_bad_row not in _BAD_ROW_POLICIES:
        raise ParameterError(
            f"on_bad_row must be one of {_BAD_ROW_POLICIES}, got {on_bad_row!r}"
        )
    path = Path(path)
    if not path.exists():
        raise DataFormatError(f"no such file: {path}")
    open_file = opener if opener is not None else lambda p: p.open(newline="")

    def _one_pass() -> StreamingCounts:
        with open_file(path) as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = [name.strip() for name in next(reader)]
            except StopIteration:
                raise DataFormatError(f"{path} is empty") from None
            counts = StreamingCounts(header, target=target)
            for row_number, row in enumerate(reader):
                if max_rows is not None and counts.num_rows >= max_rows:
                    break
                if len(row) != len(header):
                    if on_bad_row == "raise":
                        raise DataFormatError(
                            f"{path}: row {row_number + 2} has {len(row)} fields,"
                            f" expected {len(header)}"
                        )
                    if on_bad_row == "warn":
                        warnings.warn(
                            f"{path}: skipping row {row_number + 2} with"
                            f" {len(row)} fields (expected {len(header)})",
                            stacklevel=3,
                        )
                    counts.record_bad_row()
                    continue
                counts.consume(row)
        return counts

    if max_retries > 0:
        return retry_with_backoff(
            _one_pass, max_retries=max_retries, base_delay_s=retry_base_delay_s
        )
    return _one_pass()
