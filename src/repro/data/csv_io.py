"""CSV ingestion into a :class:`~repro.data.column_store.ColumnStore`.

The paper's datasets are large public CSV files. This loader reads a CSV
with a header row, treats every column as categorical (as the paper does —
the evaluated attributes are census-style categorical codes), and encodes
values by first appearance via :mod:`repro.data.encoding`.

A tiny NPZ cache format is also provided so synthetic datasets and encoded
real datasets can be materialised once and re-loaded quickly by the
benchmark suite.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable

import numpy as np

from repro.data.column_store import ColumnStore
from repro.data.encoding import CategoricalEncoder
from repro.exceptions import DataFormatError
from repro.testing.faults import retry_with_backoff

__all__ = ["load_csv", "save_npz", "load_npz"]


def load_csv(
    path: str | Path,
    *,
    delimiter: str = ",",
    max_rows: int | None = None,
    usecols: list[str] | None = None,
    opener: Callable[[Path], object] | None = None,
    max_retries: int = 0,
    retry_base_delay_s: float = 0.05,
) -> tuple[ColumnStore, CategoricalEncoder]:
    """Load a headered CSV file into an encoded columnar store.

    Parameters
    ----------
    path:
        CSV file with a header row of attribute names.
    delimiter:
        Field separator (default ``","``).
    max_rows:
        Optional cap on the number of data rows read.
    usecols:
        Optional subset of columns to keep (by header name).
    opener:
        Callable ``path -> file-like`` replacing the default
        ``path.open(newline="")`` — the injection point for
        :class:`~repro.testing.faults.FlakyReader`.
    max_retries:
        When > 0, transient ``OSError`` failures restart the load via
        :func:`~repro.testing.faults.retry_with_backoff`; format errors
        are not retryable and surface immediately.
    retry_base_delay_s:
        Backoff base delay for the retry wrapper.

    Returns
    -------
    (store, encoder):
        The encoded store and the encoder holding per-attribute
        vocabularies for decoding query answers.

    Raises
    ------
    DataFormatError
        On a missing/empty file, duplicate or unknown header names, or a
        ragged row.
    """
    path = Path(path)
    if not path.exists():
        raise DataFormatError(f"no such file: {path}")
    open_file = opener if opener is not None else lambda p: p.open(newline="")

    def _read_columns() -> tuple[list[str], list[list[str]]]:
        with open_file(path) as handle:
            reader = csv.reader(handle, delimiter=delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise DataFormatError(f"{path} is empty") from None
            header = [name.strip() for name in header]
            if len(set(header)) != len(header):
                raise DataFormatError(f"{path} has duplicate column names in header")
            if usecols is not None:
                unknown = [c for c in usecols if c not in header]
                if unknown:
                    raise DataFormatError(
                        f"{path}: unknown columns requested: {unknown}"
                    )
                keep_idx = [header.index(c) for c in usecols]
                kept_names = list(usecols)
            else:
                keep_idx = list(range(len(header)))
                kept_names = header
            raw: list[list[str]] = [[] for _ in keep_idx]
            for row_number, row in enumerate(reader):
                if max_rows is not None and row_number >= max_rows:
                    break
                if len(row) != len(header):
                    raise DataFormatError(
                        f"{path}: row {row_number + 2} has {len(row)} fields,"
                        f" expected {len(header)}"
                    )
                for slot, col_idx in enumerate(keep_idx):
                    raw[slot].append(row[col_idx])
        return kept_names, raw

    if max_retries > 0:
        kept_names, raw = retry_with_backoff(
            _read_columns, max_retries=max_retries, base_delay_s=retry_base_delay_s
        )
    else:
        kept_names, raw = _read_columns()
    if not raw or not raw[0]:
        raise DataFormatError(f"{path} contains a header but no data rows")
    encoder = CategoricalEncoder()
    store = encoder.fit_transform(dict(zip(kept_names, raw)))
    return store, encoder


def save_npz(store: ColumnStore, path: str | Path) -> None:
    """Persist an encoded store to a compressed ``.npz`` file.

    Support sizes are stored alongside each column so that domain values
    absent from the data survive a round trip.
    """
    path = Path(path)
    payload: dict[str, np.ndarray] = {}
    for name in store.attributes:
        payload[f"col::{name}"] = store.column(name)
        payload[f"sup::{name}"] = np.asarray(store.support_size(name))
    np.savez_compressed(path, **payload)


def load_npz(path: str | Path) -> ColumnStore:
    """Load a store previously written by :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise DataFormatError(f"no such file: {path}")
    with np.load(path) as archive:
        columns: dict[str, np.ndarray] = {}
        supports: dict[str, int] = {}
        for key in archive.files:
            if key.startswith("col::"):
                columns[key[len("col::"):]] = archive[key]
            elif key.startswith("sup::"):
                supports[key[len("sup::"):]] = int(archive[key])
            else:
                raise DataFormatError(f"{path}: unexpected archive member {key!r}")
    if not columns:
        raise DataFormatError(f"{path}: archive holds no columns")
    missing = set(columns) - set(supports)
    if missing:
        raise DataFormatError(f"{path}: missing support sizes for {sorted(missing)}")
    return ColumnStore(columns, support_sizes=supports)
