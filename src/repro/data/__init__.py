"""Data substrate: columnar storage, encoding, IO, and prefix sampling.

This subpackage is everything below the algorithms: how a dataset is held
in memory (:class:`~repro.data.column_store.ColumnStore`) or streamed
from disk (:class:`~repro.data.mmap_store.MmapStore`) behind the common
:class:`~repro.data.column_store.ColumnSource` protocol, how raw values
become dense codes (:mod:`repro.data.encoding`), how files are read and
cached (:mod:`repro.data.csv_io`), the paper's column pre-filters
(:mod:`repro.data.filters`), the sampling-without-replacement substrate
with incremental marginal/joint counters (:mod:`repro.data.sampling`,
:mod:`repro.data.joint`), and the pluggable counting backends
(:mod:`repro.data.backends`).
"""

from repro.data.backends import (
    BACKEND_NAMES,
    CountingBackend,
    GILBoundBackendWarning,
    NumpyBackend,
    ProcessBackend,
    ThreadedBackend,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.data.column_store import ColumnSource, ColumnStore
from repro.data.csv_io import load_csv, load_npz, save_npz
from repro.data.describe import AttributeProfile, describe_store, profile_attribute
from repro.data.encoding import CategoricalEncoder, encode_column, encode_table
from repro.data.filters import (
    PAPER_MAX_SUPPORT,
    drop_constant_columns,
    drop_high_support_columns,
)
from repro.data.joint import JointCounter
from repro.data.mmap_store import MmapStore, MmapStoreWriter
from repro.data.sampling import PrefixSampler
from repro.data.streaming import StreamingCounts, stream_csv_counts

__all__ = [
    "AttributeProfile",
    "BACKEND_NAMES",
    "ColumnSource",
    "ColumnStore",
    "CategoricalEncoder",
    "CountingBackend",
    "GILBoundBackendWarning",
    "JointCounter",
    "MmapStore",
    "MmapStoreWriter",
    "NumpyBackend",
    "PrefixSampler",
    "ProcessBackend",
    "PAPER_MAX_SUPPORT",
    "StreamingCounts",
    "ThreadedBackend",
    "backend_names",
    "describe_store",
    "drop_constant_columns",
    "drop_high_support_columns",
    "encode_column",
    "encode_table",
    "load_csv",
    "load_npz",
    "profile_attribute",
    "register_backend",
    "resolve_backend",
    "save_npz",
    "stream_csv_counts",
]
