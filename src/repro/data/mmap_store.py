"""Memory-mapped, chunked on-disk column store (the out-of-core engine).

:class:`ColumnStore` holds every encoded column resident in memory, which
caps the reproduction at datasets that fit in RAM. This module provides
the second :class:`~repro.data.column_store.ColumnSource` implementation:
one ``.npy`` file per column, opened read-only through ``numpy``'s memmap
machinery, plus a schema-versioned JSON manifest written through
:func:`repro.durability.atomic.atomic_write_text`.

The design leans on the engine's one access pattern. Prefix sampling only
ever reads *blocks* — a permutation gather or a sequential slice of each
requested column — and fancy-indexing a :class:`numpy.memmap` touches
only the pages the block lives on. So an ``N ≫ RAM`` dataset streams
through the adaptive loop with resident memory proportional to the
*sample*, not the dataset; convergence at ``M ≪ N`` (the paper's whole
point) is what keeps the working set small.

On-disk layout of a store directory::

    manifest.json      {"format", "schema_version", "num_rows",
                        "fingerprint", "columns": [{"name", "support_size",
                        "dtype", "file"}, ...]}
    col_00000.npy      encoded column 0 (smallest int dtype that fits)
    col_00001.npy      ...

The manifest's ``fingerprint`` is byte-identical to
:meth:`ColumnStore.fingerprint` over the same encoded data — computed by
streaming the finished column files in bounded chunks — so checkpoints
and plan caches written against the in-memory store verify against the
mmap store and vice versa.

Construction is chunked for the same reason reads are:
:class:`MmapStoreWriter` preallocates the column files and accepts row
chunks, so a dataset can be built by a generator that never holds more
than one chunk in memory. Column files are written to hidden ``.tmp``
siblings and published by ``os.replace`` before the manifest lands
(itself atomic), so a crash mid-build never leaves a directory that
``MmapStore.open`` would mistake for a complete store.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterator, Mapping
from pathlib import Path
from typing import Any

import numpy as np

from repro.data.column_store import ColumnStore, _pick_dtype
from repro.durability.atomic import atomic_write_text
from repro.exceptions import ParameterError, SchemaError

__all__ = [
    "MMAP_STORE_FORMAT",
    "MMAP_STORE_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "MmapStore",
    "MmapStoreWriter",
]

#: Discriminator in the manifest; a directory without it is not a store.
MMAP_STORE_FORMAT = "repro-mmap-store"

#: Bumped on any change to the manifest layout or the column file format;
#: mismatching stores are refused, never migrated (rebuild is cheap and
#: the fingerprint guarantees the rebuild is the same dataset).
MMAP_STORE_SCHEMA_VERSION = 1

#: Manifest file name inside a store directory.
MANIFEST_NAME = "manifest.json"

#: Rows hashed / counted per chunk when streaming a column file
#: (4 Mi rows ⇒ at most 32 MiB per chunk at the widest dtype).
_CHUNK_ROWS = 1 << 22


def _column_file_name(index: int) -> str:
    """Stable, filesystem-safe file name for the ``index``-th column."""
    return f"col_{index:05d}.npy"


def _iter_chunks(length: int, chunk_rows: int = _CHUNK_ROWS) -> Iterator[slice]:
    """Yield ``[lo, hi)`` slices covering ``range(length)`` in chunks."""
    for lo in range(0, length, chunk_rows):
        yield slice(lo, min(lo + chunk_rows, length))


def _fingerprint_columns(
    num_rows: int,
    entries: list[tuple[str, int, np.ndarray]],
) -> str:
    """sha256 over ``(rows, names, supports, column bytes)``, streamed.

    Must stay byte-identical to :meth:`ColumnStore.fingerprint`; the
    arrays may be memmaps, which is why the bytes go through the digest
    in bounded chunks instead of one ``tobytes()`` materialisation.
    """
    digest = hashlib.sha256()
    digest.update(f"rows:{num_rows}\n".encode("utf-8"))
    for name, support, column in entries:
        digest.update(
            f"col:{name}:{support}:{column.dtype.str}\n".encode("utf-8")
        )
        for block in _iter_chunks(column.shape[0]):
            digest.update(np.ascontiguousarray(column[block]).tobytes())
    return digest.hexdigest()


class MmapStoreWriter:
    """Chunked builder of an on-disk store (``N ≫ RAM`` construction).

    Parameters
    ----------
    directory:
        Target directory (created if missing). Must not already contain
        a finished store manifest.
    support_sizes:
        Ordered ``{attribute: u_alpha}`` mapping fixing the schema. The
        column dtype is the smallest integer type holding the support,
        exactly as :class:`ColumnStore` picks it — which is what makes
        the fingerprints of the two engines agree.
    num_rows:
        Total number of records the finished store will hold; the column
        files are preallocated at this length and filled by
        :meth:`append`.

    Examples
    --------
    >>> writer = MmapStoreWriter(tmp, {"a": 4, "b": 2}, num_rows=10**6)
    >>> for chunk in generate_chunks():      # doctest: +SKIP
    ...     writer.append(chunk)
    >>> store = writer.finalize()            # doctest: +SKIP
    """

    def __init__(
        self,
        directory: str | Path,
        support_sizes: Mapping[str, int],
        num_rows: int,
    ) -> None:
        if num_rows < 0:
            raise ParameterError(f"num_rows must be >= 0, got {num_rows}")
        if not support_sizes:
            raise SchemaError("an mmap store requires at least one column")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        if (self._directory / MANIFEST_NAME).exists():
            raise ParameterError(
                f"{self._directory} already holds a store manifest; refusing"
                " to overwrite an existing mmap store"
            )
        self._num_rows = num_rows
        self._support: dict[str, int] = {}
        self._files: dict[str, Path] = {}
        self._memmaps: dict[str, np.ndarray] = {}
        for index, (name, raw_support) in enumerate(support_sizes.items()):
            support = int(raw_support)
            if support < 1:
                raise SchemaError(
                    f"support size of {name!r} must be >= 1, got {support}"
                )
            self._support[name] = support
            final = self._directory / _column_file_name(index)
            temp = final.with_name(f".{final.name}.tmp-{os.getpid()}")
            # open_memmap writes a valid .npy header up front; the data
            # region fills lazily as chunks land (sparse until then).
            self._memmaps[name] = np.lib.format.open_memmap(
                temp, mode="w+", dtype=_pick_dtype(support), shape=(num_rows,)
            )
            self._files[name] = final
        self._written = 0
        self._finalized = False

    @property
    def rows_written(self) -> int:
        """Rows appended so far (finalize requires all ``num_rows``)."""
        return self._written

    def append(self, chunk: Mapping[str, np.ndarray]) -> None:
        """Append one row chunk: a same-length block of every column."""
        if self._finalized:
            raise ParameterError("writer is finalized; no further appends")
        if set(chunk) != set(self._support):
            missing = sorted(set(self._support) - set(chunk))
            extra = sorted(set(chunk) - set(self._support))
            raise SchemaError(
                f"chunk columns disagree with the schema (missing={missing},"
                f" unexpected={extra})"
            )
        arrays: dict[str, np.ndarray] = {}
        length: int | None = None
        for name in self._support:
            arr = np.asarray(chunk[name])
            if arr.ndim != 1:
                raise SchemaError(
                    f"chunk column {name!r} must be 1-D, got shape {arr.shape}"
                )
            if arr.dtype.kind not in ("i", "u"):
                raise SchemaError(
                    f"chunk column {name!r} must be an integer array, got"
                    f" dtype {arr.dtype}"
                )
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise SchemaError(
                    f"chunk column {name!r} has {arr.shape[0]} rows, expected"
                    f" {length}"
                )
            if arr.size:
                low = int(arr.min())
                high = int(arr.max())
                if low < 0:
                    raise SchemaError(f"column {name!r} contains negative codes")
                if high >= self._support[name]:
                    raise SchemaError(
                        f"column {name!r} contains code {high} but declares"
                        f" support size {self._support[name]}"
                    )
            arrays[name] = arr
        assert length is not None
        if self._written + length > self._num_rows:
            raise ParameterError(
                f"chunk overflows the store: {self._written} + {length} rows"
                f" > declared num_rows {self._num_rows}"
            )
        stop = self._written + length
        for name, arr in arrays.items():
            self._memmaps[name][self._written : stop] = arr
        self._written = stop

    def finalize(self) -> "MmapStore":
        """Flush, publish the column files, write the manifest, and open."""
        if self._finalized:
            raise ParameterError("writer is already finalized")
        if self._written != self._num_rows:
            raise ParameterError(
                f"store is incomplete: {self._written} of {self._num_rows}"
                " rows written"
            )
        entries: list[tuple[str, int, np.ndarray]] = []
        for name, memmap in self._memmaps.items():
            if isinstance(memmap, np.memmap):
                memmap.flush()
            entries.append((name, self._support[name], memmap))
        fingerprint = _fingerprint_columns(self._num_rows, entries)
        columns_payload = []
        for index, name in enumerate(self._support):
            memmap = self._memmaps[name]
            temp = Path(getattr(memmap, "filename", ""))
            dtype_str = memmap.dtype.str
            # Drop our reference before publishing so the map closes.
            del self._memmaps[name]
            del memmap
            os.replace(temp, self._files[name])
            columns_payload.append(
                {
                    "name": name,
                    "support_size": self._support[name],
                    "dtype": dtype_str,
                    "file": self._files[name].name,
                }
            )
        manifest = {
            "format": MMAP_STORE_FORMAT,
            "schema_version": MMAP_STORE_SCHEMA_VERSION,
            "num_rows": self._num_rows,
            "fingerprint": fingerprint,
            "columns": columns_payload,
        }
        atomic_write_text(
            self._directory / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        )
        self._finalized = True
        return MmapStore.open(self._directory)


class MmapStore:
    """Read-only memory-mapped column store (open with :meth:`open`).

    Satisfies :class:`~repro.data.column_store.ColumnSource`: the
    sampler, the plan executor, checkpoints, and all four ``swope_*``
    facades accept it wherever a :class:`ColumnStore` is accepted.
    :meth:`column` hands out the cached read-only memmap — the counting
    backends index it with permutation blocks, touching only the pages
    the sample lives on.
    """

    def __init__(
        self, directory: Path, manifest: dict[str, Any], *, _token: object = None
    ) -> None:
        if _token is not _OPEN_TOKEN:
            raise ParameterError(
                "use MmapStore.open(directory) /"
                " MmapStore.from_column_store(...) to construct a store"
            )
        self._directory = directory
        self._manifest = manifest
        self._num_rows = int(manifest["num_rows"])
        self._fingerprint = str(manifest["fingerprint"])
        self._support: dict[str, int] = {}
        self._dtypes: dict[str, np.dtype] = {}
        self._files: dict[str, Path] = {}
        for entry in manifest["columns"]:
            name = str(entry["name"])
            self._support[name] = int(entry["support_size"])
            self._dtypes[name] = np.dtype(str(entry["dtype"]))
            path = directory / str(entry["file"])
            if not path.is_file():
                raise SchemaError(
                    f"mmap store at {directory} is missing column file"
                    f" {entry['file']!r} (declared for attribute {name!r})"
                )
            self._files[name] = path
        self._columns: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str | Path) -> "MmapStore":
        """Open a finished store directory (validates the manifest)."""
        root = Path(directory)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.is_file():
            raise SchemaError(
                f"{root} is not an mmap store: no {MANIFEST_NAME} (an"
                " interrupted build leaves no manifest; rebuild the store)"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SchemaError(f"corrupt manifest at {manifest_path}: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("format") != (
            MMAP_STORE_FORMAT
        ):
            raise SchemaError(
                f"{manifest_path} is not a {MMAP_STORE_FORMAT} manifest"
            )
        version = manifest.get("schema_version")
        if version != MMAP_STORE_SCHEMA_VERSION:
            raise SchemaError(
                f"mmap store schema version {version!r} is not supported"
                f" (this build reads version {MMAP_STORE_SCHEMA_VERSION});"
                " rebuild the store"
            )
        for key in ("num_rows", "fingerprint", "columns"):
            if key not in manifest:
                raise SchemaError(f"manifest at {manifest_path} lacks {key!r}")
        if not manifest["columns"]:
            raise SchemaError("an mmap store requires at least one column")
        return cls(root, manifest, _token=_OPEN_TOKEN)

    @classmethod
    def from_column_store(
        cls,
        store: ColumnStore,
        directory: str | Path,
        *,
        chunk_rows: int = _CHUNK_ROWS,
    ) -> "MmapStore":
        """Materialise an in-memory store on disk (chunked copy)."""
        if chunk_rows < 1:
            raise ParameterError(f"chunk_rows must be >= 1, got {chunk_rows}")
        writer = MmapStoreWriter(
            directory, store.support_sizes(), store.num_rows
        )
        for block in _iter_chunks(store.num_rows, chunk_rows):
            writer.append(
                {name: store.column(name)[block] for name in store.attributes}
            )
        return writer.finalize()

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def directory(self) -> Path:
        """The store's on-disk root."""
        return self._directory

    @property
    def num_rows(self) -> int:
        """Number of records ``N`` in the dataset."""
        return self._num_rows

    @property
    def num_attributes(self) -> int:
        """Number of attributes ``h`` in the dataset."""
        return len(self._support)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attribute names in manifest (schema) order."""
        return tuple(self._support)

    def __contains__(self, name: object) -> bool:
        return name in self._support

    def __len__(self) -> int:
        return self._num_rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MmapStore(directory={str(self._directory)!r},"
            f" num_rows={self._num_rows}, num_attributes={self.num_attributes})"
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """Read-only memmap handle of attribute ``name`` (opened lazily)."""
        handle = self._columns.get(name)
        if handle is not None:
            return handle
        if name not in self._support:
            raise SchemaError(f"unknown attribute {name!r}")
        loaded = np.load(self._files[name], mmap_mode="r")
        if loaded.ndim != 1 or loaded.shape[0] != self._num_rows:
            raise SchemaError(
                f"column file for {name!r} has shape {loaded.shape}, expected"
                f" ({self._num_rows},) — store files were modified after build"
            )
        if loaded.dtype != self._dtypes[name]:
            raise SchemaError(
                f"column file for {name!r} has dtype {loaded.dtype}, manifest"
                f" declares {self._dtypes[name]}"
            )
        self._columns[name] = loaded
        return loaded

    def column_block(self, name: str, rows: np.ndarray | slice) -> np.ndarray:
        """Materialised block ``column(name)[rows]`` (touches only its pages)."""
        return np.asarray(self.column(name)[rows])

    def support_size(self, name: str) -> int:
        """Return ``u_alpha``, the number of distinct values of ``name``."""
        try:
            return self._support[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}") from None

    def support_sizes(self) -> dict[str, int]:
        """Return a fresh ``{attribute: u_alpha}`` mapping for all attributes."""
        return dict(self._support)

    def max_support_size(self) -> int:
        """Return ``u_max``, the largest support size over all attributes."""
        return max(self._support.values())

    # ------------------------------------------------------------------
    # Counting / identity
    # ------------------------------------------------------------------
    def value_counts(self, name: str, num_rows: int | None = None) -> np.ndarray:
        """Exact occurrence counts of ``name``, streamed in bounded chunks."""
        column = self.column(name)
        stop = self._num_rows if num_rows is None else min(num_rows, self._num_rows)
        counts = np.zeros(self.support_size(name), dtype=np.int64)
        for block in _iter_chunks(stop):
            part = np.bincount(
                np.asarray(column[block]), minlength=counts.shape[0]
            )
            counts += part
        return counts

    def fingerprint(self) -> str:
        """The manifest's dataset sha256 (equal to the in-memory store's)."""
        return self._fingerprint

    def verify_fingerprint(self) -> str:
        """Recompute the fingerprint from the column files and check it.

        Streams every column in bounded chunks; raises
        :class:`~repro.exceptions.SchemaError` when the recomputed value
        disagrees with the manifest (bit rot or post-build edits).
        Returns the verified fingerprint.
        """
        actual = _fingerprint_columns(
            self._num_rows,
            [
                (name, self._support[name], self.column(name))
                for name in self._support
            ],
        )
        if actual != self._fingerprint:
            raise SchemaError(
                f"mmap store at {self._directory} fails verification:"
                f" manifest fingerprint {self._fingerprint[:12]}… but column"
                f" files hash to {actual[:12]}…"
            )
        return actual

    def disk_bytes(self) -> int:
        """Total bytes of the column files on disk (excludes the manifest)."""
        return sum(path.stat().st_size for path in self._files.values())


#: Capability token gating direct ``MmapStore(...)`` construction.
_OPEN_TOKEN = object()
