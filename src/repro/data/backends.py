"""Pluggable counting backends for the sampling substrate.

Occurrence counting — gathering a block of prefix rows from an encoded
column and histogramming it with ``bincount`` — is the only data-touching
operation on the adaptive query hot path, and the paper's cost model
(cells scanned) charges exactly this work. Everything above it (bounds,
stopping rules, pruning) is pure arithmetic over the resulting counts.

This module isolates that operation behind the :class:`CountingBackend`
protocol so :class:`~repro.data.sampling.PrefixSampler` can batch the
per-iteration work of *all* live candidate columns into a single call and
swap the execution strategy without touching cost accounting or results:

* :class:`NumpyBackend` — one sequential gather + ``bincount`` pass per
  column (the default; equivalent to the historical per-attribute path,
  minus the per-call overhead).
* :class:`ThreadedBackend` — the same per-column work fanned out over a
  thread pool. NumPy releases the GIL inside fancy indexing and
  ``bincount``, so on multi-core machines the columns count in parallel.
  Results are deterministic: each column's counts are independent, and
  they are returned in request order.

Backends are pure functions of their inputs — every count array a backend
returns is bit-identical across backends, which is what lets the engine
guarantee identical query results under ``numpy`` and ``threads``.

:func:`resolve_backend` maps the user-facing spelling (a name, an
instance, or ``None`` meaning "honour the ``REPRO_BACKEND`` environment
variable") onto a backend instance; the four ``swope_*`` entry points,
:class:`~repro.core.session.QuerySession`, and the CLI all accept the
same spelling.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import Protocol

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "BACKEND_NAMES",
    "CountingBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "resolve_backend",
]

#: The built-in backend names :func:`resolve_backend` understands.
BACKEND_NAMES = ("numpy", "threads")

#: Environment variable consulted when no backend is specified.
BACKEND_ENV_VAR = "REPRO_BACKEND"


def _count_one(
    column: np.ndarray, rows: np.ndarray | slice, support_size: int
) -> np.ndarray:
    """Gather ``column[rows]`` and histogram it into ``support_size`` bins.

    This is the exact operation the sampler's incremental marginal
    counters have always performed; keeping it as the single shared
    kernel is what makes all backends bit-identical.
    """
    return np.bincount(column[rows], minlength=support_size)


class CountingBackend(Protocol):
    """Strategy for counting encoded columns over a block of prefix rows."""

    #: Stable identifier recorded in diagnostics (``"numpy"``, ``"threads"``).
    name: str

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        """Per-column occurrence counts of ``column[rows]``.

        ``rows`` is either a materialized permutation block (shuffled
        sampling) or a plain slice (sequential sampling); it is shared
        by every column of the batch. The i-th result has length
        ``support_sizes[i]`` at least, exactly as ``np.bincount`` with
        ``minlength`` returns it.
        """
        ...  # pragma: no cover - protocol


class NumpyBackend:
    """Default backend: sequential NumPy gather + ``bincount`` per column."""

    name = "numpy"

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        return [
            _count_one(column, rows, support)
            for column, support in zip(columns, support_sizes)
        ]


class ThreadedBackend:
    """Backend counting candidate columns concurrently on a thread pool.

    Parameters
    ----------
    max_workers:
        Thread-pool size; defaults to ``os.cpu_count()``. A single-column
        batch bypasses the pool entirely (no dispatch overhead).

    The pool is created lazily on first use and reused for the backend's
    lifetime. Per-column results are independent and returned in request
    order, so the output is bit-identical to :class:`NumpyBackend`.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-count",
            )
        return self._executor

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        if len(columns) < 2:
            return [
                _count_one(column, rows, support)
                for column, support in zip(columns, support_sizes)
            ]
        futures = [
            self._pool().submit(_count_one, column, rows, support)
            for column, support in zip(columns, support_sizes)
        ]
        return [future.result() for future in futures]


def resolve_backend(backend: str | CountingBackend | None) -> CountingBackend:
    """Normalise a backend spelling into a :class:`CountingBackend`.

    ``None`` reads the ``REPRO_BACKEND`` environment variable (default
    ``"numpy"``) — which is how CI runs the whole test suite under the
    threaded backend without touching call sites. A string picks one of
    :data:`BACKEND_NAMES`; anything else must already satisfy the
    protocol and is returned as-is.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "numpy")
    if isinstance(backend, str):
        if backend == "numpy":
            return NumpyBackend()
        if backend == "threads":
            return ThreadedBackend()
        raise ParameterError(
            f"unknown counting backend {backend!r}; choose one of"
            f" {BACKEND_NAMES} or pass a CountingBackend instance"
        )
    if not hasattr(backend, "count_columns"):
        raise ParameterError(
            f"backend {backend!r} does not implement CountingBackend"
            " (missing count_columns)"
        )
    return backend
