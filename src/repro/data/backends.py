"""Pluggable counting backends for the sampling substrate.

Occurrence counting — gathering a block of prefix rows from an encoded
column and histogramming it with ``bincount`` — is the only data-touching
operation on the adaptive query hot path, and the paper's cost model
(cells scanned) charges exactly this work. Everything above it (bounds,
stopping rules, pruning) is pure arithmetic over the resulting counts.

This module isolates that operation behind the :class:`CountingBackend`
protocol so :class:`~repro.data.sampling.PrefixSampler` can batch the
per-iteration work of *all* live candidate columns into a single call and
swap the execution strategy without touching cost accounting or results:

* :class:`NumpyBackend` — one sequential gather + ``bincount`` pass per
  column (the default; equivalent to the historical per-attribute path,
  minus the per-call overhead).
* :class:`ThreadedBackend` — the same per-column work fanned out over a
  thread pool. NumPy releases the GIL inside fancy indexing and
  ``bincount``, but the gather/histogram kernels are memory-bound and the
  dispatch runs under the GIL, so the measured end-to-end win is ~1.01×
  (``BENCH_backend.json``); :func:`resolve_backend` warns once per
  process and points at ``process``.
* :class:`ProcessBackend` — row-sharded ``multiprocessing`` workers.
  Each worker receives the shared permutation/rows block (a
  ``multiprocessing.shared_memory`` segment, or a plain slice in
  sequential mode) plus column references — shared-memory segments for
  in-memory columns, ``(path, dtype, offset)`` descriptors for
  memory-mapped columns, which workers open independently — computes a
  per-shard ``bincount`` for every requested column, and the parent
  merges the shards by int64 summation. Integer addition is exact, so
  the merged counts are bit-identical to a single-pass ``bincount``.

Backends are pure functions of their inputs — every count array a backend
returns is bit-identical across backends, which is what lets the engine
guarantee identical query results under any :data:`BACKEND_NAMES` choice.

:func:`resolve_backend` maps the user-facing spelling (a name, an
instance, or ``None`` meaning "honour the ``REPRO_BACKEND`` environment
variable") onto a backend instance via the :data:`BACKEND_REGISTRY`; the
four ``swope_*`` entry points, :class:`~repro.core.session.QuerySession`,
and the CLI all accept the same spelling, and the CLI derives its
``--backend`` choices from :func:`backend_names` so registered backends
(and the ``REPRO_BACKEND`` validation error) stay in sync automatically.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Any, Protocol

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "BACKEND_NAMES",
    "BACKEND_REGISTRY",
    "CountingBackend",
    "GILBoundBackendWarning",
    "NumpyBackend",
    "ProcessBackend",
    "ThreadedBackend",
    "backend_names",
    "register_backend",
    "resolve_backend",
]

#: Environment variable consulted when no backend is specified.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class GILBoundBackendWarning(UserWarning):
    """The selected backend cannot scale past the GIL for this workload."""


def _count_one(
    column: np.ndarray, rows: np.ndarray | slice, support_size: int
) -> np.ndarray:
    """Gather ``column[rows]`` and histogram it into ``support_size`` bins.

    This is the exact operation the sampler's incremental marginal
    counters have always performed; keeping it as the single shared
    kernel is what makes all backends bit-identical.
    """
    return np.bincount(column[rows], minlength=support_size)


class CountingBackend(Protocol):
    """Strategy for counting encoded columns over a block of prefix rows."""

    #: Stable identifier recorded in diagnostics (``"numpy"``, ``"process"``).
    name: str

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        """Per-column occurrence counts of ``column[rows]``.

        ``rows`` is either a materialized permutation block (shuffled
        sampling) or a plain slice (sequential sampling); it is shared
        by every column of the batch. The i-th result has length
        ``support_sizes[i]`` at least, exactly as ``np.bincount`` with
        ``minlength`` returns it.
        """
        ...  # pragma: no cover - protocol


class NumpyBackend:
    """Default backend: sequential NumPy gather + ``bincount`` per column."""

    name = "numpy"

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        return [
            _count_one(column, rows, support)
            for column, support in zip(columns, support_sizes)
        ]


class ThreadedBackend:
    """Backend counting candidate columns concurrently on a thread pool.

    Parameters
    ----------
    max_workers:
        Thread-pool size; defaults to ``os.cpu_count()``. A single-column
        batch bypasses the pool entirely (no dispatch overhead).

    The pool is created lazily on first use and reused for the backend's
    lifetime. Per-column results are independent and returned in request
    order, so the output is bit-identical to :class:`NumpyBackend`.

    .. note::
       The gather + ``bincount`` kernels release the GIL but are
       memory-bandwidth-bound, and the per-column dispatch runs under
       the GIL — the measured end-to-end speedup on the h=64/N=1e6
       entropy sweep is ~1.01× (``BENCH_backend.json``). For real core
       scaling use :class:`ProcessBackend`.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None

    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-count",
            )
        return self._executor

    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        if len(columns) < 2:
            return [
                _count_one(column, rows, support)
                for column, support in zip(columns, support_sizes)
            ]
        futures = [
            self._pool().submit(_count_one, column, rows, support)
            for column, support in zip(columns, support_sizes)
        ]
        return [future.result() for future in futures]


# ----------------------------------------------------------------------
# Process backend: row-sharded workers over shared memory / memmaps
# ----------------------------------------------------------------------
#: Shared-memory column segments cached per backend before falling back
#: to per-call publication (a backstop against callers that hand a fresh
#: array every call; samplers reuse store handles, so this never trips).
_COLUMN_CACHE_LIMIT = 128

#: A column reference a worker can resolve without the parent's memory:
#: ``("mmap", path, dtype, length, offset)`` or ``("shm", name, dtype,
#: length)``; rows blocks use ``("slice", start, stop)`` or ``("rows",
#: name, dtype, length)`` (an uncached per-call segment).
_ArrayRef = tuple[Any, ...]


#: Whether this worker must unregister attached segments from its
#: resource tracker. Fork-context workers share the parent's tracker —
#: the attach-time registration is a no-op there and unregistering would
#: steal the parent's entry; spawn-context workers own a separate
#: tracker that would otherwise report (and try to unlink) the parent's
#: segments as leaks at worker exit. Set by :func:`_worker_init`.
_WORKER_UNTRACK = False


def _worker_init(untrack: bool) -> None:
    """Pool initializer: record the tracker policy for this worker."""
    global _WORKER_UNTRACK
    _WORKER_UNTRACK = untrack


def _untrack_shared_memory(segment: shared_memory.SharedMemory) -> None:
    """Detach ``segment`` from this worker's resource tracker if needed.

    The parent owns every segment and unlinks it; see
    :data:`_WORKER_UNTRACK` for why only spawn-context workers must
    undo the attach-time registration.
    """
    if not _WORKER_UNTRACK:
        return
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass


#: Worker-side cache of attached columns, keyed by their reference; one
#: attach (or memmap open) per column per worker for the pool's lifetime.
_WORKER_COLUMNS: dict[_ArrayRef, tuple[np.ndarray, object]] = {}


def _worker_resolve_column(ref: _ArrayRef) -> np.ndarray:
    """Attach (and cache) the array a column reference points at."""
    cached = _WORKER_COLUMNS.get(ref)
    if cached is not None:
        return cached[0]
    kind = ref[0]
    if kind == "mmap":
        _, path, dtype, length, offset = ref
        array: np.ndarray = np.memmap(
            path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=(length,)
        )
        keepalive: object = None
    elif kind == "shm":
        _, name, dtype, length = ref
        segment = shared_memory.SharedMemory(name=name)
        _untrack_shared_memory(segment)
        array = np.ndarray((length,), dtype=np.dtype(dtype), buffer=segment.buf)
        array.setflags(write=False)
        keepalive = segment
    else:  # pragma: no cover - guarded by the parent
        raise ParameterError(f"unknown column reference kind {kind!r}")
    _WORKER_COLUMNS[ref] = (array, keepalive)
    return array


def _worker_resolve_rows(
    rows_ref: _ArrayRef, lo: int, hi: int
) -> np.ndarray | slice:
    """Materialise this shard's ``[lo, hi)`` piece of the rows block."""
    kind = rows_ref[0]
    if kind == "slice":
        _, start, _stop = rows_ref
        return slice(start + lo, start + hi)
    if kind == "rows":
        _, name, dtype, length = rows_ref
        segment = shared_memory.SharedMemory(name=name)
        try:
            _untrack_shared_memory(segment)
            block = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=segment.buf
            )
            # Copy the shard out so the segment can close immediately:
            # per-call segments are unlinked by the parent after the
            # batch, so nothing worker-side may keep them mapped.
            return np.array(block[lo:hi])
        finally:
            segment.close()
    raise ParameterError(  # pragma: no cover - guarded by the parent
        f"unknown rows reference kind {kind!r}"
    )


def _count_shard(
    column_refs: Sequence[_ArrayRef],
    support_sizes: Sequence[int],
    rows_ref: _ArrayRef,
    lo: int,
    hi: int,
) -> list[np.ndarray]:
    """Worker task: per-column bincount over one row shard."""
    rows = _worker_resolve_rows(rows_ref, lo, hi)
    return [
        np.bincount(_worker_resolve_column(ref)[rows], minlength=support)
        for ref, support in zip(column_refs, support_sizes)
    ]


class ProcessBackend:
    """Row-sharded counting on a pool of worker processes.

    The rows block is split into ``max_workers`` contiguous shards; each
    worker histograms *every* requested column over its shard and the
    parent merges the per-shard counts by int64 summation — integer
    addition is exact, so the merged counts are bit-identical to a
    single-pass ``bincount`` (the property the batch==scalar identity
    suite gates on).

    Data crosses the process boundary without copying the dataset:

    * memory-mapped columns (an :class:`~repro.data.mmap_store.MmapStore`)
      travel as ``(path, dtype, length, offset)`` descriptors — every
      worker opens its own read-only map;
    * in-memory columns are published once per backend lifetime into a
      ``multiprocessing.shared_memory`` segment (cached by the column's
      identity, so repeated batches over the same store pay once);
    * a shuffled rows block is published as a per-call shared-memory
      segment and unlinked as soon as the batch completes; a sequential
      block is just ``(start, stop)``.

    Parameters
    ----------
    max_workers:
        Worker-pool size; defaults to ``os.cpu_count()``.
    min_parallel_cells:
        Batches smaller than this many cells (rows × columns) run on the
        serial kernel in-process — below the threshold the dispatch
        overhead exceeds the counting work.

    Call :meth:`close` to release the pool and the shared-memory
    segments deterministically; garbage collection is the backstop.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        min_parallel_cells: int = 1 << 18,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        if min_parallel_cells < 0:
            raise ParameterError(
                f"min_parallel_cells must be >= 0, got {min_parallel_cells}"
            )
        self._max_workers = max_workers or os.cpu_count() or 1
        self._min_parallel_cells = min_parallel_cells
        self._executor: ProcessPoolExecutor | None = None
        # id(column) -> (pinned column, segment, ref): pinning the array
        # keeps the id stable for the cache's lifetime.
        self._column_segments: dict[int, tuple[np.ndarray, Any, _ArrayRef]] = {}
        self._closed = False

    # -- pool / segment lifecycle --------------------------------------
    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._executor = ProcessPoolExecutor(
                max_workers=self._max_workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(context.get_start_method() != "fork",),
            )
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down and unlink the shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        for _, segment, _ in self._column_segments.values():
            self._release_segment(segment)
        self._column_segments.clear()

    @staticmethod
    def _release_segment(segment: Any) -> None:
        try:
            segment.close()
            segment.unlink()
        except Exception:  # pragma: no cover - already-unlinked races
            pass

    def __enter__(self) -> "ProcessBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- reference building --------------------------------------------
    @staticmethod
    def _memmap_ref(column: np.ndarray) -> _ArrayRef | None:
        """A file descriptor-free reference for a whole-column memmap.

        Only a *fresh* memmap (not a view of one) is referenced by file:
        numpy preserves the parent's ``offset`` on views, so a sliced
        memmap cannot be re-opened faithfully from its attributes and
        falls through to the shared-memory path instead.
        """
        if not isinstance(column, np.memmap):
            return None
        if isinstance(column.base, np.ndarray):
            return None  # a view; offset/shape no longer describe the file
        filename = getattr(column, "filename", None)
        if filename is None or column.ndim != 1:
            return None
        return (
            "mmap",
            str(filename),
            column.dtype.str,
            int(column.shape[0]),
            int(column.offset),
        )

    def _publish_array(self, array: np.ndarray) -> tuple[Any, _ArrayRef]:
        """Copy ``array`` into a fresh shared-memory segment."""
        data = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(create=True, size=max(1, data.nbytes))
        view: np.ndarray = np.ndarray(
            data.shape, dtype=data.dtype, buffer=segment.buf
        )
        view[:] = data
        return segment, ("shm", segment.name, data.dtype.str, int(data.shape[0]))

    def _column_ref(self, column: np.ndarray) -> tuple[_ArrayRef, Any]:
        """Reference for one column; second item is a per-call segment to
        clean up (``None`` when cached or file-backed)."""
        ref = self._memmap_ref(column)
        if ref is not None:
            return ref, None
        cached = self._column_segments.get(id(column))
        if cached is not None:
            return cached[2], None
        segment, ref = self._publish_array(column)
        if len(self._column_segments) < _COLUMN_CACHE_LIMIT:
            self._column_segments[id(column)] = (column, segment, ref)
            return ref, None
        return ref, segment

    # -- the counting call ---------------------------------------------
    def count_columns(
        self,
        columns: Sequence[np.ndarray],
        support_sizes: Sequence[int],
        rows: np.ndarray | slice,
    ) -> list[np.ndarray]:
        if self._closed:
            raise ParameterError("ProcessBackend is closed")
        if not columns:
            return []
        if isinstance(rows, slice):
            start = rows.start or 0
            stop = rows.stop if rows.stop is not None else 0
            num_rows = max(0, stop - start)
        else:
            num_rows = int(rows.shape[0])
        workers = self._max_workers
        if (
            workers == 1
            or num_rows * len(columns) < self._min_parallel_cells
            or num_rows < workers
        ):
            return [
                _count_one(column, rows, support)
                for column, support in zip(columns, support_sizes)
            ]
        transient: list[Any] = []
        try:
            refs: list[_ArrayRef] = []
            for column in columns:
                ref, scratch = self._column_ref(column)
                refs.append(ref)
                if scratch is not None:
                    transient.append(scratch)
            if isinstance(rows, slice):
                rows_ref: _ArrayRef = ("slice", start, stop)
            else:
                segment, published = self._publish_array(rows)
                transient.append(segment)
                rows_ref = ("rows", published[1], published[2], published[3])
            bounds = np.linspace(0, num_rows, workers + 1, dtype=np.int64)
            futures = [
                self._pool().submit(
                    _count_shard,
                    refs,
                    list(support_sizes),
                    rows_ref,
                    int(bounds[i]),
                    int(bounds[i + 1]),
                )
                for i in range(workers)
                if bounds[i] < bounds[i + 1]
            ]
            shards = [future.result() for future in futures]
        finally:
            # Unlink only after every worker finished: a late attach to
            # an already-unlinked name would fail.
            for segment in transient:
                self._release_segment(segment)
        return [
            self._merge_shards([shard[i] for shard in shards])
            for i in range(len(columns))
        ]

    @staticmethod
    def _merge_shards(parts: list[np.ndarray]) -> np.ndarray:
        """Sum per-shard bincounts; int64 addition keeps this exact."""
        width = max(part.shape[0] for part in parts)
        total = np.zeros(width, dtype=np.int64)
        for part in parts:
            total[: part.shape[0]] += part
        return total


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------
#: Name → zero-argument factory. The CLI and :func:`resolve_backend`
#: both read this, so registering a backend updates ``--backend``
#: choices and the ``REPRO_BACKEND`` validation error in one place.
BACKEND_REGISTRY: dict[str, Callable[[], CountingBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[[], CountingBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a counting backend under ``name``.

    ``factory`` is a zero-argument callable (typically the class) run on
    every :func:`resolve_backend` resolution. Registering an existing
    name raises unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ParameterError(f"backend name must be a non-empty string, got {name!r}")
    if name in BACKEND_REGISTRY and not replace:
        raise ParameterError(
            f"backend {name!r} is already registered; pass replace=True to"
            " override it"
        )
    BACKEND_REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """The currently registered backend names, in registration order."""
    return tuple(BACKEND_REGISTRY)


register_backend("numpy", NumpyBackend)
register_backend("threads", ThreadedBackend)
register_backend("process", ProcessBackend)

#: The built-in backend names (a static snapshot; use
#: :func:`backend_names` to include backends registered at runtime).
BACKEND_NAMES = backend_names()

#: One GIL warning per process, not one per resolved sampler.
_THREADS_WARNING_EMITTED = False


def _warn_threads_once() -> None:
    global _THREADS_WARNING_EMITTED
    if _THREADS_WARNING_EMITTED:
        return
    _THREADS_WARNING_EMITTED = True
    warnings.warn(
        "the 'threads' counting backend is GIL-bound for this workload"
        " (measured 1.01x over 'numpy' on the h=64/N=1e6 entropy sweep —"
        " see BENCH_backend.json and docs/ARCHITECTURE.md); use"
        " backend='process' for multi-core scaling",
        GILBoundBackendWarning,
        stacklevel=3,
    )


def resolve_backend(backend: str | CountingBackend | None) -> CountingBackend:
    """Normalise a backend spelling into a :class:`CountingBackend`.

    ``None`` reads the ``REPRO_BACKEND`` environment variable (default
    ``"numpy"``) — which is how CI runs the whole test suite under the
    threaded or process backend without touching call sites. A string
    picks a registered name from :data:`BACKEND_REGISTRY`; anything else
    must already satisfy the protocol and is returned as-is.

    Resolving ``"threads"`` emits a one-per-process
    :class:`GILBoundBackendWarning`: the thread pool cannot scale the
    memory-bound counting kernels past the GIL, and ``"process"`` is the
    backend that does.
    """
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR, "numpy")
    if isinstance(backend, str):
        factory = BACKEND_REGISTRY.get(backend)
        if factory is None:
            raise ParameterError(
                f"unknown counting backend {backend!r}; choose one of"
                f" {backend_names()} or pass a CountingBackend instance"
            )
        if backend == "threads":
            _warn_threads_once()
        return factory()
    if not hasattr(backend, "count_columns"):
        raise ParameterError(
            f"backend {backend!r} does not implement CountingBackend"
            " (missing count_columns)"
        )
    return backend
