"""Per-attribute summaries of a columnar store (categorical `describe`).

Before pointing queries at a dataset it helps to see what is in it: per
attribute the support size, exact empirical entropy, the share of the
most frequent value, and missing-domain information. Used by the
``repro describe`` CLI command and handy in notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import entropy_from_counts
from repro.data.column_store import ColumnStore
from repro.exceptions import SchemaError

__all__ = ["AttributeProfile", "describe_store", "profile_attribute"]


@dataclass(frozen=True)
class AttributeProfile:
    """Summary statistics of one attribute.

    Attributes
    ----------
    attribute:
        Name.
    support_size:
        Declared domain size ``u_α``.
    observed_values:
        Distinct values actually present in the data (≤ support_size).
    entropy:
        Exact empirical entropy in bits.
    max_entropy:
        ``log2(support_size)`` — the ceiling for this domain.
    top_share:
        Fraction of records carrying the most frequent value.
    top_code:
        The code of that value (decode with the dataset's encoder).
    """

    attribute: str
    support_size: int
    observed_values: int
    entropy: float
    max_entropy: float
    top_share: float
    top_code: int

    @property
    def normalized_entropy(self) -> float:
        """``entropy / max_entropy`` in [0, 1] (0 for a 1-value domain)."""
        if self.max_entropy <= 0.0:
            return 0.0
        return self.entropy / self.max_entropy


def profile_attribute(store: ColumnStore, attribute: str) -> AttributeProfile:
    """Profile one attribute of ``store`` (one full column scan)."""
    if attribute not in store:
        raise SchemaError(f"unknown attribute {attribute!r}")
    counts = store.value_counts(attribute)
    total = int(counts.sum())
    support = store.support_size(attribute)
    top_code = int(counts.argmax()) if total else 0
    return AttributeProfile(
        attribute=attribute,
        support_size=support,
        observed_values=int((counts > 0).sum()),
        entropy=entropy_from_counts(counts, total=total),
        max_entropy=float(np.log2(support)) if support > 1 else 0.0,
        top_share=float(counts[top_code]) / total if total else 0.0,
        top_code=top_code,
    )


def describe_store(
    store: ColumnStore, *, sort_by: str = "entropy"
) -> list[AttributeProfile]:
    """Profile every attribute; sort by ``entropy`` (desc) or ``name``."""
    if sort_by not in ("entropy", "name"):
        raise SchemaError(f"sort_by must be 'entropy' or 'name', got {sort_by!r}")
    profiles = [profile_attribute(store, name) for name in store.attributes]
    if sort_by == "entropy":
        profiles.sort(key=lambda p: (-p.entropy, p.attribute))
    else:
        profiles.sort(key=lambda p: p.attribute)
    return profiles
