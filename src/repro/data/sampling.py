"""Sampling-without-replacement substrate (random shuffle + prefix view).

The paper treats a uniformly random subset :math:`\\mathcal{S}` of size ``M``
as *the first M records after a random shuffle* of the input dataset
(Section 2.2). All four SWOPE algorithms, as well as the EntropyRank /
EntropyFilter baselines, grow the sample by extending this prefix — so the
sample of a later iteration always contains the sample of every earlier
iteration, and the martingale argument of Section 3.1 applies.

:class:`PrefixSampler` implements this substrate:

* one random permutation of ``[0, N)`` drawn up front (the shuffle);
* per-attribute occurrence counters ``m_i`` maintained *incrementally*
  (extending the prefix from ``M`` to ``M'`` touches only the ``M' - M``
  new records of each requested attribute — the columnar "sequential
  sampling" the paper describes);
* pairwise joint counters (for empirical mutual information) maintained the
  same way through :class:`repro.data.joint.JointCounter`;
* an exact account of work done (``cells_scanned``) so experiments can
  report a machine-independent cost next to wall-clock time.

The sampler also supports ``sequential=True``, which skips the shuffle and
reads the physical row order directly. The paper does this for cache
friendliness on columnar storage; it is statistically equivalent only when
the physical order is itself exchangeable (true for our synthetic
generators, which emit i.i.d. rows).
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from typing import Protocol

import numpy as np

from repro.data.backends import CountingBackend, resolve_backend
from repro.data.column_store import ColumnSource
from repro.data.joint import JointCounter
from repro.exceptions import ParameterError, SchemaError

__all__ = ["CounterCache", "PrefixSampler"]


class CounterCache(Protocol):
    """Read-side protocol for warm-starting counters from a prior run.

    Implemented by :class:`repro.cache.CachePartition`; defined here so
    the sampler depends only on the shape, not on the cache subsystem.
    Both methods return ``None`` (no usable entry) or a ``(prefix,
    counter)`` pair where ``counted < prefix <= num_rows`` and the
    counter is owned by the caller (safe to extend in place).
    """

    def best_marginal(
        self, name: str, counted: int, num_rows: int
    ) -> tuple[int, np.ndarray] | None:
        """Cached marginal counter for ``name`` within ``(counted, num_rows]``."""
        ...

    def best_joint(
        self, first: str, second: str, counted: int, num_rows: int
    ) -> tuple[int, JointCounter] | None:
        """Cached joint counter for the canonical pair ``(first, second)``."""
        ...


def _as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise a seed argument into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class PrefixSampler:
    """Shuffled prefix view of a :class:`~repro.data.column_store.ColumnSource`
    with incremental counts.

    Parameters
    ----------
    store:
        The dataset to sample from.
    seed:
        Seed or generator for the shuffle. Queries made with the same seed
        on the same store are fully reproducible.
    sequential:
        When true, no shuffle is performed and "sampling M records" means
        reading the first M *physical* rows. Only valid when the physical
        row order is already random/exchangeable.
    retain:
        When true, :meth:`release` becomes a no-op, so counters survive
        the releasing that query loops do when they retire attributes —
        the mode :class:`repro.core.session.QuerySession` uses to let
        later queries reuse earlier queries' samples.
    backend:
        Counting strategy: a :data:`~repro.data.backends.BACKEND_NAMES`
        name, a :class:`~repro.data.backends.CountingBackend` instance,
        or ``None`` to honour the ``REPRO_BACKEND`` environment variable
        (default ``"numpy"``). All backends produce bit-identical counts;
        they differ only in how the per-column work is executed.

    Notes
    -----
    Counters are created lazily per attribute (and per attribute pair), so
    a query over a small candidate set never pays for unrelated columns.
    """

    def __init__(
        self,
        store: ColumnSource,
        seed: int | np.random.Generator | None = None,
        *,
        sequential: bool = False,
        retain: bool = False,
        backend: str | CountingBackend | None = None,
        counter_cache: CounterCache | None = None,
    ) -> None:
        self._store = store
        self._n = store.num_rows
        self._counter_cache = counter_cache
        self._cells_saved = 0
        if sequential:
            self._perm: np.ndarray | None = None
        else:
            rng = _as_generator(seed)
            self._perm = rng.permutation(self._n)
        # attribute -> (rows_counted, counts[u_alpha])
        self._marginals: dict[str, tuple[int, np.ndarray]] = {}
        # (attr_a, attr_b) -> (rows_counted, JointCounter)
        self._joints: dict[tuple[str, str], tuple[int, JointCounter]] = {}
        self._cells_scanned = 0
        self._retain = retain
        self._backend = resolve_backend(backend)
        # Per-iteration permutation-block cache: the [start, stop) slice
        # of the shuffle, materialized once and shared by every column
        # and joint pair extending over the same block.
        self._block_range: tuple[int, int] | None = None
        self._block_rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnSource:
        """The underlying dataset."""
        return self._store

    @property
    def num_rows(self) -> int:
        """``N``, the number of records in the underlying dataset."""
        return self._n

    @property
    def backend(self) -> CountingBackend:
        """The counting backend executing this sampler's batched counts."""
        return self._backend

    @property
    def cells_scanned(self) -> int:
        """Total attribute values read so far (machine-independent cost).

        Every record of every attribute contributes one cell each time it
        is consumed by a counter; a joint counter over a pair consumes two
        cells per record, matching the cost of reading both columns.
        """
        return self._cells_scanned

    @property
    def cells_saved(self) -> int:
        """Cells *not* scanned because a counter cache served the prefix.

        The warm-start complement of :attr:`cells_scanned`: every cached
        row of every attribute that a counter jumped over instead of
        counting, at the same per-cell accounting (two cells per row for
        a joint pair).
        """
        return self._cells_saved

    def attach_counter_cache(self, cache: CounterCache | None) -> None:
        """Set (or clear) the warm-start source consulted by batch counts."""
        self._counter_cache = cache

    def shuffle_fingerprint(self) -> str:
        """sha256 identity of the row order this sampler scans in.

        Counters are a pure function of (dataset, row order, prefix
        length), so cache partitions key on this next to the dataset
        fingerprint. Sequential samplers all share the physical order
        and return the literal marker ``"sequential"``.
        """
        if self._perm is None:
            return "sequential"
        digest = hashlib.sha256(np.ascontiguousarray(self._perm).tobytes())
        return digest.hexdigest()

    @property
    def counted_attributes(self) -> tuple[str, ...]:
        """Attributes holding a live marginal counter, sorted by name.

        Shared-cost introspection for the plan executor and the CLI's
        batch accounting: retained counters are exactly the counts later
        queries get for free.
        """
        return tuple(sorted(self._marginals))

    def counted_prefix(self, name: str) -> int:
        """Rows counted so far for ``name``'s marginal (0 if never counted)."""
        entry = self._marginals.get(name)
        return entry[0] if entry is not None else 0

    # ------------------------------------------------------------------
    # Snapshot / restore (checkpointing substrate)
    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict[str, object]:
        """In-memory snapshot of the sampler's resumable state.

        Captures everything a resumed process needs to continue the scan
        bit-identically: the shuffle itself (``None`` in sequential
        mode), every marginal counter with its counted prefix, every
        joint counter (via :meth:`~repro.data.joint.JointCounter.snapshot`),
        and the cumulative ``cells_scanned`` meter, which downstream
        stats and trace events are derived from. Arrays are returned
        live; serialisation belongs to
        :mod:`repro.durability.checkpoint`. The returned structures must
        not be mutated.
        """
        return {
            "num_rows": self._n,
            "sequential": self._perm is None,
            "permutation": self._perm,
            "cells_scanned": self._cells_scanned,
            "cells_saved": self._cells_saved,
            "marginals": {
                name: {"counted": counted, "counts": counts}
                for name, (counted, counts) in self._marginals.items()
            },
            "joints": [
                {
                    "first": key[0],
                    "second": key[1],
                    "counted": counted,
                    "counter": counter.snapshot(),
                }
                for key, (counted, counter) in self._joints.items()
            ],
        }

    @classmethod
    def from_state(
        cls,
        store: ColumnSource,
        state: dict[str, object],
        *,
        retain: bool = True,
        backend: str | CountingBackend | None = None,
    ) -> "PrefixSampler":
        """Rebuild a sampler over ``store`` from a :meth:`state_snapshot`.

        The restored sampler continues the scan exactly where the
        snapshot left it: same shuffle, same counted prefixes, same
        ``cells_scanned`` meter. Structural mismatches against ``store``
        (row count, counter lengths vs. support sizes, out-of-range
        prefixes) raise :class:`~repro.exceptions.ParameterError` — the
        checkpoint layer's dataset fingerprint should make these
        unreachable, so they guard against hand-edited state only.
        """
        num_rows = int(state["num_rows"])  # type: ignore[arg-type]
        if num_rows != store.num_rows:
            raise ParameterError(
                f"sampler snapshot covers {num_rows} rows but the store has"
                f" {store.num_rows}"
            )
        sequential = bool(state["sequential"])
        sampler = cls(store, sequential=True, retain=retain, backend=backend)
        if not sequential:
            perm = np.asarray(state["permutation"], dtype=np.int64)
            if perm.shape != (num_rows,):
                raise ParameterError(
                    f"snapshot permutation has shape {perm.shape}, expected"
                    f" ({num_rows},)"
                )
            sampler._perm = perm
        marginals = state["marginals"]
        assert isinstance(marginals, dict)
        for name, entry in marginals.items():
            if name not in store:
                raise SchemaError(f"snapshot counts unknown attribute {name!r}")
            counted = int(entry["counted"])
            counts = np.asarray(entry["counts"], dtype=np.int64)
            support = store.support_size(name)
            if counts.shape != (support,):
                raise ParameterError(
                    f"marginal snapshot for {name!r} has shape {counts.shape},"
                    f" expected ({support},)"
                )
            if not 0 <= counted <= num_rows:
                raise ParameterError(
                    f"marginal snapshot for {name!r} counts {counted} rows,"
                    f" outside [0, {num_rows}]"
                )
            sampler._marginals[name] = (counted, counts.copy())
        joints = state["joints"]
        assert isinstance(joints, list)
        for entry in joints:
            first, second = str(entry["first"]), str(entry["second"])
            if first not in store or second not in store:
                raise SchemaError(
                    f"snapshot counts unknown attribute pair ({first!r},"
                    f" {second!r})"
                )
            counted = int(entry["counted"])
            if not 0 <= counted <= num_rows:
                raise ParameterError(
                    f"joint snapshot for ({first!r}, {second!r}) counts"
                    f" {counted} rows, outside [0, {num_rows}]"
                )
            counter = JointCounter.from_snapshot(entry["counter"])
            sampler._joints[(first, second)] = (counted, counter)
        sampler._cells_scanned = int(state["cells_scanned"])  # type: ignore[arg-type]
        sampler._cells_saved = int(state.get("cells_saved", 0))  # type: ignore[arg-type]
        return sampler

    def shuffled_prefix(self, num_rows: int) -> np.ndarray:
        """Return the row indices making up the first ``num_rows`` samples."""
        self._check_prefix(num_rows)
        if self._perm is None:
            return np.arange(num_rows)
        return self._perm[:num_rows]

    def _check_prefix(self, num_rows: int) -> None:
        if not 0 < num_rows <= self._n:
            raise ParameterError(
                f"prefix size must be in [1, {self._n}], got {num_rows}"
            )

    def _prefix_rows(self, start: int, stop: int) -> np.ndarray | slice:
        """Row selector for prefix positions ``start:stop``, cached per block.

        Within one adaptive iteration every live column (and joint pair)
        extends its counts over the same ``[start, stop)`` block of the
        shuffle, so the permutation slice is materialized once and shared
        until a different block is requested. Sequential samplers return
        a plain slice (the physical order needs no gather).
        """
        if self._perm is None:
            return slice(start, stop)
        if self._block_range != (start, stop):
            self._block_range = (start, stop)
            self._block_rows = self._perm[start:stop]
        rows = self._block_rows
        assert rows is not None
        return rows

    def _column_block(self, name: str, start: int, stop: int) -> np.ndarray:
        """Return the encoded values of rows ``start:stop`` of the prefix."""
        col = self._store.column(name)
        return col[self._prefix_rows(start, stop)]

    # ------------------------------------------------------------------
    # Marginal counts
    # ------------------------------------------------------------------
    def marginal_counts(self, name: str, num_rows: int) -> np.ndarray:
        """Occurrence counts ``m_i`` of ``name`` over the first ``num_rows`` samples.

        The returned array is the sampler's live counter — callers must not
        mutate it. Extending the prefix is incremental: only the new block
        of records is read.

        Raises
        ------
        ParameterError
            If ``num_rows`` is smaller than a prefix already counted for
            this attribute (prefixes only grow) or out of range.
        """
        return self.marginal_counts_batch((name,), num_rows)[name]

    def marginal_counts_batch(
        self, names: Sequence[str], num_rows: int
    ) -> dict[str, np.ndarray]:
        """Occurrence counts of several attributes over the same prefix.

        The batched form of :meth:`marginal_counts` (which delegates
        here): one backend pass counts every requested column, with the
        permutation block materialized once and shared. Counts, cost
        accounting, and error behaviour are identical to issuing the
        equivalent scalar calls — attributes whose counters are at
        different prefixes each extend only their own missing block.

        Returns the live counter arrays keyed by name (callers must not
        mutate them); duplicate names collapse to one entry.
        """
        self._check_prefix(num_rows)
        ordered: list[str] = []
        seen: set[str] = set()
        for name in names:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        starts: dict[str, int] = {}
        counters: dict[str, np.ndarray] = {}
        for name in ordered:
            state = self._marginals.get(name)
            if state is None:
                counted = 0
                counts = np.zeros(self._store.support_size(name), dtype=np.int64)
            else:
                counted, counts = state
            if num_rows < counted:
                raise ParameterError(
                    f"prefix for {name!r} already at {counted} rows; cannot"
                    f" shrink to {num_rows} (prefix samples only grow)"
                )
            if self._counter_cache is not None and counted < num_rows:
                served = self._counter_cache.best_marginal(
                    name, counted, num_rows
                )
                if served is not None:
                    # Jump the counter to the cached prefix; the block
                    # below then extends only the remaining rows.
                    counted, counts = served
                    self._cells_saved += counted - (
                        0 if state is None else state[0]
                    )
                    self._marginals[name] = (counted, counts)
            starts[name] = counted
            counters[name] = counts
        # Group extensions by their start offset (counters at different
        # prefixes need different blocks) so each block is gathered once.
        by_start: dict[int, list[str]] = {}
        for name in ordered:
            if starts[name] < num_rows:
                by_start.setdefault(starts[name], []).append(name)
        for start, group in by_start.items():
            rows = self._prefix_rows(start, num_rows)
            fresh = self._backend.count_columns(
                [self._store.column(name) for name in group],
                [counters[name].shape[0] for name in group],
                rows,
            )
            for name, delta in zip(group, fresh):
                counters[name] += delta
                self._cells_scanned += num_rows - start
                self._marginals[name] = (num_rows, counters[name])
        return counters

    # ------------------------------------------------------------------
    # Joint counts
    # ------------------------------------------------------------------
    def joint_counts(self, first: str, second: str, num_rows: int) -> JointCounter:
        """Joint occurrence counts of ``(first, second)`` over the prefix.

        The pair key is order-sensitive only in naming; ``(a, b)`` and
        ``(b, a)`` share one counter internally (joint entropy is
        symmetric).
        """
        return self.joint_counts_batch(first, (second,), num_rows)[second]

    def joint_counts_batch(
        self, first: str, seconds: Sequence[str], num_rows: int
    ) -> dict[str, JointCounter]:
        """Joint counts of ``first`` with each of ``seconds`` over the prefix.

        The batched form of :meth:`joint_counts` (which delegates here):
        the block of ``first`` values for each distinct start offset is
        gathered once and shared by every pair extending over it, as is
        the permutation block itself. Counts, cost accounting, and error
        behaviour are identical to the equivalent scalar calls.

        Returns the live counters keyed by the second attribute's name;
        duplicate names collapse to one entry.
        """
        self._check_prefix(num_rows)
        # first-column blocks gathered so far, keyed by start offset
        first_blocks: dict[int, np.ndarray] = {}
        out: dict[str, JointCounter] = {}
        for second in seconds:
            if second in out:
                continue
            if first == second:
                raise SchemaError(
                    f"joint counts of an attribute with itself ({first!r}) are"
                    " the marginal counts; use marginal_counts()"
                )
            key = (first, second) if first <= second else (second, first)
            state = self._joints.get(key)
            if state is None:
                counted = 0
                counter = JointCounter(
                    self._store.support_size(key[0]),
                    self._store.support_size(key[1]),
                )
            else:
                counted, counter = state
            if num_rows < counted:
                raise ParameterError(
                    f"prefix for pair {key!r} already at {counted} rows; cannot"
                    f" shrink to {num_rows}"
                )
            if self._counter_cache is not None and counted < num_rows:
                served_joint = self._counter_cache.best_joint(
                    key[0], key[1], counted, num_rows
                )
                if served_joint is not None:
                    previous = counted
                    counted, counter = served_joint
                    self._cells_saved += 2 * (counted - previous)
                    self._joints[key] = (counted, counter)
            if num_rows > counted:
                block_first = first_blocks.get(counted)
                if block_first is None:
                    # Cast to the joint counter's code dtype once; every
                    # pair sharing this block then skips its own cast.
                    block_first = self._column_block(
                        first, counted, num_rows
                    ).astype(np.int64)
                    first_blocks[counted] = block_first
                block_second = self._store.column(second)[
                    self._prefix_rows(counted, num_rows)
                ]
                if key[0] == first:
                    counter.update(block_first, block_second)
                else:
                    counter.update(block_second, block_first)
                self._cells_scanned += 2 * (num_rows - counted)
                self._joints[key] = (num_rows, counter)
            out[second] = counter
        return out

    # ------------------------------------------------------------------
    # Cache hygiene
    # ------------------------------------------------------------------
    def release(self, name: str) -> None:
        """Drop the marginal counter of ``name`` (e.g. after pruning).

        Joint counters involving ``name`` are also dropped. Releasing an
        attribute that was never counted is a no-op, as is any release on
        a sampler constructed with ``retain=True``.
        """
        if self._retain:
            return
        self._marginals.pop(name, None)
        for key in [k for k in self._joints if name in k]:
            self._joints.pop(key)
