"""Downstream applications built on the SWOPE queries.

The paper motivates its queries with concrete data-mining tasks; this
subpackage implements three of them end to end:

* :mod:`repro.applications.feature_selection` — Max-Relevance, threshold,
  and greedy mRMR selectors (paper refs [12, 19, 24, 26, 31, 39]);
* :mod:`repro.applications.decision_tree` — ID3-style trees whose split
  choices are MI top-1 queries (paper refs [3, 27, 33]);
* :mod:`repro.applications.clustering` — COOLCAT-style entropy-based
  categorical clustering (paper ref [4]).
"""

from repro.applications.clustering import (
    ClusteringResult,
    coolcat_cluster,
    expected_entropy,
)
from repro.applications.decision_tree import DecisionNode, EntropyTreeClassifier
from repro.applications.feature_selection import (
    SelectionResult,
    cmim_select,
    mrmr_select,
    threshold_select,
    top_relevance_select,
)

__all__ = [
    "ClusteringResult",
    "DecisionNode",
    "EntropyTreeClassifier",
    "SelectionResult",
    "cmim_select",
    "coolcat_cluster",
    "expected_entropy",
    "mrmr_select",
    "threshold_select",
    "top_relevance_select",
]
