"""Entropy-based categorical clustering (COOLCAT-style, paper ref [4]).

Barbará, Li & Couto's COOLCAT (CIKM'02) clusters categorical records by
*expected entropy*: a good clustering is one in which each cluster's
attribute-wise empirical entropies are low (clusters are internally
homogeneous). The algorithm is incremental:

1. **Seeding** — pick ``k`` mutually dissimilar records as singleton
   clusters (greedy farthest-first on record disagreement);
2. **Assignment** — stream the remaining records, placing each in the
   cluster whose entropy grows the least;
3. (optionally) **re-clustering** — re-assign a fraction of the records
   once cluster profiles have stabilised.

The per-cluster bookkeeping is a vector of attribute-value counts — the
same representation the rest of this package uses — so incremental
entropy deltas are O(attributes) per candidate cluster.

This module is an application showcase of the entropy substrate (the
paper cites categorical clustering as a motivating use of empirical
entropy); it is intentionally compact and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import entropy_from_counts
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError

__all__ = ["ClusteringResult", "coolcat_cluster", "expected_entropy"]


@dataclass
class ClusteringResult:
    """Outcome of a clustering run.

    Attributes
    ----------
    assignments:
        Cluster index per record (length ``store.num_rows``).
    num_clusters:
        ``k``.
    expected_entropy:
        The objective value: the size-weighted mean over clusters of the
        sum of attribute entropies within the cluster (lower is better).
    """

    assignments: np.ndarray
    num_clusters: int
    expected_entropy: float

    def cluster_sizes(self) -> np.ndarray:
        """Number of records per cluster."""
        # Histogram of derived cluster labels, not a dataset sample —
        # outside the sampling cost model and the backend seam.
        return np.bincount(  # noqa: SWP009
            self.assignments, minlength=self.num_clusters
        )


class _ClusterProfile:
    """Attribute-value count vectors for one cluster."""

    def __init__(self, store: ColumnStore) -> None:
        self._counts = [
            np.zeros(store.support_size(name), dtype=np.int64)
            for name in store.attributes
        ]
        self.size = 0

    def add(self, record: list[int]) -> None:
        for counts, value in zip(self._counts, record):
            counts[value] += 1
        self.size += 1

    def entropy_sum(self) -> float:
        """Sum over attributes of the cluster's empirical entropies."""
        return sum(entropy_from_counts(c) for c in self._counts)

    def entropy_sum_if_added(self, record: list[int]) -> float:
        """Objective contribution if ``record`` joined this cluster.

        Computed by delta: only the touched value of each attribute
        changes, so each attribute's entropy is recomputed from its
        (small) count vector after a temporary increment.
        """
        total = 0.0
        for counts, value in zip(self._counts, record):
            counts[value] += 1
            total += entropy_from_counts(counts)
            counts[value] -= 1
        return total


def _record(store: ColumnStore, row: int) -> list[int]:
    return [
        int(store.column_block(name, slice(row, row + 1))[0])
        for name in store.attributes
    ]


def _disagreement(a: list[int], b: list[int]) -> int:
    """Number of attributes on which two records differ (Hamming)."""
    return sum(1 for x, y in zip(a, b) if x != y)


def expected_entropy(store: ColumnStore, assignments: np.ndarray, k: int) -> float:
    """The COOLCAT objective of a given clustering (lower is better).

    ``sum_j (|C_j| / N) * sum_attr H(attr | C_j)``.
    """
    assignments = np.asarray(assignments)
    if assignments.shape[0] != store.num_rows:
        raise ParameterError(
            f"assignments length {assignments.shape[0]} != rows {store.num_rows}"
        )
    total = 0.0
    for j in range(k):
        rows = np.nonzero(assignments == j)[0]
        if rows.size == 0:
            continue
        weight = rows.size / store.num_rows
        for name in store.attributes:
            # Per-cluster conditional counts over caller-chosen row
            # subsets: not prefix sampling, so no backend seam applies.
            counts = np.bincount(  # noqa: SWP009
                store.column_block(name, rows), minlength=store.support_size(name)
            )
            total += weight * entropy_from_counts(counts)
    return total


def coolcat_cluster(
    store: ColumnStore,
    k: int,
    *,
    sample_size: int = 200,
    refine_fraction: float = 0.2,
    seed: int | None = 0,
) -> ClusteringResult:
    """Cluster the records of ``store`` into ``k`` groups by expected entropy.

    Parameters
    ----------
    store:
        Encoded categorical records.
    k:
        Number of clusters (``2 <= k <= num_rows``).
    sample_size:
        Size of the seeding sample from which the ``k`` mutually most
        dissimilar records are drawn.
    refine_fraction:
        After the first streaming pass, this fraction of the records
        (the ones whose placement is least certain — largest entropy
        delta margin) is re-assigned once.
    seed:
        Randomness for the seeding sample and streaming order.
    """
    n = store.num_rows
    if not 2 <= k <= n:
        raise ParameterError(f"k must be in [2, {n}], got {k}")
    if sample_size < k:
        raise ParameterError(
            f"sample_size ({sample_size}) must be >= k ({k})"
        )
    if not 0.0 <= refine_fraction <= 1.0:
        raise ParameterError(
            f"refine_fraction must be in [0, 1], got {refine_fraction}"
        )
    rng = np.random.default_rng(seed)

    # --- 1. seeding: greedy farthest-first on a sample -----------------
    sample_rows = rng.choice(n, size=min(sample_size, n), replace=False)
    sample = [_record(store, int(r)) for r in sample_rows]
    seed_idx = [0]
    while len(seed_idx) < k:
        best_pos, best_score = -1, -1
        for pos, record in enumerate(sample):
            if pos in seed_idx:
                continue
            score = min(_disagreement(record, sample[s]) for s in seed_idx)
            if score > best_score:
                best_pos, best_score = pos, score
        seed_idx.append(best_pos)

    profiles = [_ClusterProfile(store) for _ in range(k)]
    assignments = np.full(n, -1, dtype=np.int64)
    for cluster, pos in enumerate(seed_idx):
        row = int(sample_rows[pos])
        profiles[cluster].add(sample[pos])
        assignments[row] = cluster

    # --- 2. streaming assignment ---------------------------------------
    # COOLCAT places each record so as to minimise the *expected entropy*
    # objective Σ_j (|C_j|/N)·Hsum(C_j). Since only one cluster changes,
    # the comparison reduces to the weighted delta
    # (|C_j|+1)·Hsum(C_j ∪ {p}) − |C_j|·Hsum(C_j): the size weighting is
    # what stops a large cluster (whose entropy barely moves per record)
    # from absorbing everything.
    def weighted_delta(profile: _ClusterProfile, record: list[int]) -> float:
        return (profile.size + 1) * profile.entropy_sum_if_added(
            record
        ) - profile.size * profile.entropy_sum()

    order = rng.permutation(n)
    margins = np.zeros(n)
    for row in order:
        row = int(row)
        if assignments[row] != -1:
            continue
        record = _record(store, row)
        deltas = [weighted_delta(p, record) for p in profiles]
        ranked = np.argsort(deltas)
        best = int(ranked[0])
        profiles[best].add(record)
        assignments[row] = best
        margins[row] = (
            deltas[int(ranked[1])] - deltas[best] if k > 1 else np.inf
        )

    # --- 3. one refinement pass over the least-certain records ---------
    if refine_fraction > 0.0:
        num_refine = int(round(refine_fraction * n))
        uncertain = np.argsort(margins)[:num_refine]
        for row in uncertain:
            row = int(row)
            record = _record(store, row)
            current = int(assignments[row])
            deltas = []
            for j, profile in enumerate(profiles):
                if j == current:
                    deltas.append(0.0)  # staying is free
                else:
                    deltas.append(weighted_delta(profile, record))
            best = int(np.argmin(deltas))
            if best != current and profiles[current].size > 1:
                # move the record (counts only; profile removal mirrors add)
                for counts, value in zip(profiles[current]._counts, record):
                    counts[value] -= 1
                profiles[current].size -= 1
                profiles[best].add(record)
                assignments[row] = best

    objective = expected_entropy(store, assignments, k)
    return ClusteringResult(
        assignments=assignments, num_clusters=k, expected_entropy=objective
    )
