"""Information-theoretic feature selection on top of the SWOPE queries.

The paper's introduction motivates the top-k and filtering queries with
feature selection (refs [2, 5, 12, 13, 19, 20, 24, 26, 31, 39]). This
module packages the two classic selectors whose inner loops are exactly
those queries:

* :func:`top_relevance_select` — Max-Relevance: the k features with the
  highest MI against the label (one SWOPE top-k query);
* :func:`mrmr_select` — greedy max-Relevance min-Redundancy (Peng et al.,
  ref [26]): SWOPE supplies the relevance shortlist, redundancy is then
  refined over the (small) shortlist only;
* :func:`threshold_select` — keep every feature whose MI against the
  label clears a threshold (one SWOPE filtering query), the style of
  refs [19, 24, 39].

Each function takes ``engine="swope"`` (default) or ``engine="exact"``
so callers can trade guarantees for certainty, and returns a
:class:`SelectionResult` with the chosen features, their scores, and the
sampling cost actually paid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.exact import (
    exact_mutual_information,
    exact_mutual_informations,
)
from repro.core.conditional import conditional_mutual_information
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError

__all__ = [
    "SelectionResult",
    "cmim_select",
    "mrmr_select",
    "threshold_select",
    "top_relevance_select",
]

_ENGINES = ("swope", "exact")


@dataclass
class SelectionResult:
    """Outcome of a feature-selection run.

    Attributes
    ----------
    features:
        Selected feature names, in selection order (for greedy methods)
        or decreasing score order (for one-shot methods).
    scores:
        The relevance score backing each selection (estimated MI for the
        SWOPE engine, exact MI for the exact engine).
    cells_scanned:
        Total dataset cells read, including redundancy refinement.
    engine:
        Which engine produced the result.
    """

    features: list[str]
    scores: dict[str, float]
    cells_scanned: int
    engine: str
    details: dict[str, float] = field(default_factory=dict)


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ParameterError(f"unknown engine {engine!r}; expected one of {_ENGINES}")


def top_relevance_select(
    store: ColumnStore,
    label: str,
    num_features: int,
    *,
    engine: str = "swope",
    epsilon: float = 0.5,
    seed: int | None = 0,
) -> SelectionResult:
    """Max-Relevance: the ``num_features`` attributes most informative
    about ``label``.

    With ``engine="swope"`` this is a single approximate MI top-k query;
    each returned feature's MI is within the Definition 5 contract of the
    true top scores. With ``engine="exact"`` it is a full scan.
    """
    _check_engine(engine)
    if num_features < 1:
        raise ParameterError(f"num_features must be >= 1, got {num_features}")
    if engine == "swope":
        result = swope_top_k_mutual_information(
            store, label, num_features, epsilon=epsilon, seed=seed
        )
        return SelectionResult(
            features=list(result.attributes),
            scores={e.attribute: e.estimate for e in result.estimates},
            cells_scanned=result.stats.cells_scanned,
            engine=engine,
        )
    scores = exact_mutual_informations(store, label)
    ranked = sorted(scores, key=lambda a: (-scores[a], a))[:num_features]
    cells = (1 + 3 * len(scores)) * store.num_rows
    return SelectionResult(
        features=ranked,
        scores={a: scores[a] for a in ranked},
        cells_scanned=cells,
        engine=engine,
    )


def threshold_select(
    store: ColumnStore,
    label: str,
    threshold: float,
    *,
    engine: str = "swope",
    epsilon: float = 0.5,
    seed: int | None = 0,
) -> SelectionResult:
    """Keep every feature with ``I(label, feature) >= threshold``.

    With the SWOPE engine the answer follows the Definition 6 contract:
    features clearly above ``(1+ε)η`` are guaranteed in, clearly below
    ``(1-ε)η`` guaranteed out.
    """
    _check_engine(engine)
    if engine == "swope":
        result = swope_filter_mutual_information(
            store, label, threshold, epsilon=epsilon, seed=seed
        )
        return SelectionResult(
            features=list(result.attributes),
            scores={
                a: result.estimates[a].estimate for a in result.attributes
            },
            cells_scanned=result.stats.cells_scanned,
            engine=engine,
        )
    scores = exact_mutual_informations(store, label)
    kept = sorted(
        (a for a, s in scores.items() if s >= threshold),
        key=lambda a: (-scores[a], a),
    )
    cells = (1 + 3 * len(scores)) * store.num_rows
    return SelectionResult(
        features=kept,
        scores={a: scores[a] for a in kept},
        cells_scanned=cells,
        engine=engine,
    )


def mrmr_select(
    store: ColumnStore,
    label: str,
    num_features: int,
    *,
    engine: str = "swope",
    shortlist: int | None = None,
    epsilon: float = 0.5,
    seed: int | None = 0,
) -> SelectionResult:
    """Greedy max-Relevance min-Redundancy selection (mRMR, ref [26]).

    At each step the feature maximising
    ``relevance(f) − mean(I(f, already selected))`` is added.

    With ``engine="swope"``, relevance comes from one approximate MI
    top-``shortlist`` query (default shortlist: ``2 · num_features + 2``)
    and the greedy refinement — including exact pairwise redundancy —
    runs only over that shortlist; with ``engine="exact"`` relevance is a
    full scan over all candidates.
    """
    _check_engine(engine)
    if num_features < 1:
        raise ParameterError(f"num_features must be >= 1, got {num_features}")
    if shortlist is None:
        shortlist = 2 * num_features + 2
    if shortlist < num_features:
        raise ParameterError(
            f"shortlist ({shortlist}) must be >= num_features ({num_features})"
        )
    cells = 0
    if engine == "swope":
        top = swope_top_k_mutual_information(
            store, label, shortlist, epsilon=epsilon, seed=seed
        )
        relevance = {e.attribute: e.estimate for e in top.estimates}
        candidates = list(top.attributes)
        cells += top.stats.cells_scanned
    else:
        relevance = exact_mutual_informations(store, label)
        candidates = sorted(relevance, key=lambda a: (-relevance[a], a))
        cells += (1 + 3 * len(relevance)) * store.num_rows

    selected: list[str] = []
    redundancy_cache: dict[tuple[str, str], float] = {}

    def pair_mi(a: str, b: str) -> float:
        nonlocal cells
        key = (a, b) if a <= b else (b, a)
        if key not in redundancy_cache:
            redundancy_cache[key] = exact_mutual_information(store, key[0], key[1])
            cells += 3 * store.num_rows
        return redundancy_cache[key]

    while len(selected) < num_features and candidates:
        best_name: str | None = None
        best_score = float("-inf")
        for name in candidates:
            if selected:
                redundancy = sum(pair_mi(name, s) for s in selected) / len(selected)
            else:
                redundancy = 0.0
            score = relevance[name] - redundancy
            if score > best_score:
                best_name, best_score = name, score
        assert best_name is not None
        selected.append(best_name)
        candidates.remove(best_name)

    return SelectionResult(
        features=selected,
        scores={a: relevance[a] for a in selected},
        cells_scanned=cells,
        engine=engine,
        details={"shortlist": float(shortlist)},
    )


def cmim_select(
    store: ColumnStore,
    label: str,
    num_features: int,
    *,
    engine: str = "swope",
    shortlist: int | None = None,
    epsilon: float = 0.5,
    seed: int | None = 0,
) -> SelectionResult:
    """Greedy Conditional-MI Maximisation (CMIM, Fleuret — paper ref [13]).

    CMIM adds at each step the feature maximising
    ``min over already-selected s of I(f; label | s)`` — a feature is only
    as good as its information about the label that no chosen feature
    already carries. Conditional MI has no SWOPE bound (see
    :mod:`repro.core.conditional`), so the conditional refinement is
    exact; with ``engine="swope"`` the *candidate pool* is first cut to a
    shortlist by one approximate MI top-k query, which is where the
    sampling savings come from.
    """
    _check_engine(engine)
    if num_features < 1:
        raise ParameterError(f"num_features must be >= 1, got {num_features}")
    if shortlist is None:
        shortlist = 2 * num_features + 2
    if shortlist < num_features:
        raise ParameterError(
            f"shortlist ({shortlist}) must be >= num_features ({num_features})"
        )
    cells = 0
    if engine == "swope":
        top = swope_top_k_mutual_information(
            store, label, shortlist, epsilon=epsilon, seed=seed
        )
        relevance = {e.attribute: e.estimate for e in top.estimates}
        candidates = list(top.attributes)
        cells += top.stats.cells_scanned
    else:
        relevance = exact_mutual_informations(store, label)
        candidates = sorted(relevance, key=lambda a: (-relevance[a], a))[:shortlist]
        cells += (1 + 3 * len(relevance)) * store.num_rows

    selected: list[str] = []
    # score[f] = min_s I(f; label | s) over selected s; starts at the
    # unconditional relevance (empty min).
    scores = {name: relevance[name] for name in candidates}
    while len(selected) < num_features and candidates:
        best = max(candidates, key=lambda name: (scores[name], name))
        selected.append(best)
        candidates.remove(best)
        for name in candidates:
            cmi = conditional_mutual_information(store, name, label, best)
            cells += 4 * store.num_rows
            if cmi < scores[name]:
                scores[name] = cmi

    return SelectionResult(
        features=selected,
        scores={a: relevance[a] for a in selected},
        cells_scanned=cells,
        engine=engine,
        details={"shortlist": float(shortlist)},
    )
