"""ID3-style decision-tree learning with SWOPE split selection.

Decision-tree induction (paper refs [3, 27, 33]) chooses at each node the
attribute with the highest information gain about the label — i.e. an
empirical-MI top-1 query over the records reaching that node. This module
provides a small, dependency-free categorical classifier whose split
selection is pluggable: the exact scan (classic ID3) or the SWOPE
approximate top-1 query, which reads only as many records as the bounds
require at each node.

This is an application showcase, not a full ML library: categorical
features only, multi-way splits, no pruning beyond the minimum-gain and
depth/size stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.exact import exact_mutual_informations
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError

__all__ = ["DecisionNode", "EntropyTreeClassifier"]


@dataclass
class DecisionNode:
    """One node of a fitted tree."""

    majority: int
    num_rows: int
    depth: int
    split: str | None = None
    information_gain: float = 0.0
    children: dict[int, "DecisionNode"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.split is None

    def node_count(self) -> int:
        """Total nodes in the subtree rooted here."""
        return 1 + sum(child.node_count() for child in self.children.values())


class EntropyTreeClassifier:
    """A categorical decision tree whose splits are MI top-1 queries.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = 0).
    min_rows:
        Do not split nodes with fewer records than this.
    min_gain:
        Do not split when the best attribute's information gain (exact,
        measured on the node's records) is below this many bits.
    engine:
        ``"swope"`` (approximate top-1 split queries, default) or
        ``"exact"`` (full scans — classic ID3).
    epsilon:
        Error parameter for the SWOPE engine.
    seed:
        Sampler seed (per-node seeds are derived deterministically).
    """

    def __init__(
        self,
        *,
        max_depth: int = 3,
        min_rows: int = 200,
        min_gain: float = 0.01,
        engine: str = "swope",
        epsilon: float = 0.5,
        seed: int = 0,
    ) -> None:
        if max_depth < 0:
            raise ParameterError(f"max_depth must be >= 0, got {max_depth}")
        if min_rows < 1:
            raise ParameterError(f"min_rows must be >= 1, got {min_rows}")
        if min_gain < 0:
            raise ParameterError(f"min_gain must be >= 0, got {min_gain}")
        if engine not in ("swope", "exact"):
            raise ParameterError(f"unknown engine {engine!r}")
        self.max_depth = max_depth
        self.min_rows = min_rows
        self.min_gain = min_gain
        self.engine = engine
        self.epsilon = epsilon
        self.seed = seed
        self.root: DecisionNode | None = None
        self.label: str | None = None
        self.cells_scanned = 0

    # ------------------------------------------------------------------
    def fit(
        self,
        store: ColumnStore,
        label: str,
        *,
        features: list[str] | None = None,
    ) -> "EntropyTreeClassifier":
        """Grow the tree on ``store`` predicting the ``label`` column."""
        if label not in store:
            raise SchemaError(f"unknown label attribute {label!r}")
        if features is None:
            features = [a for a in store.attributes if a != label]
        else:
            unknown = [f for f in features if f not in store]
            if unknown:
                raise SchemaError(f"unknown features: {unknown}")
            if label in features:
                raise ParameterError("the label cannot also be a feature")
        if not features:
            raise ParameterError("need at least one feature to fit a tree")
        self.label = label
        self.cells_scanned = 0
        rows = np.arange(store.num_rows)
        self.root = self._grow(store, rows, list(features), depth=0)
        return self

    def _best_split(
        self, subset: ColumnStore, features: list[str], depth: int
    ) -> tuple[str, float]:
        """Return (attribute, exact information gain) of the chosen split."""
        if self.engine == "swope" and len(features) > 1:
            assert self.label is not None
            result = swope_top_k_mutual_information(
                subset,
                self.label,
                k=1,
                epsilon=self.epsilon,
                seed=self.seed + depth,
                candidates=features,
            )
            self.cells_scanned += result.stats.cells_scanned
            chosen = result.attributes[0]
            # The gain used for the min_gain stopping rule is measured
            # exactly on the node's records (cheap: one pair scan).
            exact = exact_mutual_informations(subset, self.label, [chosen])
            self.cells_scanned += 3 * subset.num_rows
            return chosen, exact[chosen]
        assert self.label is not None
        exact = exact_mutual_informations(subset, self.label, features)
        self.cells_scanned += (1 + 3 * len(features)) * subset.num_rows
        chosen = max(sorted(exact), key=lambda a: exact[a])
        return chosen, exact[chosen]

    def _grow(
        self,
        store: ColumnStore,
        rows: np.ndarray,
        features: list[str],
        depth: int,
    ) -> DecisionNode:
        assert self.label is not None
        labels = store.column_block(self.label, rows)
        # Label histogram over the node's row subset (a tree split, not
        # a sample prefix) — outside the backend seam.
        counts = np.bincount(  # noqa: SWP009
            labels, minlength=store.support_size(self.label)
        )
        node = DecisionNode(
            majority=int(counts.argmax()), num_rows=int(rows.size), depth=depth
        )
        if (
            depth >= self.max_depth
            or rows.size < self.min_rows
            or not features
            or int((counts > 0).sum()) <= 1
        ):
            return node
        subset = store.take(rows)
        chosen, gain = self._best_split(subset, features, depth)
        if gain < self.min_gain:
            return node
        node.split = chosen
        node.information_gain = gain
        remaining = [f for f in features if f != chosen]
        column = store.column_block(chosen, rows)
        for value in np.unique(column):
            child_rows = rows[column == value]
            node.children[int(value)] = self._grow(
                store, child_rows, remaining, depth + 1
            )
        return node

    # ------------------------------------------------------------------
    def predict(self, store: ColumnStore, rows: np.ndarray | None = None) -> np.ndarray:
        """Predict label codes for ``rows`` of ``store`` (default: all)."""
        if self.root is None:
            raise ParameterError("classifier is not fitted")
        if rows is None:
            rows = np.arange(store.num_rows)
        rows = np.asarray(rows)
        out = np.empty(rows.size, dtype=np.int64)
        self._predict_into(self.root, store, rows, np.arange(rows.size), out)
        return out

    def _predict_into(
        self,
        node: DecisionNode,
        store: ColumnStore,
        rows: np.ndarray,
        positions: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if node.is_leaf or not node.children:
            out[positions] = node.majority
            return
        assert node.split is not None
        column = store.column_block(node.split, rows)
        routed = np.zeros(rows.size, dtype=bool)
        for value, child in node.children.items():
            mask = column == value
            if mask.any():
                self._predict_into(
                    child, store, rows[mask], positions[mask], out
                )
                routed |= mask
        # Unseen branch values fall back to this node's majority.
        out[positions[~routed]] = node.majority

    def accuracy(self, store: ColumnStore, rows: np.ndarray | None = None) -> float:
        """Fraction of rows classified correctly against the label column."""
        if self.label is None:
            raise ParameterError("classifier is not fitted")
        if rows is None:
            rows = np.arange(store.num_rows)
        rows = np.asarray(rows)
        predictions = self.predict(store, rows)
        truth = store.column_block(self.label, rows)
        return float((predictions == truth).mean()) if rows.size else 1.0

    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        if self.root is None:
            raise ParameterError("classifier is not fitted")
        return self.root.node_count()
