"""SWOPE approximate top-k query on empirical entropy (Algorithm 1).

Given a dataset, an integer ``k``, an error parameter ``ε`` and a failure
probability ``p_f``, return ``k`` attributes forming an *approximate top-k
answer* per Definition 5 of the paper with probability at least ``1 - p_f``:

* (i) the reported estimate of each returned attribute is at least
  ``(1 - ε)`` times its exact empirical entropy, and
* (ii) the exact entropy of the i-th returned attribute is at least
  ``(1 - ε)`` times the exact i-th largest entropy.

The expected running time is
``O(min{hN, h log(h log N / p_f) log² N / (ε² H(α*_k)²)})`` (Theorem 2) —
adaptively better the larger the k-th entropy is, and independent of the
gap Δ between the k-th and (k+1)-th scores that dominates the exact
EntropyRank baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

import numpy as np

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import TraceTarget
from repro.core.plan import QuerySpec, run_query_spec
from repro.core.results import TopKResult
from repro.core.schedule import SampleSchedule
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.data.sampling import PrefixSampler
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import CachePartition, PlanCache

__all__ = ["swope_top_k_entropy"]


def swope_top_k_entropy(
    store: ColumnSource,
    k: int,
    *,
    epsilon: float = 0.1,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    backend: str | CountingBackend | None = None,
    prune: bool = True,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    cache: "PlanCache | CachePartition | None" = None,
) -> TopKResult:
    """Answer an approximate entropy top-k query with SWOPE (Algorithm 1).

    Parameters
    ----------
    store:
        The dataset to query.
    k:
        Number of attributes to return (clamped to the number of
        candidates).
    epsilon:
        Error parameter of Definition 5. The paper's evaluation default
        for entropy top-k queries is ``0.1``.
    failure_probability:
        ``p_f``; defaults to the paper's ``1/N``.
    seed:
        Seed or generator controlling the random shuffle.
    attributes:
        Restrict the query to these attributes (default: all).
    schedule:
        Override the sample-size schedule (default: paper ``M0`` with
        doubling).
    sampler:
        Provide a pre-built sampler — used by experiments that want
        sequential (non-shuffled) sampling or shared counters.
    backend:
        Counting backend for a freshly built sampler (a
        :data:`~repro.data.backends.BACKEND_NAMES` name, a
        :class:`~repro.data.backends.CountingBackend` instance, or
        ``None`` to honour ``REPRO_BACKEND``). Mutually exclusive with
        ``sampler=``, which already owns its backend. All backends
        return bit-identical results.
    prune:
        Apply candidate pruning (Algorithm 1, lines 15–17).
    budget:
        Optional :class:`~repro.core.budget.QueryBudget` (deadline,
        cell, and sample-size limits) checked once per iteration.
    cancellation:
        Optional :class:`~repro.core.budget.CancellationToken` for
        cooperative cancellation from another thread.
    strict:
        Raise :class:`~repro.exceptions.BudgetExceededError` /
        :class:`~repro.exceptions.QueryCancelledError` on truncation
        instead of returning a best-effort result.
    trace:
        A :class:`~repro.core.engine.QueryTrace` (per-iteration history)
        or a :class:`~repro.obs.sinks.TraceSink` receiving the
        structured event stream — at a fixed seed the JSONL rendering is
        byte-stable (see ``docs/OBSERVABILITY.md``).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` fed the
        run's counters and latency histograms.
    cache:
        Optional :class:`~repro.cache.PlanCache` (or pre-bound
        :class:`~repro.cache.CachePartition`): serves retired answers
        without re-running, warm-starts counters, and absorbs this run's
        results (see :func:`repro.core.plan.run_query_spec`).

    Returns
    -------
    TopKResult
        Returned attributes in decreasing order of their upper bounds,
        with per-attribute estimates, run statistics, and the
        :class:`~repro.core.results.GuaranteeStatus` of the run.
    """
    spec = QuerySpec(
        kind="top_k",
        score="entropy",
        k=k,
        epsilon=epsilon,
        attributes=tuple(attributes) if attributes is not None else None,
        prune=prune,
    )
    return cast(
        TopKResult,
        run_query_spec(
            store, spec,
            failure_probability=failure_probability, seed=seed,
            schedule=schedule, sampler=sampler, backend=backend,
            trace=trace, budget=budget, cancellation=cancellation,
            strict=strict, metrics=metrics, cache=cache,
        ),
    )
