"""Plug-in (maximum-likelihood) estimators for empirical entropy and MI.

These are the score functions the paper's queries rank and filter by
(Definitions 1 and 2):

* empirical entropy  ``H_D(α) = -Σ_i (n_i/N) log2(n_i/N)``
* empirical joint entropy over a pair of attributes
* empirical mutual information ``I = H(α1) + H(α2) - H(α1, α2)``

All functions work directly on occurrence-count arrays, which is the only
data representation the sampling substrate produces; none of them ever see
raw records. Everything is base-2 (bits), matching the paper.

Two bias-aware variants beyond the paper's plug-in estimator are included
(Miller–Madow and jackknife) because downstream users frequently reach for
them; they are *not* used by the SWOPE algorithms, whose bias handling is
the explicit ``b(α)`` term of Lemma 1 (see :mod:`repro.core.bounds`).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import ParameterError

if TYPE_CHECKING:  # import for type checkers only: repro.data imports
    # back into repro.core, so a runtime import here would be circular.
    from repro.data.joint import JointCounter

__all__ = [
    "entropy_from_counts",
    "entropy_from_probabilities",
    "joint_entropy_from_counter",
    "mutual_information_from_counts",
    "miller_madow_entropy",
    "jackknife_entropy",
]


def _validated_counts(counts: np.ndarray) -> np.ndarray:
    arr = np.asarray(counts)
    if arr.ndim != 1:
        raise ParameterError(f"counts must be 1-D, got shape {arr.shape}")
    if arr.size and int(arr.min()) < 0:
        raise ParameterError("counts must be non-negative")
    return arr


def entropy_from_counts(counts: np.ndarray, total: int | None = None) -> float:
    """Plug-in empirical entropy (bits) from occurrence counts.

    Parameters
    ----------
    counts:
        Occurrence counts ``n_i`` (zeros allowed — they contribute nothing).
    total:
        The number of records the counts were taken over. Defaults to
        ``counts.sum()``; pass it explicitly only as a consistency check
        (a mismatch raises :class:`~repro.exceptions.ParameterError`).

    Returns
    -------
    float
        ``-Σ (n_i/total) log2(n_i/total)``; ``0.0`` for an empty or
        single-valued sample. Never negative.
    """
    arr = _validated_counts(counts)
    observed_total = int(arr.sum())
    if total is None:
        total = observed_total
    elif total != observed_total:
        raise ParameterError(
            f"counts sum to {observed_total} but total={total} was declared"
        )
    if total == 0:
        return 0.0
    positive = arr[arr > 0].astype(np.float64)
    p = positive / float(total)
    # max(0, .) guards against -0.0 and tiny negative rounding residue.
    return max(0.0, float(-(p * np.log2(p)).sum()))


def _entropy_from_trusted_counts(counts: np.ndarray, total: int) -> float:
    """Plug-in entropy from counts whose invariants the caller guarantees.

    The same arithmetic as :func:`entropy_from_counts` minus its
    validation passes (ndim/negativity checks and the total
    cross-check each rescan the count vector). The adaptive engine
    calls this on the sampler's own counters — 1-D, non-negative, and
    summing to the prefix size by construction — so skipping the
    validation changes no bits of the result.
    """
    if total == 0:
        return 0.0
    positive = counts[counts > 0].astype(np.float64)
    p = positive / float(total)
    return max(0.0, float(-(p * np.log2(p)).sum()))


def _entropies_from_trusted_counts(
    counts_list: Sequence[np.ndarray], total: int
) -> list[float]:
    """Batched :func:`_entropy_from_trusted_counts` over one shared total.

    One elementwise pass (mask, divide, log) over the concatenation of
    all count vectors instead of a per-vector chain of small NumPy
    calls. Elementwise operations are indifferent to concatenation, and
    each vector's plug-in sum runs over its own contiguous segment —
    same data, same length, same pairwise reduction — so every returned
    entropy is bit-identical to the scalar helper's.
    """
    if total == 0:
        return [0.0] * len(counts_list)
    if len(counts_list) == 1:
        return [_entropy_from_trusted_counts(counts_list[0], total)]
    concat = np.concatenate(counts_list)
    mask = concat > 0
    p = concat[mask].astype(np.float64)
    p /= float(total)
    terms = p * np.log2(p)
    # Segment boundaries in `terms`: cumulative nonzero count at each
    # vector's end within `concat` (integer arithmetic — exact).
    stops = np.cumsum([c.shape[0] for c in counts_list])
    ends = np.cumsum(mask)[stops - 1].tolist()
    reduce_add = np.add.reduce  # what ndarray.sum dispatches to anyway
    entropies: list[float] = []
    start = 0
    for end in ends:
        entropies.append(max(0.0, float(-reduce_add(terms[start:end]))))
        start = end
    return entropies


def entropy_from_probabilities(probabilities: np.ndarray) -> float:
    """Shannon entropy (bits) of an explicit probability vector.

    Used by the synthetic-data generators to hit target entropies; the
    algorithms themselves always work from counts.
    """
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1:
        raise ParameterError(f"probabilities must be 1-D, got shape {p.shape}")
    if p.size == 0:
        raise ParameterError("probability vector must be non-empty")
    if (p < 0).any():
        raise ParameterError("probabilities must be non-negative")
    total = float(p.sum())
    if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-9):
        raise ParameterError(f"probabilities must sum to 1, got {total}")
    positive = p[p > 0]
    return max(0.0, float(-(positive * np.log2(positive)).sum()))


def joint_entropy_from_counter(counter: "JointCounter") -> float:
    """Plug-in empirical joint entropy (bits) from a pair counter."""
    return entropy_from_counts(counter.nonzero_counts(), total=counter.total)


def mutual_information_from_counts(
    counts_first: np.ndarray,
    counts_second: np.ndarray,
    joint: "JointCounter",
) -> float:
    """Plug-in empirical mutual information ``I = H1 + H2 - H12`` (bits).

    The three count sources must cover the same records: totals are checked
    and a mismatch raises :class:`~repro.exceptions.ParameterError`.

    The plug-in MI of a finite sample is mathematically non-negative; tiny
    negative floating-point residue is clamped to ``0.0``.
    """
    total_first = int(np.asarray(counts_first).sum())
    total_second = int(np.asarray(counts_second).sum())
    if not total_first == total_second == joint.total:
        raise ParameterError(
            "count totals disagree:"
            f" first={total_first}, second={total_second}, joint={joint.total}"
        )
    h1 = entropy_from_counts(counts_first)
    h2 = entropy_from_counts(counts_second)
    h12 = joint_entropy_from_counter(joint)
    return max(0.0, h1 + h2 - h12)


def miller_madow_entropy(counts: np.ndarray) -> float:
    """Miller–Madow bias-corrected entropy estimate (bits).

    Adds ``(K - 1) / (2 M ln 2)`` to the plug-in estimate, where ``K`` is
    the number of observed distinct values and ``M`` the sample size. A
    classical first-order correction for the plug-in estimator's downward
    bias; provided as a convenience, not used by SWOPE.
    """
    arr = _validated_counts(counts)
    total = int(arr.sum())
    if total == 0:
        return 0.0
    observed = int((arr > 0).sum())
    correction = (observed - 1) / (2.0 * total * math.log(2.0))
    return entropy_from_counts(arr) + correction


def jackknife_entropy(counts: np.ndarray) -> float:
    """Jackknifed entropy estimate (bits).

    Computes ``M * H - (M - 1) * mean(H_leave_one_out)`` where the
    leave-one-out entropies are aggregated per distinct value (all
    leave-outs of records sharing a value give the same entropy), so the
    cost is ``O(K)`` rather than ``O(M)``.
    """
    arr = _validated_counts(counts)
    total = int(arr.sum())
    if total <= 1:
        return 0.0
    h_full = entropy_from_counts(arr)
    positive = arr[arr > 0].astype(np.float64)
    m = float(total)
    # Leaving out one record of value i turns the count vector's i-th entry
    # from n_i to n_i - 1 and the total from M to M - 1. Entropy of that
    # vector, computed via the decomposition H = log2(M') - S/M' with
    # S = Σ n log2 n over the adjusted counts.
    def _log2_weighted(values: np.ndarray) -> np.ndarray:
        out = np.zeros_like(values)
        mask = values > 0
        out[mask] = values[mask] * np.log2(values[mask])
        return out

    s_full = _log2_weighted(positive).sum()
    s_minus = s_full - _log2_weighted(positive) + _log2_weighted(positive - 1.0)
    h_loo = np.log2(m - 1.0) - s_minus / (m - 1.0)
    mean_loo = float((positive / m * h_loo).sum())
    return max(0.0, m * h_full - (m - 1.0) * mean_loo)
