"""Result and run-statistics types shared by all query algorithms.

Every algorithm in :mod:`repro.core` and :mod:`repro.baselines` returns a
rich result object instead of a bare list of attribute names, so that
examples, tests, and the experiment harness can inspect *how* the answer
was produced: final sample size, number of iterations, cells scanned, and
the per-attribute score estimates with their confidence bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ResultConsistencyError, UnknownAttributeError

__all__ = [
    "AttributeEstimate",
    "GuaranteeStatus",
    "RunStats",
    "STOPPING_REASONS",
    "TopKResult",
    "FilterResult",
]

#: Why an adaptive run returned, in the engine's precedence order.
STOPPING_REASONS = ("converged", "deadline", "cell_budget", "sample_cap", "cancelled")


@dataclass(frozen=True)
class GuaranteeStatus:
    """Whether a query delivered its Definition 5/6 guarantee, and if not, why.

    Every SWOPE query result carries one of these. An unbudgeted,
    uncancelled run always reports ``stopping_reason="converged"`` and
    ``guarantee_met=True``; a run truncated by a
    :class:`~repro.core.budget.QueryBudget` or a
    :class:`~repro.core.budget.CancellationToken` reports the limit that
    fired and the error parameter it *actually* achieved, back-solved
    from the final interval widths.

    Attributes
    ----------
    guarantee_met:
        True iff the paper's stopping rule fired (equivalently,
        ``stopping_reason == "converged"``).
    stopping_reason:
        One of :data:`STOPPING_REASONS`: ``converged`` (the stopping
        rule fired), ``deadline`` (wall-clock budget), ``cell_budget``
        (cells-scanned budget), ``sample_cap`` (sample-size budget), or
        ``cancelled`` (cooperative cancellation).
    requested_epsilon:
        The ``ε`` the caller asked for.
    achieved_epsilon:
        The smallest ``ε`` for which the returned answer satisfies the
        Definition 5/6 contract given the final intervals. For top-k
        this is ``w_max / Ū_k`` (the stopping quantity itself), so a
        converged run reports a value ``<= requested_epsilon``; a
        truncated run reports the (larger, but still finite and valid)
        value the intervals support. For filtering, converged runs
        report the requested ``ε`` and truncated runs the width-implied
        ``max(ε, w_max / 2η)`` over the undecided attributes.
    undecided:
        Filtering only: attributes whose interval still straddled the
        threshold band when the run stopped. They are resolved
        best-effort (by interval midpoint) in the returned answer, but
        carry no Definition 6 guarantee. Empty for top-k queries and for
        converged runs.
    """

    guarantee_met: bool
    stopping_reason: str
    requested_epsilon: float
    achieved_epsilon: float
    undecided: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.stopping_reason not in STOPPING_REASONS:
            raise ResultConsistencyError(
                f"unknown stopping reason {self.stopping_reason!r};"
                f" expected one of {STOPPING_REASONS}"
            )
        if self.guarantee_met != (self.stopping_reason == "converged"):
            raise ResultConsistencyError(
                "guarantee_met must mirror stopping_reason == 'converged';"
                f" got guarantee_met={self.guarantee_met} with"
                f" stopping_reason={self.stopping_reason!r}"
            )


@dataclass(frozen=True)
class AttributeEstimate:
    """Final state of one attribute's score estimate when a query returned.

    Attributes
    ----------
    attribute:
        Attribute name (for MI queries, the candidate attribute — the
        target is recorded on the result object).
    estimate:
        The point estimate the algorithm would report (interval midpoint
        for SWOPE, plug-in sample score for the baselines, exact score for
        the exact algorithm).
    lower, upper:
        Confidence bounds at the moment the attribute's fate was decided.
        For exact computation ``lower == estimate == upper``.
    sample_size:
        Sample size at which the attribute was last evaluated.
    """

    attribute: str
    estimate: float
    lower: float
    upper: float
    sample_size: int

    def __post_init__(self) -> None:
        if not self.lower <= self.upper:
            raise ResultConsistencyError(
                f"estimate bounds inverted for {self.attribute!r}:"
                f" [{self.lower}, {self.upper}]"
            )


@dataclass
class RunStats:
    """Work accounting for one query execution.

    Attributes
    ----------
    iterations:
        Number of sampling iterations executed (1 for the exact baseline).
    final_sample_size:
        ``M`` when the algorithm stopped (equals ``N`` for exact).
    population_size:
        ``N`` of the queried dataset.
    cells_scanned:
        Total attribute values read from the dataset — the
        machine-independent cost metric reported next to wall-clock time
        in the experiment harness.
    wall_seconds:
        Wall-clock duration of the query as measured by the algorithm
        itself (monotonic clock).
    candidates_pruned:
        Attributes eliminated from the candidate set before the final
        iteration (0 when pruning is disabled or never fires).
    counting_seconds:
        Wall-clock time spent gathering and histogramming sample blocks
        (the data-touching phase charged by the cells-scanned model).
        Zero for algorithms that do not report phase timings.
    bounds_seconds:
        Wall-clock time spent computing entropies and Lemma 1–3
        confidence intervals from the counts. Zero when not reported.
    trace_event_count:
        Number of structured trace events the run emitted to its
        :class:`~repro.obs.sinks.TraceSink` (0 when tracing was disabled
        or a legacy :class:`~repro.core.engine.QueryTrace` was used).
    cells_saved:
        Attribute values *not* read because the plan cache supplied them
        (warm-started counters, or a whole served answer). The
        cache-efficiency complement of ``cells_scanned``: a cold run has
        0 here, and ``cells_scanned + cells_saved`` approximates what
        the same query would have cost cold.
    """

    iterations: int = 0
    final_sample_size: int = 0
    population_size: int = 0
    cells_scanned: int = 0
    wall_seconds: float = 0.0
    candidates_pruned: int = 0
    counting_seconds: float = 0.0
    bounds_seconds: float = 0.0
    trace_event_count: int = 0
    cells_saved: int = 0

    @property
    def sample_fraction(self) -> float:
        """``M / N`` at termination — 1.0 means the whole dataset was read."""
        if self.population_size == 0:
            return 0.0
        return self.final_sample_size / self.population_size

    @property
    def loop_seconds(self) -> float:
        """Wall-clock time outside counting and bounds (stopping rules,
        pruning, tracing — the interpreted part of the adaptive loop)."""
        return max(0.0, self.wall_seconds - self.counting_seconds - self.bounds_seconds)


@dataclass
class TopKResult:
    """Answer of a top-k query (entropy or mutual information).

    Attributes
    ----------
    attributes:
        The returned attribute names, ordered by decreasing score
        estimate (the paper orders the approximate answer by upper bound;
        exact algorithms by exact score).
    estimates:
        One :class:`AttributeEstimate` per returned attribute, same order.
    stats:
        Work accounting for the run.
    target:
        The target attribute ``α_t`` for MI queries; ``None`` for entropy.
    k:
        The requested ``k`` (may exceed ``len(attributes)`` when the
        dataset has fewer candidates than ``k``).
    guarantee:
        :class:`GuaranteeStatus` of the run. Always set by the SWOPE
        queries; ``None`` for exact/baseline algorithms, which have no
        sampling guarantee to report.
    """

    attributes: list[str]
    estimates: list[AttributeEstimate]
    stats: RunStats
    k: int
    target: str | None = None
    guarantee: GuaranteeStatus | None = None

    def __post_init__(self) -> None:
        if len(self.attributes) != len(self.estimates):
            raise ResultConsistencyError(
                f"{len(self.attributes)} attributes but"
                f" {len(self.estimates)} estimates"
            )

    def estimate_of(self, attribute: str) -> AttributeEstimate:
        """Look up the estimate of one returned attribute by name."""
        for est in self.estimates:
            if est.attribute == attribute:
                return est
        raise UnknownAttributeError(
            f"attribute {attribute!r} is not part of this answer"
        )

    def scores(self) -> dict[str, float]:
        """``{attribute: point estimate}`` for the returned attributes."""
        return {est.attribute: est.estimate for est in self.estimates}


@dataclass
class FilterResult:
    """Answer of a filtering (threshold) query.

    Attributes
    ----------
    attributes:
        The returned set of attribute names, ordered by decreasing score
        estimate.
    estimates:
        Estimates for *every* attribute the query examined (returned and
        rejected alike), keyed by name — useful for diagnostics and for
        the accuracy metrics.
    stats:
        Work accounting for the run.
    threshold:
        The query threshold ``η``.
    target:
        The target attribute for MI queries; ``None`` for entropy.
    guarantee:
        :class:`GuaranteeStatus` of the run (``None`` for baselines).
        Truncated runs list their unresolved attributes in
        ``guarantee.undecided``.
    """

    attributes: list[str]
    estimates: dict[str, AttributeEstimate] = field(default_factory=dict)
    stats: RunStats = field(default_factory=RunStats)
    threshold: float = 0.0
    target: str | None = None
    guarantee: GuaranteeStatus | None = None

    def __contains__(self, attribute: object) -> bool:
        return attribute in set(self.attributes)

    def answer_set(self) -> frozenset[str]:
        """The returned attributes as a set (order-free comparisons)."""
        return frozenset(self.attributes)
