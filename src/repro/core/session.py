"""Query sessions: amortise sampling across several queries.

The prefix-sampling substrate makes samples *reusable*: the counts
accumulated for one query's sample prefix are exactly the counts a later
query needs for its own prefix of the same shuffle. A
:class:`QuerySession` wraps one store and one
:class:`~repro.data.sampling.PrefixSampler` (in counter-retaining mode)
and exposes the four SWOPE queries over them:

>>> session = QuerySession(store, seed=0)          # doctest: +SKIP
>>> session.top_k_entropy(5)                       # pays for its sample
>>> session.filter_entropy(2.0)                    # reuses those counts
>>> session.filter_entropy(1.0)                    # marginal cost ~ 0

Two mechanisms make this work:

* the shared sampler keeps every counter alive (``retain=True``), so a
  later query's request for the same prefix costs nothing;
* the session *ratchets* the starting sample size: each query's schedule
  begins at the largest ``M`` any earlier query reached (prefix counters
  can only grow). Starting a query at a larger-than-``M0`` sample is
  statistically harmless — the Lemma 3 interval at a larger ``M`` is
  simply tighter, and the per-round failure budget is computed from the
  (shorter) actual schedule.

``marginal_cells()`` exposes the incremental cost of the latest query.

Statistical note: every query individually retains its Definition 5/6
guarantee — each is analysed against the (single) random shuffle, and the
union bound inside each query covers all of its own bound evaluations.
What reuse *does* introduce is dependence **between** queries' errors
(they share one shuffle); if you need independent failure events across
queries, give each its own seeded session.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

import numpy as np

from repro.core.budget import QueryBudget
from repro.core.engine import default_failure_probability
from repro.core.filtering import swope_filter_entropy
from repro.exceptions import QueryInterruptedError
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.results import FilterResult, TopKResult
from repro.core.schedule import SampleSchedule, initial_sample_size
from repro.core.topk import swope_top_k_entropy
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnStore
from repro.data.sampling import PrefixSampler
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import TraceSink

__all__ = ["QuerySession"]

_ResultT = TypeVar("_ResultT", TopKResult, FilterResult)


class QuerySession:
    """A store plus a shared sampler; queries reuse each other's samples.

    Parameters
    ----------
    store:
        The dataset to query.
    seed:
        Seed for the single shuffle all queries share.
    sequential:
        Read physical row order instead of shuffling (only valid when the
        physical order is already exchangeable).
    failure_probability:
        ``p_f`` used by every query of the session (default: the paper's
        ``1/N``).
    budget:
        Default :class:`~repro.core.budget.QueryBudget` applied to every
        query of the session. Any query can override it by passing its
        own ``budget=`` (including ``budget=None`` to lift the limit for
        that query). Truncated queries still ratchet the sample floor —
        the prefix counters they grew stay valid for later queries.
    backend:
        Counting backend of the shared sampler (a
        :data:`~repro.data.backends.BACKEND_NAMES` name, a
        :class:`~repro.data.backends.CountingBackend` instance, or
        ``None`` to honour ``REPRO_BACKEND``). Every query of the
        session counts through it; results are bit-identical across
        backends.
    trace:
        Default :class:`~repro.obs.sinks.TraceSink` receiving every
        query's structured event stream. Any query can override it by
        passing its own ``trace=`` (including ``trace=None`` to silence
        one query).
    metrics:
        Default :class:`~repro.obs.metrics.MetricsRegistry` aggregating
        counters and latency histograms across the session's queries.
        Per-query ``metrics=`` overrides apply as for ``trace=``.
    """

    def __init__(
        self,
        store: ColumnStore,
        *,
        seed: int | np.random.Generator | None = None,
        sequential: bool = False,
        failure_probability: float | None = None,
        budget: QueryBudget | None = None,
        backend: str | CountingBackend | None = None,
        trace: TraceSink | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._store = store
        self._sampler = PrefixSampler(
            store, seed=seed, sequential=sequential, retain=True, backend=backend
        )
        self._failure = (
            failure_probability
            if failure_probability is not None
            else default_failure_probability(store.num_rows)
        )
        self._budget = budget
        self._trace = trace
        self._metrics = metrics
        self._floor = 0  # largest M any query has reached so far
        self._queries_run = 0
        self._last_cells = 0

    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnStore:
        """The wrapped dataset."""
        return self._store

    @property
    def cells_scanned(self) -> int:
        """Cumulative unique cells read across all queries so far."""
        return self._sampler.cells_scanned

    @property
    def queries_run(self) -> int:
        """Number of queries answered by this session."""
        return self._queries_run

    @property
    def sample_floor(self) -> int:
        """The ratcheted starting sample size for the next query."""
        return self._floor

    def marginal_cells(self) -> int:
        """Cells added by the most recent query (0 before any query)."""
        return self._last_cells

    @property
    def default_budget(self) -> QueryBudget | None:
        """The session-wide budget applied when a query passes none."""
        return self._budget

    @property
    def default_trace(self) -> TraceSink | None:
        """The session-wide trace sink applied when a query passes none."""
        return self._trace

    @property
    def default_metrics(self) -> MetricsRegistry | None:
        """The session-wide metrics registry applied when a query passes none."""
        return self._metrics

    # ------------------------------------------------------------------
    def _schedule(self, num_attributes: int, max_support: int) -> SampleSchedule:
        """A paper schedule whose start is ratcheted to the session floor."""
        m0 = initial_sample_size(
            self._store.num_rows, num_attributes, self._failure, max_support
        )
        start = min(self._store.num_rows, max(m0, self._floor))
        return SampleSchedule.for_query(
            self._store.num_rows,
            num_attributes,
            self._failure,
            max_support,
            initial_size=start,
        )

    def _run(
        self,
        runner: Callable[[SampleSchedule], _ResultT],
        names: list[str],
    ) -> _ResultT:
        schedule = self._schedule(
            len(names), max(self._store.support_size(a) for a in names)
        )
        before = self._sampler.cells_scanned
        try:
            result = runner(schedule)
        except QueryInterruptedError as exc:
            # Strict-mode truncation: the shared prefix counters have
            # already grown, so the floor must ratchet to the partial
            # result's sample size or a later query would ask the
            # sampler to shrink a prefix.
            if exc.partial is not None:
                self._floor = max(self._floor, exc.partial.stats.final_sample_size)
            self._last_cells = self._sampler.cells_scanned - before
            raise
        self._queries_run += 1
        self._last_cells = self._sampler.cells_scanned - before
        self._floor = max(self._floor, result.stats.final_sample_size)
        return result

    # ------------------------------------------------------------------
    def top_k_entropy(self, k: int, **kwargs: Any) -> TopKResult:
        """Algorithm 1 over the shared sampler. Keywords as in
        :func:`repro.core.topk.swope_top_k_entropy` (minus seed/sampler/
        schedule/failure_probability, which the session owns). Pruning is
        off by default — pruning would release shared counters."""
        names = kwargs.pop("attributes", None) or list(self._store.attributes)
        kwargs.setdefault("prune", False)
        kwargs.setdefault("budget", self._budget)
        kwargs.setdefault("trace", self._trace)
        kwargs.setdefault("metrics", self._metrics)
        return self._run(
            lambda schedule: swope_top_k_entropy(
                self._store, k, attributes=names, sampler=self._sampler,
                schedule=schedule, failure_probability=self._failure, **kwargs,
            ),
            names,
        )

    def filter_entropy(self, threshold: float, **kwargs: Any) -> FilterResult:
        """Algorithm 2 over the shared sampler."""
        names = kwargs.pop("attributes", None) or list(self._store.attributes)
        kwargs.setdefault("budget", self._budget)
        kwargs.setdefault("trace", self._trace)
        kwargs.setdefault("metrics", self._metrics)
        return self._run(
            lambda schedule: swope_filter_entropy(
                self._store, threshold, attributes=names, sampler=self._sampler,
                schedule=schedule, failure_probability=self._failure, **kwargs,
            ),
            names,
        )

    def top_k_mutual_information(
        self, target: str, k: int, **kwargs: Any
    ) -> TopKResult:
        """Algorithm 3 over the shared sampler (pruning off by default)."""
        names = kwargs.pop("candidates", None) or [
            a for a in self._store.attributes if a != target
        ]
        kwargs.setdefault("prune", False)
        kwargs.setdefault("budget", self._budget)
        kwargs.setdefault("trace", self._trace)
        kwargs.setdefault("metrics", self._metrics)
        return self._run(
            lambda schedule: swope_top_k_mutual_information(
                self._store, target, k, candidates=names, sampler=self._sampler,
                schedule=schedule, failure_probability=self._failure, **kwargs,
            ),
            [target, *names],
        )

    def filter_mutual_information(
        self, target: str, threshold: float, **kwargs: Any
    ) -> FilterResult:
        """Algorithm 4 over the shared sampler."""
        names = kwargs.pop("candidates", None) or [
            a for a in self._store.attributes if a != target
        ]
        kwargs.setdefault("budget", self._budget)
        kwargs.setdefault("trace", self._trace)
        kwargs.setdefault("metrics", self._metrics)
        return self._run(
            lambda schedule: swope_filter_mutual_information(
                self._store, target, threshold, candidates=names,
                sampler=self._sampler, schedule=schedule,
                failure_probability=self._failure, **kwargs,
            ),
            [target, *names],
        )
