"""Query sessions: amortise sampling across several queries.

The prefix-sampling substrate makes samples *reusable*: the counts
accumulated for one query's sample prefix are exactly the counts a later
query needs for its own prefix of the same shuffle. A
:class:`QuerySession` wraps one store and one
:class:`~repro.data.sampling.PrefixSampler` (in counter-retaining mode)
and exposes the four SWOPE queries over them:

>>> session = QuerySession(store, seed=0)          # doctest: +SKIP
>>> session.top_k_entropy(5)                       # pays for its sample
>>> session.filter_entropy(2.0)                    # reuses those counts
>>> session.filter_entropy(1.0)                    # marginal cost ~ 0

Since the planner landed, the session is a thin façade over
:class:`~repro.core.plan.PlanExecutor`: each query method builds a
declarative :class:`~repro.core.plan.QuerySpec` and hands it to the
executor, which owns the shared sampler and the two mechanisms that make
reuse work:

* the shared sampler keeps every counter alive (``retain=True``), so a
  later query's request for the same prefix costs nothing;
* the executor *ratchets* the starting sample size: each query's
  schedule begins at the largest ``M`` any earlier query reached (prefix
  counters can only grow). Starting a query at a larger-than-``M0``
  sample is statistically harmless — the Lemma 3 interval at a larger
  ``M`` is simply tighter, and the per-round failure budget is computed
  from the (shorter) actual schedule.

``marginal_cells()`` exposes the incremental cost of the latest query,
and :meth:`QuerySession.run_plan` executes a whole heterogeneous batch
over the session's sampler in one shared scan.

Statistical note: every query individually retains its Definition 5/6
guarantee — each is analysed against the (single) random shuffle, and the
union bound inside each query covers all of its own bound evaluations.
What reuse *does* introduce is dependence **between** queries' errors
(they share one shuffle); if you need independent failure events across
queries, give each its own seeded session.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence, cast

import numpy as np

from repro.core.budget import QueryBudget
from repro.core.plan import (
    PlanExecutor,
    PlanResult,
    QueryPlan,
    QuerySpec,
    plan_queries,
)
from repro.core.results import FilterResult, TopKResult
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import PlanCache

__all__ = ["QuerySession"]


class QuerySession:
    """A store plus a shared sampler; queries reuse each other's samples.

    Parameters
    ----------
    store:
        The dataset to query.
    seed:
        Seed for the single shuffle all queries share.
    sequential:
        Read physical row order instead of shuffling (only valid when the
        physical order is already exchangeable).
    failure_probability:
        ``p_f`` used by every query of the session (default: the paper's
        ``1/N``).
    budget:
        Default :class:`~repro.core.budget.QueryBudget` applied to every
        query of the session. Any query can override it by passing its
        own ``budget=`` (including ``budget=None`` to lift the limit for
        that query). Truncated queries still ratchet the sample floor —
        the prefix counters they grew stay valid for later queries.
    backend:
        Counting backend of the shared sampler (a
        :data:`~repro.data.backends.BACKEND_NAMES` name, a
        :class:`~repro.data.backends.CountingBackend` instance, or
        ``None`` to honour ``REPRO_BACKEND``). Every query of the
        session counts through it; results are bit-identical across
        backends.
    trace:
        Default :class:`~repro.obs.sinks.TraceSink` receiving every
        query's structured event stream. Any query can override it by
        passing its own ``trace=`` (including ``trace=None`` to silence
        one query).
    metrics:
        Default :class:`~repro.obs.metrics.MetricsRegistry` aggregating
        counters and latency histograms across the session's queries.
        Per-query ``metrics=`` overrides apply as for ``trace=``.
    cache:
        A :class:`~repro.cache.PlanCache` consulted before each query
        and fed after each converged one (see
        :class:`~repro.core.plan.PlanExecutor`). ``cache_dir`` is the
        directory-path convenience form; pass at most one of the two.
    """

    def __init__(
        self,
        store: ColumnSource,
        *,
        seed: int | np.random.Generator | None = None,
        sequential: bool = False,
        failure_probability: float | None = None,
        budget: QueryBudget | None = None,
        backend: str | CountingBackend | None = None,
        trace: TraceSink | None = None,
        metrics: MetricsRegistry | None = None,
        cache: "PlanCache | None" = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self._store = store
        self._executor = PlanExecutor(
            store,
            seed=seed,
            sequential=sequential,
            failure_probability=failure_probability,
            budget=budget,
            backend=backend,
            trace=trace,
            metrics=metrics,
            cache=cache,
            cache_dir=cache_dir,
        )

    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnSource:
        """The wrapped dataset."""
        return self._store

    @property
    def executor(self) -> PlanExecutor:
        """The shared-scan executor every query of the session runs on."""
        return self._executor

    @property
    def cells_scanned(self) -> int:
        """Cumulative unique cells read across all queries so far."""
        return self._executor.cells_scanned

    @property
    def queries_run(self) -> int:
        """Number of queries answered by this session."""
        return self._executor.queries_run

    @property
    def sample_floor(self) -> int:
        """The ratcheted starting sample size for the next query."""
        return self._executor.sample_floor

    def marginal_cells(self) -> int:
        """Cells added by the most recent query (0 before any query)."""
        return self._executor.marginal_cells()

    @property
    def default_budget(self) -> QueryBudget | None:
        """The session-wide budget applied when a query passes none."""
        return self._executor.default_budget

    @property
    def default_trace(self) -> TraceSink | None:
        """The session-wide trace sink applied when a query passes none."""
        return self._executor.default_trace

    @property
    def default_metrics(self) -> MetricsRegistry | None:
        """The session-wide metrics registry applied when a query passes none."""
        return self._executor.default_metrics

    # ------------------------------------------------------------------
    def run_plan(
        self, specs: Sequence[QuerySpec] | QueryPlan, **kwargs: Any
    ) -> PlanResult:
        """Execute a whole batch over the session's sampler in one scan.

        Accepts raw :class:`~repro.core.plan.QuerySpec` objects (planned
        against the session's store via
        :func:`~repro.core.plan.plan_queries`) or a pre-built
        :class:`~repro.core.plan.QueryPlan`. Keywords as in
        :meth:`repro.core.plan.PlanExecutor.execute`.
        """
        plan = (
            specs
            if isinstance(specs, QueryPlan)
            else plan_queries(self._store, list(specs))
        )
        return self._executor.execute(plan, **kwargs)

    # ------------------------------------------------------------------
    def top_k_entropy(self, k: int, **kwargs: Any) -> TopKResult:
        """Algorithm 1 over the shared sampler. Keywords as in
        :func:`repro.core.topk.swope_top_k_entropy` (minus seed/sampler/
        schedule/failure_probability, which the session owns). Pruning is
        off by default — pruning would release shared counters."""
        names = kwargs.pop("attributes", None) or list(self._store.attributes)
        spec = QuerySpec(
            kind="top_k",
            score="entropy",
            k=k,
            epsilon=kwargs.pop("epsilon", None),
            attributes=tuple(names),
            prune=kwargs.pop("prune", False),
        )
        return cast(TopKResult, self._executor.execute_one(spec, **kwargs))

    def filter_entropy(self, threshold: float, **kwargs: Any) -> FilterResult:
        """Algorithm 2 over the shared sampler."""
        names = kwargs.pop("attributes", None) or list(self._store.attributes)
        spec = QuerySpec(
            kind="filter",
            score="entropy",
            threshold=threshold,
            epsilon=kwargs.pop("epsilon", None),
            attributes=tuple(names),
        )
        return cast(FilterResult, self._executor.execute_one(spec, **kwargs))

    def top_k_mutual_information(
        self, target: str, k: int, **kwargs: Any
    ) -> TopKResult:
        """Algorithm 3 over the shared sampler (pruning off by default)."""
        names = kwargs.pop("candidates", None) or [
            a for a in self._store.attributes if a != target
        ]
        spec = QuerySpec(
            kind="top_k",
            score="mutual_information",
            k=k,
            epsilon=kwargs.pop("epsilon", None),
            target=target,
            attributes=tuple(names),
            prune=kwargs.pop("prune", False),
        )
        return cast(TopKResult, self._executor.execute_one(spec, **kwargs))

    def filter_mutual_information(
        self, target: str, threshold: float, **kwargs: Any
    ) -> FilterResult:
        """Algorithm 4 over the shared sampler."""
        names = kwargs.pop("candidates", None) or [
            a for a in self._store.attributes if a != target
        ]
        spec = QuerySpec(
            kind="filter",
            score="mutual_information",
            threshold=threshold,
            epsilon=kwargs.pop("epsilon", None),
            target=target,
            attributes=tuple(names),
        )
        return cast(FilterResult, self._executor.execute_one(spec, **kwargs))
