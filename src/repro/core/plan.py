"""Query plans: declarative specs, a planner, and a shared-scan executor.

The paper's four algorithms share one substrate — a prefix of a single
row shuffle and the counts over it — so a *batch* of entropy/MI top-k
and filtering queries over the same table should share every counting
pass. This module is that batch-serving layer:

* :class:`QuerySpec` — one query, declaratively: ``kind`` (``top_k`` or
  ``filter``) × ``score`` (``entropy`` or ``mutual_information``) plus
  the per-kind parameters (``k``, ``threshold``, ``epsilon``,
  ``target``, ``attributes``). :func:`load_plan` parses a JSON file of
  specs for the CLI's ``--queries`` batch mode.
* :func:`plan_queries` — validate, normalise, and dedup a spec list
  into a :class:`QueryPlan`: every candidate list resolved against the
  store, epsilons filled from the paper defaults, and the plan's count
  requirements grouped into ``marginal_attributes`` (ordered union of
  marginal counters) and ``joint_targets`` (per-target joint groups).
  Structural problems raise :class:`~repro.exceptions.PlanError` here,
  not as late ``KeyError``\\ s deep in the adaptive loop.
* :class:`PlanExecutor` — run plans over one shared, counter-retaining
  :class:`~repro.data.sampling.PrefixSampler`. Each needed count is
  fetched exactly once via the batched backend API: the first query
  pays for the prefix counters it grows, later queries reuse them and
  only pay for counters (or prefix extensions) the batch has not seen.
  Queries retire individually as their Definition 5/6 stopping rules
  fire; per-query failure budgets stay per-query, so every result keeps
  its own paper guarantee. Budgets and cancellation apply plan-wide,
  degrading per-query with an honest
  :class:`~repro.core.results.GuaranteeStatus`.

Scheduling note (why "interleaved" is a ratchet, not strict lock-step):
the executor starts each query's schedule at
``min(N, max(M0, floor))`` where ``floor`` is the largest sample size
any earlier query of the batch reached. Later queries therefore join
the scan at the frontier the batch has already paid for — their early,
cheap iterations collapse into counter reuse — while each query's
per-round failure budget is computed from its own (shorter) actual
schedule, exactly as in :class:`~repro.core.session.QuerySession`.
This keeps every single-spec plan bit-identical to its legacy
``swope_*`` call and a mixed plan bit-identical to the same queries run
sequentially in a fresh session at the same seed (the regression suite
in ``tests/test_plan.py`` pins both).

Statistical note: each query's guarantee is individually valid, but the
queries of one plan share one shuffle, so their *failure events are
dependent*. If you need independent failures across queries, run them
in separately seeded executors (see ``docs/PLANNER.md``).
"""

from __future__ import annotations

import json
import math
import time
from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Union

import numpy as np

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.cost import CostModel
from repro.core.engine import (
    CheckpointHook,
    EntropyScoreProvider,
    LoopCheckpoint,
    MutualInformationScoreProvider,
    ScoreProvider,
    TraceTarget,
    adaptive_filter,
    adaptive_top_k,
    default_failure_probability,
    validate_epsilon,
    validate_k,
)
from repro.core.results import FilterResult, TopKResult
from repro.core.schedule import SampleSchedule, initial_sample_size
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.data.sampling import PrefixSampler
from repro.exceptions import (
    CheckpointError,
    CheckpointMismatchError,
    DataFormatError,
    ParameterError,
    PlanError,
    QueryInterruptedError,
    SchemaError,
)
from repro.obs.events import (
    AnswerReusedEvent,
    CacheHitEvent,
    CacheMissEvent,
    CheckpointSavedEvent,
    PlanEndEvent,
    PlanResumedEvent,
    PlanStartEvent,
    QueryRetiredEvent,
    ScheduleChosenEvent,
    TraceEvent,
)
from repro.obs.metrics import (
    MetricsRegistry,
    record_cache,
    record_checkpoint,
    record_plan,
    record_query,
    record_resume,
)
from repro.obs.sinks import TraceSink

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import CachePartition, PlanCache

__all__ = [
    "PAPER_EPSILON",
    "QUERY_KINDS",
    "QUERY_SCORES",
    "PlanExecutor",
    "PlanResult",
    "PlanStats",
    "QueryPlan",
    "QuerySpec",
    "load_plan",
    "plan_queries",
    "run_query_spec",
]

#: The two stopping rules (Definitions 5 and 6 of the paper).
QUERY_KINDS = ("top_k", "filter")

#: The two score functions the engine can bound.
QUERY_SCORES = ("entropy", "mutual_information")

#: The paper's evaluation-default ``ε`` per query shape (Section 6.1);
#: used when a spec leaves ``epsilon`` unset, matching the defaults of
#: the four ``swope_*`` entry points.
PAPER_EPSILON = {
    ("top_k", "entropy"): 0.1,
    ("filter", "entropy"): 0.05,
    ("top_k", "mutual_information"): 0.5,
    ("filter", "mutual_information"): 0.5,
}

_KIND_ALIASES = {
    "top_k": "top_k",
    "topk": "top_k",
    "top-k": "top_k",
    "filter": "filter",
    "filtering": "filter",
}

_SCORE_ALIASES = {
    "entropy": "entropy",
    "mi": "mutual_information",
    "mutual_information": "mutual_information",
    "mutual-information": "mutual_information",
}

#: CLI-style combined spellings (``repro query topk-entropy ...``).
_COMBINED_KINDS = {
    "topk-entropy": ("top_k", "entropy"),
    "filter-entropy": ("filter", "entropy"),
    "topk-mi": ("top_k", "mutual_information"),
    "filter-mi": ("filter", "mutual_information"),
}

_SPEC_KEYS = frozenset(
    {"kind", "score", "k", "threshold", "epsilon", "target", "attributes",
     "prune", "name"}
)

QueryResult = Union[TopKResult, FilterResult]


@dataclass(frozen=True)
class QuerySpec:
    """One SWOPE query, declaratively.

    Structural consistency is checked at construction time
    (:class:`~repro.exceptions.PlanError`): a ``top_k`` spec needs ``k``
    and must not carry a ``threshold`` (and vice versa for ``filter``),
    a ``mutual_information`` spec needs a ``target`` which an entropy
    spec must not have. Domain checks (``k >= 1``, ``ε`` in ``(0, 1)``,
    thresholds) stay with the engine validators — except in
    :func:`plan_queries`, which fail-fasts them for the whole batch.

    Attributes
    ----------
    kind:
        ``"top_k"`` or ``"filter"``.
    score:
        ``"entropy"`` or ``"mutual_information"``.
    k:
        Top-k answer size (``top_k`` specs only).
    threshold:
        Filter threshold ``η`` in bits (``filter`` specs only).
    epsilon:
        Error parameter; ``None`` means the paper default for this
        query shape (:data:`PAPER_EPSILON`).
    target:
        MI target attribute (``mutual_information`` specs only).
    attributes:
        Candidate attributes; ``None`` means all attributes of the
        store (minus the target for MI specs).
    prune:
        Apply top-k candidate pruning (ignored by ``filter`` specs).
    name:
        Optional label; the planner assigns ``q{index}`` when unset.
    """

    kind: str
    score: str
    k: int | None = None
    threshold: float | None = None
    epsilon: float | None = None
    target: str | None = None
    attributes: tuple[str, ...] | None = None
    prune: bool = True
    name: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise PlanError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if self.score not in QUERY_SCORES:
            raise PlanError(
                f"unknown query score {self.score!r};"
                f" expected one of {QUERY_SCORES}"
            )
        if self.kind == "top_k":
            if self.k is None:
                raise PlanError("a top_k spec needs k")
            if self.threshold is not None:
                raise PlanError(
                    f"a top_k spec cannot carry a threshold"
                    f" (got threshold={self.threshold!r})"
                )
        else:
            if self.threshold is None:
                raise PlanError("a filter spec needs a threshold")
            if self.k is not None:
                raise PlanError(f"a filter spec cannot carry k (got k={self.k!r})")
        if self.score == "mutual_information":
            if self.target is None:
                raise PlanError(
                    "a mutual_information spec needs a target attribute"
                )
        elif self.target is not None:
            raise PlanError(
                f"an entropy spec cannot carry a target attribute"
                f" (got target={self.target!r})"
            )
        if self.attributes is not None and not isinstance(self.attributes, tuple):
            object.__setattr__(self, "attributes", tuple(self.attributes))

    def describe(self) -> str:
        """One-line human rendering (CLI batch output)."""
        parts = [self.kind, self.score]
        if self.k is not None:
            parts.append(f"k={self.k}")
        if self.threshold is not None:
            parts.append(f"eta={self.threshold:g}")
        if self.epsilon is not None:
            parts.append(f"epsilon={self.epsilon:g}")
        if self.target is not None:
            parts.append(f"target={self.target}")
        return " ".join(parts)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QuerySpec":
        """Build a spec from a JSON-shaped mapping (plan-file entries).

        Accepts the CLI's combined kind spellings (``"topk-entropy"``,
        ``"filter-mi"``, ...) as well as split ``kind`` + ``score`` keys
        with common aliases (``"topk"``, ``"mi"``). Unknown keys,
        unknown spellings, and wrongly typed values raise
        :class:`~repro.exceptions.PlanError`.
        """
        unknown = sorted(set(payload) - _SPEC_KEYS)
        if unknown:
            raise PlanError(f"unknown query-spec keys: {unknown}")
        raw_kind = payload.get("kind")
        if not isinstance(raw_kind, str):
            raise PlanError(f"a query spec needs a string 'kind', got {raw_kind!r}")
        raw_score = payload.get("score")
        kind_key = raw_kind.strip().lower()
        if kind_key in _COMBINED_KINDS:
            kind, score = _COMBINED_KINDS[kind_key]
            if raw_score is not None:
                spelled = _SCORE_ALIASES.get(str(raw_score).strip().lower())
                if spelled != score:
                    raise PlanError(
                        f"kind {raw_kind!r} already implies score {score!r},"
                        f" got score={raw_score!r}"
                    )
        else:
            if kind_key not in _KIND_ALIASES:
                raise PlanError(
                    f"unknown query kind {raw_kind!r}; expected one of"
                    f" {sorted(_KIND_ALIASES)} or a combined spelling"
                    f" like {sorted(_COMBINED_KINDS)}"
                )
            kind = _KIND_ALIASES[kind_key]
            if raw_score is None:
                raise PlanError(
                    f"query kind {raw_kind!r} needs a 'score' key"
                    f" ({' or '.join(QUERY_SCORES)})"
                )
            score_key = str(raw_score).strip().lower()
            if score_key not in _SCORE_ALIASES:
                raise PlanError(
                    f"unknown query score {raw_score!r}; expected one of"
                    f" {sorted(_SCORE_ALIASES)}"
                )
            score = _SCORE_ALIASES[score_key]
        k = payload.get("k")
        if k is not None and (isinstance(k, bool) or not isinstance(k, int)):
            raise PlanError(f"'k' must be an integer, got {k!r}")
        threshold = payload.get("threshold")
        if threshold is not None and not isinstance(threshold, (int, float)):
            raise PlanError(f"'threshold' must be a number, got {threshold!r}")
        epsilon = payload.get("epsilon")
        if epsilon is not None and not isinstance(epsilon, (int, float)):
            raise PlanError(f"'epsilon' must be a number, got {epsilon!r}")
        target = payload.get("target")
        if target is not None and not isinstance(target, str):
            raise PlanError(f"'target' must be a string, got {target!r}")
        name = payload.get("name")
        if name is not None and not isinstance(name, str):
            raise PlanError(f"'name' must be a string, got {name!r}")
        prune = payload.get("prune", True)
        if not isinstance(prune, bool):
            raise PlanError(f"'prune' must be a boolean, got {prune!r}")
        attributes = payload.get("attributes")
        resolved_attributes: tuple[str, ...] | None = None
        if attributes is not None:
            if isinstance(attributes, str) or not isinstance(attributes, Sequence):
                raise PlanError(
                    f"'attributes' must be a list of names, got {attributes!r}"
                )
            if not all(isinstance(a, str) for a in attributes):
                raise PlanError(
                    f"'attributes' must be a list of names, got {attributes!r}"
                )
            resolved_attributes = tuple(attributes)
        return cls(
            kind=kind,
            score=score,
            k=k,
            threshold=None if threshold is None else float(threshold),
            epsilon=None if epsilon is None else float(epsilon),
            target=target,
            attributes=resolved_attributes,
            prune=prune,
            name=name,
        )


def load_plan(source: str | Path) -> list[QuerySpec]:
    """Parse a plan file (JSON) into a list of :class:`QuerySpec`.

    Two shapes are accepted: a bare list of spec objects, or an object
    with a ``"queries"`` list (room for future plan-level keys). The
    file shape errors raise :class:`~repro.exceptions.DataFormatError`;
    per-spec problems raise :class:`~repro.exceptions.PlanError`.
    """
    path = Path(source)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataFormatError(f"cannot read plan file {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DataFormatError(f"{path} is not valid JSON: {exc}") from exc
    entries: object
    if isinstance(payload, Mapping):
        if "queries" not in payload:
            raise DataFormatError(
                f"{path}: a plan object needs a 'queries' list"
            )
        entries = payload["queries"]
    else:
        entries = payload
    if not isinstance(entries, list):
        raise DataFormatError(
            f"{path}: a plan must be a list of query specs"
            " (or an object with a 'queries' list)"
        )
    specs: list[QuerySpec] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, Mapping):
            raise DataFormatError(f"{path}: queries[{index}] is not an object")
        specs.append(QuerySpec.from_dict(entry))
    return specs


@dataclass(frozen=True)
class QueryPlan:
    """A validated, normalised batch of query specs plus its count needs.

    ``specs`` carry resolved candidate lists, filled-in epsilons, and
    unique names. ``marginal_attributes`` is the ordered union of every
    marginal counter the plan touches; ``joint_targets`` groups the MI
    specs' joint requirements as ``(target, candidates)`` pairs — the
    executor fetches each group through the batched backend API exactly
    once per schedule block.
    """

    specs: tuple[QuerySpec, ...]
    marginal_attributes: tuple[str, ...]
    joint_targets: tuple[tuple[str, tuple[str, ...]], ...]
    population_size: int
    #: How ``specs`` was ordered: ``"cost"`` (cheapest predicted query
    #: first) or ``"submission"`` (caller order). Defaults keep
    #: hand-built plans valid.
    order: str = "submission"
    #: Query names in the caller's submission order (names are assigned
    #: from submission indices, so ``q0`` may run late under cost order).
    submission_names: tuple[str, ...] = ()
    #: Cost-model cell predictions aligned with ``specs`` (empty for
    #: submission order).
    estimated_cells: tuple[int, ...] = ()
    #: Label of the predictor that ordered the plan (``"analytic"`` /
    #: ``"fitted"`` / ``"none"``).
    cost_model: str = "none"

    @property
    def names(self) -> tuple[str, ...]:
        """Query names in execution order (planner-assigned when unset)."""
        return tuple(spec.name or "" for spec in self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[QuerySpec]:
        return iter(self.specs)


def _resolved_candidates(store: ColumnSource, spec: QuerySpec) -> list[str]:
    """Resolve a spec's candidate list against ``store``.

    Raises exactly the legacy entry-point errors (same types, same
    messages) so the planner path and the four ``swope_*`` façades stay
    behaviour-identical.
    """
    if spec.score == "mutual_information":
        target = spec.target
        if target is None:  # pragma: no cover - QuerySpec.__post_init__ guards
            raise PlanError("a mutual_information spec needs a target attribute")
        if target not in store:
            raise SchemaError(f"unknown target attribute {target!r}")
        if spec.attributes is None:
            names = [a for a in store.attributes if a != target]
        else:
            names = list(spec.attributes)
            unknown = [a for a in names if a not in store]
            if unknown:
                raise SchemaError(f"unknown attributes: {unknown}")
            if target in names:
                raise ParameterError(
                    f"target attribute {target!r} cannot also be a candidate"
                )
        if not names:
            raise ParameterError(
                "MI top-k query needs at least one candidate attribute"
                if spec.kind == "top_k"
                else "MI filtering query needs at least one candidate attribute"
            )
        return names
    names = (
        list(spec.attributes)
        if spec.attributes is not None
        else list(store.attributes)
    )
    unknown = [a for a in names if a not in store]
    if unknown:
        raise SchemaError(f"unknown attributes: {unknown}")
    return names


def plan_queries(
    store: ColumnSource,
    specs: Sequence[QuerySpec],
    *,
    order: str = "cost",
    cost_model: CostModel | None = None,
    failure_probability: float | None = None,
) -> QueryPlan:
    """Validate, normalise, dedup, and *schedule* ``specs`` into a plan.

    Per spec: the candidate list is resolved against the store (unknown
    attributes raise :class:`~repro.exceptions.SchemaError`), ``ε`` is
    filled from :data:`PAPER_EPSILON` and range-checked, ``k`` is
    range-checked, and the name defaults to ``q{index}`` — the
    *submission* index, so names stay stable under reordering. Plan-level
    structure raises :class:`~repro.exceptions.PlanError`: an empty spec
    list, duplicate names, a spec repeating an earlier one (same
    normalised body under a different name), a filter threshold that is
    not finite and strictly positive (``η = 0`` admits every attribute —
    a planned batch almost certainly misspelled it; the single-query
    API still allows it), or an MI target listed among its own
    candidates.

    Scheduling: with ``order="cost"`` (the default) the batch runs
    cheapest-predicted-first under ``cost_model`` (default: the analytic
    :class:`~repro.core.cost.CostModel`, a pure function of the store
    schema and query shapes — deterministic across sessions, which the
    cache's bit-identity gate relies on). Cheap queries then pay the
    early prefix sizes and expensive queries join the scan at the
    ratcheted frontier, maximising counter reuse. Ties (and the fitted
    model's equal predictions) break by submission index, so the
    schedule is deterministic for a fixed plan + model.
    ``order="submission"`` keeps the caller's order.
    ``failure_probability`` only feeds the cost predictions; pass the
    executor's value when it differs from the paper default ``1/N``.
    """
    if not specs:
        raise PlanError("a query plan needs at least one spec")
    if order not in ("cost", "submission"):
        raise PlanError(
            f"unknown plan order {order!r}; use 'cost' or 'submission'"
        )
    normalized: list[QuerySpec] = []
    seen_names: set[str] = set()
    seen_bodies: set[tuple[object, ...]] = set()
    for index, spec in enumerate(specs):
        name = spec.name if spec.name is not None else f"q{index}"
        if name in seen_names:
            raise PlanError(f"duplicate query name {name!r} in plan")
        seen_names.add(name)
        if (
            spec.score == "mutual_information"
            and spec.attributes is not None
            and spec.target in spec.attributes
        ):
            raise PlanError(
                f"query {name!r}: target attribute {spec.target!r} cannot"
                " also be a candidate"
            )
        candidates = tuple(_resolved_candidates(store, spec))
        if spec.kind == "filter":
            threshold = spec.threshold
            if (
                threshold is None
                or not math.isfinite(threshold)
                or threshold <= 0.0
            ):
                raise PlanError(
                    f"query {name!r}: a planned filter threshold must be"
                    f" finite and > 0, got {threshold!r}"
                )
        elif spec.k is not None:
            validate_k(spec.k)
        epsilon = (
            spec.epsilon
            if spec.epsilon is not None
            else PAPER_EPSILON[(spec.kind, spec.score)]
        )
        validate_epsilon(epsilon)
        resolved = replace(spec, attributes=candidates, epsilon=epsilon, name=name)
        body: tuple[object, ...] = (
            resolved.kind,
            resolved.score,
            resolved.k,
            resolved.threshold,
            resolved.epsilon,
            resolved.target,
            resolved.attributes,
            resolved.prune,
        )
        if body in seen_bodies:
            raise PlanError(
                f"duplicate query spec in plan: {name!r} repeats an"
                " earlier query"
            )
        seen_bodies.add(body)
        normalized.append(resolved)
    submission_names = tuple(
        spec.name if spec.name is not None else "" for spec in normalized
    )
    estimated: tuple[int, ...] = ()
    model_label = "none"
    scheduled = normalized
    if order == "cost":
        model = cost_model if cost_model is not None else CostModel()
        predictions: list[int] = []
        for resolved in normalized:
            candidates = resolved.attributes or ()
            if candidates:
                predictions.append(
                    model.estimate(
                        store,
                        kind=resolved.kind,
                        score=resolved.score,
                        epsilon=(
                            resolved.epsilon
                            if resolved.epsilon is not None
                            else PAPER_EPSILON[(resolved.kind, resolved.score)]
                        ),
                        candidates=candidates,
                        target=resolved.target,
                        threshold=resolved.threshold,
                        failure_probability=failure_probability,
                    ).predicted_cells
                )
            else:  # pragma: no cover - empty stores cannot build specs
                predictions.append(0)
        ranked = sorted(
            range(len(normalized)), key=lambda i: (predictions[i], i)
        )
        scheduled = [normalized[i] for i in ranked]
        estimated = tuple(predictions[i] for i in ranked)
        model_label = model.label
    # Count-group extraction follows the *scheduled* order, so the
    # executor's batched passes touch counters in execution order.
    marginals: list[str] = []
    marginal_seen: set[str] = set()
    joints: dict[str, list[str]] = {}
    for resolved in scheduled:
        candidates = resolved.attributes or ()
        needed = (
            [resolved.target, *candidates]
            if resolved.target is not None
            else list(candidates)
        )
        for attribute in needed:
            if attribute not in marginal_seen:
                marginal_seen.add(attribute)
                marginals.append(attribute)
        if resolved.target is not None:
            bucket = joints.setdefault(resolved.target, [])
            for attribute in candidates:
                if attribute not in bucket:
                    bucket.append(attribute)
    return QueryPlan(
        specs=tuple(scheduled),
        marginal_attributes=tuple(marginals),
        joint_targets=tuple(
            (target, tuple(names)) for target, names in joints.items()
        ),
        population_size=store.num_rows,
        order=order,
        submission_names=submission_names,
        estimated_cells=estimated,
        cost_model=model_label,
    )


class _RecordingProvider:
    """Wrap a :class:`ScoreProvider`, recording per-iteration bounds.

    The adaptive loops call ``intervals()`` exactly once per iteration
    with the live candidate set; the recorder keeps
    ``(sample_size, {attribute: (lower, upper, width, midpoint)})`` in
    call order — precisely the history :mod:`repro.cache.semantic`
    replays for dominance reuse. The unclipped ``width``/``midpoint``
    must be captured here because they are not recoverable from the
    clipped ``(lower, upper)`` that trace events carry.
    """

    def __init__(self, inner: ScoreProvider) -> None:
        self._inner = inner
        self.bounds_per_attribute = inner.bounds_per_attribute
        self.timings = inner.timings
        self.history: list[
            tuple[int, dict[str, tuple[float, float, float, float]]]
        ] = []

    def interval(self, attribute: str, sample_size: int) -> Any:
        return self._inner.interval(attribute, sample_size)

    def intervals(
        self, attributes: Sequence[str], sample_size: int
    ) -> Mapping[str, Any]:
        out = self._inner.intervals(attributes, sample_size)
        self.history.append(
            (
                sample_size,
                {
                    name: (iv.lower, iv.upper, iv.width, iv.midpoint)
                    for name, iv in out.items()
                },
            )
        )
        return out


def _cache_partition(
    cache: "PlanCache | CachePartition | None",
    store: ColumnSource,
    sampler: PrefixSampler,
) -> "tuple[CachePartition | None, PlanCache | None]":
    """Resolve a cache argument to the partition matching this run.

    Returns ``(partition, owned_cache)`` — ``owned_cache`` is the
    :class:`~repro.cache.PlanCache` to flush after the run when the
    caller handed us the whole cache (façade path); ``None`` when the
    caller passed a pre-bound partition (executor path, which flushes
    itself) or no cache at all.
    """
    if cache is None:
        return None, None
    from repro.cache import CachePartition, PlanCache  # local: layering

    if isinstance(cache, CachePartition):
        return cache, None
    if isinstance(cache, PlanCache):
        from repro.durability.checkpoint import store_fingerprint

        partition = cache.partition(
            fingerprint=store_fingerprint(store),
            shuffle=sampler.shuffle_fingerprint(),
        )
        return partition, cache
    raise ParameterError(
        "cache= must be a PlanCache, a CachePartition, or None;"
        f" got {type(cache).__name__}"
    )


def run_query_spec(
    store: ColumnSource,
    spec: QuerySpec,
    *,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    backend: str | CountingBackend | None = None,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    checkpoint: CheckpointHook | None = None,
    resume_state: LoopCheckpoint | None = None,
    cache: "PlanCache | CachePartition | None" = None,
) -> QueryResult:
    """Run one spec through the adaptive engine.

    This is the single dispatch point between the declarative layer and
    :func:`~repro.core.engine.adaptive_top_k` /
    :func:`~repro.core.engine.adaptive_filter` — the four ``swope_*``
    entry points are single-spec wrappers over it, and analysis rule
    SWP011 keeps any other caller from reaching around it. Validation
    order, defaults, and error messages are exactly the legacy entry
    points' (the bit-identity suite in ``tests/test_plan.py`` pins
    this). ``checkpoint``/``resume_state`` pass straight through to the
    adaptive loops (see :class:`~repro.core.engine.LoopCheckpoint`).

    ``cache`` attaches a :mod:`repro.cache` plan cache (or a pre-bound
    partition): retired answers are consulted before the engine runs —
    exact shape matches and semantic dominance serves (η′ ≥ η, k′ ≤ k)
    — counters warm-start from cached prefixes, and a converged run's
    answer and counters are written back. Answer reuse is only
    consulted for unbudgeted, uncancelled, non-resumed runs, so a
    budgeted run's degradation behaviour is bit-identical with or
    without a cache.
    """
    names = _resolved_candidates(store, spec)
    if failure_probability is None:
        failure_probability = default_failure_probability(store.num_rows)
    if sampler is None:
        sampler = PrefixSampler(store, seed=seed, backend=backend)
    elif backend is not None:
        raise ParameterError(
            "pass either sampler= or backend=; a pre-built sampler already"
            " owns its counting backend"
        )
    partition, owned_cache = _cache_partition(cache, store, sampler)
    if partition is not None:
        sampler.attach_counter_cache(partition)
    target = spec.target
    mutual = spec.score == "mutual_information"
    if schedule is None:
        schedule_names = [target, *names] if mutual and target is not None else names
        schedule = SampleSchedule.for_query(
            store.num_rows,
            len(names) + 1 if mutual else len(names),
            failure_probability,
            max(store.support_size(a) for a in schedule_names),
        )
    epsilon = (
        spec.epsilon
        if spec.epsilon is not None
        else PAPER_EPSILON[(spec.kind, spec.score)]
    )
    param = (
        float(spec.threshold or 0.0)
        if spec.kind == "filter"
        else float(spec.k or 0)
    )
    sink = _plan_sink(trace)
    name = spec.name if spec.name is not None else spec.describe()
    if (
        partition is not None
        and budget is None
        and cancellation is None
        and resume_state is None
    ):
        served = partition.lookup_answer(
            kind=spec.kind,
            score=spec.score,
            epsilon=epsilon,
            failure_probability=failure_probability,
            schedule_start=schedule.sizes[0],
            candidates=tuple(names),
            target=target,
            prune=spec.prune,
            param=param,
            population_size=store.num_rows,
        )
        if served is not None:
            result: QueryResult = served.result
            _emit(
                sink,
                CacheHitEvent(
                    name=name,
                    kind=spec.kind,
                    score=spec.score,
                    mode=served.mode,
                    source_param=served.source_param,
                    requested_param=param,
                ),
            )
            _emit(
                sink,
                AnswerReusedEvent(
                    name=name,
                    mode=served.mode,
                    iterations=result.stats.iterations,
                    final_sample_size=result.stats.final_sample_size,
                    cells_saved=result.stats.cells_saved,
                    answer=tuple(result.attributes),
                ),
            )
            if metrics is not None:
                record_cache(metrics, hit=True, mode=served.mode)
                assert result.guarantee is not None  # put_answer refuses others
                record_query(
                    metrics,
                    kind=spec.kind,
                    score=spec.score,
                    stats=result.stats,
                    guarantee=result.guarantee,
                )
            if owned_cache is not None:
                owned_cache.flush()
            return result
        _emit(sink, CacheMissEvent(name=name, kind=spec.kind, score=spec.score))
        if metrics is not None:
            record_cache(metrics, hit=False)
    provider: ScoreProvider
    if mutual:
        if target is None:  # pragma: no cover - QuerySpec.__post_init__ guards
            raise PlanError("a mutual_information spec needs a target attribute")
        per_bound = schedule.per_round_failure(
            failure_probability, len(names), bounds_per_attribute=3
        )
        provider = MutualInformationScoreProvider(sampler, target, per_bound)
    else:
        per_bound = schedule.per_round_failure(failure_probability, len(names))
        provider = EntropyScoreProvider(sampler, per_bound)
    recorder: _RecordingProvider | None = None
    if partition is not None and resume_state is None:
        recorder = _RecordingProvider(provider)
        provider = recorder
    if spec.kind == "top_k":
        if spec.k is None:  # pragma: no cover - QuerySpec.__post_init__ guards
            raise PlanError("a top_k spec needs k")
        result = adaptive_top_k(
            provider, sampler, names, spec.k, epsilon, schedule,
            prune=spec.prune, target=target, trace=trace,
            budget=budget, cancellation=cancellation, strict=strict,
            metrics=metrics, checkpoint=checkpoint, resume_state=resume_state,
        )
    else:
        if spec.threshold is None:  # pragma: no cover - __post_init__ guards
            raise PlanError("a filter spec needs a threshold")
        result = adaptive_filter(
            provider, sampler, names, spec.threshold, epsilon, schedule,
            target=target, trace=trace,
            budget=budget, cancellation=cancellation, strict=strict,
            metrics=metrics, checkpoint=checkpoint, resume_state=resume_state,
        )
    if partition is not None and recorder is not None:
        partition.put_answer(
            kind=spec.kind,
            score=spec.score,
            epsilon=epsilon,
            failure_probability=failure_probability,
            schedule_start=schedule.sizes[0],
            candidates=tuple(names),
            target=target,
            prune=spec.prune,
            param=param,
            history=recorder.history,
            result=result,
        )
    if owned_cache is not None and partition is not None:
        partition.absorb_sampler_state(sampler.state_snapshot())
        owned_cache.flush()
    return result


@dataclass
class PlanStats:
    """Accounting for one executed plan.

    ``cells_scanned`` is the *incremental* shared-scan cost of this plan
    over the executor's sampler (unlike per-query
    :attr:`~repro.core.results.RunStats.cells_scanned`, which reports
    the sampler's cumulative meter); ``per_query_cells`` breaks it down
    by query, in retirement order.
    """

    queries: int
    queries_completed: int
    cells_scanned: int
    per_query_cells: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    sample_floor: int = 0
    population_size: int = 0


@dataclass(frozen=True)
class PlanResult:
    """Results of one executed plan, keyed by query name in plan order."""

    results: dict[str, QueryResult]
    stats: PlanStats

    def __getitem__(self, name: str) -> QueryResult:
        try:
            return self.results[name]
        except KeyError:
            raise PlanError(
                f"no query named {name!r} in this plan result;"
                f" have {sorted(self.results)}"
            ) from None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[str]:
        return iter(self.results)


_UNSET: Any = object()


def _emit(sink: TraceSink | None, event: TraceEvent) -> None:
    if sink is not None and sink.enabled:
        sink.emit(event)


def _plan_sink(trace: TraceTarget | None) -> TraceSink | None:
    """The plan-event destination: sinks only (QueryTrace is per-query)."""
    if isinstance(trace, TraceSink):
        return trace
    return None


def _retired_event(
    name: str, index: int, result: QueryResult, marginal_cells: int
) -> QueryRetiredEvent:
    guarantee = result.guarantee
    return QueryRetiredEvent(
        name=name,
        index=index,
        stopping_reason=(
            guarantee.stopping_reason if guarantee is not None else "converged"
        ),
        guarantee_met=(
            guarantee.guarantee_met if guarantee is not None else True
        ),
        final_sample_size=result.stats.final_sample_size,
        marginal_cells=marginal_cells,
        answer=tuple(result.attributes),
    )


def _remaining_budget(
    budget: QueryBudget | None,
    started: float,
    cells_at_start: int,
    sampler: PrefixSampler,
) -> QueryBudget | None:
    """The plan-wide budget minus what earlier queries already consumed.

    The residual deadline and cell allowance are clamped to tiny positive
    values rather than zero: a query handed an exhausted budget still
    runs exactly one iteration and returns a degraded answer with an
    honest :class:`~repro.core.results.GuaranteeStatus` — the engine's
    anytime contract, applied per query across the batch.
    """
    if budget is None:
        return None
    deadline_ms = budget.deadline_ms
    if deadline_ms is not None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        deadline_ms = max(deadline_ms - elapsed_ms, 1e-6)
    max_cells = budget.max_cells
    if max_cells is not None:
        max_cells = max(max_cells - (sampler.cells_scanned - cells_at_start), 1)
    return QueryBudget(
        deadline_ms=deadline_ms,
        max_cells=max_cells,
        max_sample_size=budget.max_sample_size,
    )


class PlanExecutor:
    """Execute query plans over one shared, counter-retaining sampler.

    The executor owns a :class:`~repro.data.sampling.PrefixSampler` in
    ``retain=True`` mode: every marginal and joint counter any query
    grows stays alive, so each count a plan needs is fetched from the
    store exactly once — later queries of the batch (and later plans on
    the same executor) reuse it for free. The starting sample size
    ratchets to the largest ``M`` any query has reached, exactly as in
    :class:`~repro.core.session.QuerySession` (which is now a façade
    over this class).

    Parameters
    ----------
    store:
        The dataset to query.
    seed:
        Seed for the single shuffle all queries share.
    sequential:
        Read physical row order instead of shuffling (only valid when
        the physical order is already exchangeable).
    failure_probability:
        ``p_f`` used by every query (default: the paper's ``1/N``).
        Per-query failure budgets stay per-query — each query's bound
        evaluations are union-bounded within that query alone.
    budget:
        Default plan-wide :class:`~repro.core.budget.QueryBudget`;
        ``execute``/``execute_one`` can override it per call.
    backend:
        Counting backend of the shared sampler (name, instance, or
        ``None`` to honour ``REPRO_BACKEND``).
    trace:
        Default :class:`~repro.obs.sinks.TraceSink` receiving both the
        plan-level events and every query's event stream.
    metrics:
        Default :class:`~repro.obs.metrics.MetricsRegistry` fed by
        :func:`~repro.obs.metrics.record_plan` per plan and
        :func:`~repro.obs.metrics.record_query` per query.
    checkpoint_path:
        When set, :meth:`execute` durably snapshots plan progress to
        this path (atomic write-rename, see
        :mod:`repro.durability.checkpoint`): once at plan start, at
        every ``checkpoint_every``-th iteration boundary of the running
        query, and after every query retirement. A crash, budget
        exhaustion, or cancellation therefore always leaves a loadable
        checkpoint behind; :meth:`resume` restarts from it with
        bit-identical final answers.
    checkpoint_every:
        Save a boundary checkpoint every this many iteration boundaries
        (default 1 = every boundary). Retirement and plan-start
        checkpoints are always written.
    cache:
        A :class:`~repro.cache.PlanCache` shared across executors:
        retired answers are served without re-running (exact matches and
        semantic dominance), counters warm-start from cached prefixes,
        and converged results are written back after each query.
    cache_dir:
        Convenience: a directory path to open a persistent
        :class:`~repro.cache.PlanCache` in. Mutually exclusive with
        ``cache``.
    """

    def __init__(
        self,
        store: ColumnSource,
        *,
        seed: int | np.random.Generator | None = None,
        sequential: bool = False,
        failure_probability: float | None = None,
        budget: QueryBudget | None = None,
        backend: str | CountingBackend | None = None,
        trace: TraceSink | None = None,
        metrics: MetricsRegistry | None = None,
        checkpoint_path: str | Path | None = None,
        checkpoint_every: int = 1,
        cache: "PlanCache | None" = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
            )
        self._store = store
        self._sampler = PrefixSampler(
            store, seed=seed, sequential=sequential, retain=True, backend=backend
        )
        self._failure = (
            failure_probability
            if failure_probability is not None
            else default_failure_probability(store.num_rows)
        )
        self._budget = budget
        self._trace = trace
        self._metrics = metrics
        self._floor = 0  # largest M any query has reached so far
        self._queries_run = 0
        self._last_cells = 0
        self._checkpoint_path = (
            None if checkpoint_path is None else Path(checkpoint_path)
        )
        self._checkpoint_every = checkpoint_every
        self._boundaries = 0  # iteration boundaries seen across all plans
        self._fingerprint: str | None = None
        self._restored: dict[str, Any] | None = None
        self._cache: "PlanCache | None" = None
        self._partition: "CachePartition | None" = None
        self._bind_cache(cache, cache_dir)

    # ------------------------------------------------------------------
    @property
    def store(self) -> ColumnSource:
        """The wrapped dataset."""
        return self._store

    @property
    def sampler(self) -> PrefixSampler:
        """The shared counter-retaining sampler (shared-cost accounting)."""
        return self._sampler

    @property
    def cells_scanned(self) -> int:
        """Cumulative unique cells read across all queries so far."""
        return self._sampler.cells_scanned

    @property
    def queries_run(self) -> int:
        """Number of queries answered by this executor."""
        return self._queries_run

    @property
    def sample_floor(self) -> int:
        """The ratcheted starting sample size for the next query."""
        return self._floor

    def marginal_cells(self) -> int:
        """Cells added by the most recent query (0 before any query)."""
        return self._last_cells

    @property
    def default_budget(self) -> QueryBudget | None:
        """The executor-wide budget applied when a call passes none."""
        return self._budget

    @property
    def default_trace(self) -> TraceSink | None:
        """The executor-wide trace sink applied when a call passes none."""
        return self._trace

    @property
    def default_metrics(self) -> MetricsRegistry | None:
        """The executor-wide metrics registry applied when a call passes none."""
        return self._metrics

    @property
    def cache(self) -> "PlanCache | None":
        """The attached plan cache (``None`` when caching is off)."""
        return self._cache

    def _bind_cache(
        self, cache: "PlanCache | None", cache_dir: str | Path | None
    ) -> None:
        """Open/attach the plan cache and bind this executor's partition.

        Called from ``__init__`` and (after the restored sampler is in
        place) from :meth:`resume` — the partition key includes the
        shuffle fingerprint, so binding must happen against the sampler
        that will actually serve the queries.
        """
        if cache is not None and cache_dir is not None:
            raise ParameterError(
                "pass either cache= or cache_dir=, not both"
            )
        if cache is None and cache_dir is None:
            return
        from repro.cache import PlanCache  # local: layering

        if cache is None:
            cache = PlanCache(Path(cache_dir))  # type: ignore[arg-type]
        elif not isinstance(cache, PlanCache):
            raise ParameterError(
                f"cache= must be a PlanCache or None; got {type(cache).__name__}"
            )
        self._cache = cache
        self._partition = cache.partition(
            fingerprint=self._store_fingerprint(),
            shuffle=self._sampler.shuffle_fingerprint(),
        )
        self._sampler.attach_counter_cache(self._partition)

    def _flush_cache(self) -> None:
        """Write back counters + any new answers after a query ran."""
        if self._cache is None or self._partition is None:
            return
        self._partition.absorb_sampler_state(self._sampler.state_snapshot())
        self._cache.flush()

    # ------------------------------------------------------------------
    def _schedule_for(self, spec: QuerySpec) -> SampleSchedule:
        """A paper schedule whose start is ratcheted to the shared floor."""
        names = _resolved_candidates(self._store, spec)
        if spec.score == "mutual_information" and spec.target is not None:
            all_names = [spec.target, *names]
            num_attributes = len(names) + 1
        else:
            all_names = names
            num_attributes = len(names)
        max_support = max(self._store.support_size(a) for a in all_names)
        m0 = initial_sample_size(
            self._store.num_rows, num_attributes, self._failure, max_support
        )
        start = min(self._store.num_rows, max(m0, self._floor))
        return SampleSchedule.for_query(
            self._store.num_rows,
            num_attributes,
            self._failure,
            max_support,
            initial_size=start,
        )

    def execute_one(
        self,
        spec: QuerySpec,
        *,
        schedule: SampleSchedule | None = None,
        budget: QueryBudget | None = _UNSET,
        cancellation: CancellationToken | None = None,
        strict: bool = False,
        trace: TraceTarget | None = _UNSET,
        metrics: MetricsRegistry | None = _UNSET,
        backend: str | CountingBackend | None = None,
        checkpoint: CheckpointHook | None = None,
        resume_state: LoopCheckpoint | None = None,
        cells_before: int | None = None,
    ) -> QueryResult:
        """Run one spec over the shared sampler, ratcheting the floor.

        ``budget``/``trace``/``metrics`` default to the executor-wide
        settings; pass ``None`` explicitly to lift/silence them for one
        query. A ``backend=`` here is always an error — the shared
        sampler already owns its backend. ``checkpoint``/
        ``resume_state``/``cells_before`` are the durability hooks used
        by :meth:`execute` and :meth:`resume`; ``cells_before`` replays
        the query's original scan-start meter so the per-query cell
        accounting of a resumed run matches the uninterrupted one.
        """
        if backend is not None:
            raise ParameterError(
                "pass either sampler= or backend=; a pre-built sampler already"
                " owns its counting backend"
            )
        if budget is _UNSET:
            budget = self._budget
        if trace is _UNSET:
            trace = self._trace
        if metrics is _UNSET:
            metrics = self._metrics
        if schedule is None:
            schedule = self._schedule_for(spec)
        before = (
            self._sampler.cells_scanned if cells_before is None else cells_before
        )
        try:
            result = run_query_spec(
                self._store,
                spec,
                failure_probability=self._failure,
                sampler=self._sampler,
                schedule=schedule,
                trace=trace,
                budget=budget,
                cancellation=cancellation,
                strict=strict,
                metrics=metrics,
                checkpoint=checkpoint,
                resume_state=resume_state,
                cache=self._partition,
            )
        except QueryInterruptedError as exc:
            # Strict-mode truncation: the shared prefix counters have
            # already grown, so the floor must ratchet to the partial
            # result's sample size or a later query would ask the
            # sampler to shrink a prefix.
            partial = exc.partial
            if isinstance(partial, (TopKResult, FilterResult)):
                self._floor = max(self._floor, partial.stats.final_sample_size)
            self._last_cells = self._sampler.cells_scanned - before
            self._flush_cache()  # keep the counters the partial run paid for
            raise
        self._queries_run += 1
        self._last_cells = self._sampler.cells_scanned - before
        self._floor = max(self._floor, result.stats.final_sample_size)
        self._flush_cache()
        return result

    def execute(
        self,
        plan: QueryPlan,
        *,
        budget: QueryBudget | None = _UNSET,
        cancellation: CancellationToken | None = None,
        strict: bool = False,
        trace: TraceSink | None = _UNSET,
        metrics: MetricsRegistry | None = _UNSET,
    ) -> PlanResult:
        """Execute every query of ``plan`` over the shared sampler.

        Queries run in plan order, each joining the scan at the ratchet
        frontier; ``budget`` applies *plan-wide* — each query receives
        the residual (remaining deadline, remaining cell allowance) and
        degrades individually with its own
        :class:`~repro.core.results.GuaranteeStatus` when the residual
        runs out (every query still completes at least one iteration).
        In strict mode the first truncation raises, after the
        ``query_retired`` (from the partial result) and ``plan_end``
        events and the plan metrics have been recorded.

        With ``checkpoint_path`` set, progress is durably snapshotted at
        plan start, at iteration boundaries (per ``checkpoint_every``),
        and after every retirement; on an executor built by
        :meth:`resume`, the first call picks the plan up mid-flight —
        completed queries are restored without re-running, the in-flight
        query restarts at its last checkpointed boundary, and the final
        answers are bit-identical to an uninterrupted run.
        """
        if budget is _UNSET:
            budget = self._budget
        if trace is _UNSET:
            trace = self._trace
        if metrics is _UNSET:
            metrics = self._metrics
        sink = _plan_sink(trace)
        started = time.perf_counter()
        cells_at_start = self._sampler.cells_scanned
        results: dict[str, QueryResult] = {}
        per_query_cells: dict[str, int] = {}
        completed = 0
        start_index = 0
        resume_loop: LoopCheckpoint | None = None
        resume_cells: int | None = None
        restored = self._restored
        self._restored = None
        if restored is not None:
            self._check_resumed_plan(plan, restored["specs"])
            cells_at_start = restored["plan_cells_at_start"]
            per_query_cells = dict(restored["per_query_cells"])
            for entry_name, entry_result in restored["results"]:
                results[entry_name] = entry_result
            completed = len(results)
            in_flight = restored["in_flight"]
            if metrics is not None:
                record_resume(metrics, queries_completed=completed)
            _emit(
                sink,
                PlanResumedEvent(
                    queries_completed=completed,
                    total_queries=len(plan.specs),
                    boundary=self._boundaries,
                    sample_floor=self._floor,
                    population_size=plan.population_size,
                    query=None if in_flight is None else in_flight["name"],
                ),
            )
            if in_flight is None:
                # The checkpoint captured an already-finished plan.
                # cells_scanned stays a plain local so the (deterministic)
                # event payload never reads through the wall-clock-tainted
                # stats object (SWP013).
                cells_scanned = self._sampler.cells_scanned - cells_at_start
                stats = PlanStats(
                    queries=len(plan.specs),
                    queries_completed=completed,
                    cells_scanned=cells_scanned,
                    per_query_cells=per_query_cells,
                    wall_seconds=time.perf_counter() - started,
                    sample_floor=self._floor,
                    population_size=plan.population_size,
                )
                _emit(
                    sink,
                    PlanEndEvent(
                        queries_completed=completed,
                        total_queries=len(plan.specs),
                        cells_scanned=cells_scanned,
                        sample_floor=self._floor,
                    ),
                )
                if metrics is not None:
                    record_plan(metrics, stats=stats)
                return PlanResult(results=results, stats=stats)
            start_index = in_flight["index"]
            resume_loop = in_flight["loop"]
            resume_cells = in_flight["cells_before"]
        else:
            _emit(
                sink,
                PlanStartEvent(
                    num_queries=len(plan.specs),
                    queries=plan.names,
                    population_size=plan.population_size,
                    marginal_attributes=plan.marginal_attributes,
                    joint_targets=plan.joint_targets,
                ),
            )
            if plan.order == "cost":
                _emit(
                    sink,
                    ScheduleChosenEvent(
                        order=plan.order,
                        queries=plan.names,
                        submission=plan.submission_names,
                        estimated_cells=plan.estimated_cells,
                        cost_model=plan.cost_model,
                    ),
                )
            if self._checkpoint_path is not None:
                # Plan-start snapshot: even a crash inside the very first
                # iteration leaves a resumable checkpoint behind.
                first = plan.specs[0]
                self._write_checkpoint(
                    plan=plan,
                    results=results,
                    per_query_cells=per_query_cells,
                    cells_at_start=cells_at_start,
                    in_flight={
                        "name": first.name if first.name is not None else "q0",
                        "index": 0,
                        "cells_before": self._sampler.cells_scanned,
                        "loop": None,
                    },
                    budget=budget,
                    started=started,
                    sink=sink,
                    metrics=metrics,
                )
        try:
            for index in range(start_index, len(plan.specs)):
                spec = plan.specs[index]
                name = spec.name if spec.name is not None else f"q{index}"
                resuming = restored is not None and index == start_index
                cells_before = (
                    resume_cells
                    if resuming and resume_cells is not None
                    else self._sampler.cells_scanned
                )
                sub_budget = _remaining_budget(
                    budget, started, cells_at_start, self._sampler
                )
                hook: CheckpointHook | None = None
                if self._checkpoint_path is not None:
                    hook = self._boundary_hook(
                        plan=plan,
                        results=results,
                        per_query_cells=per_query_cells,
                        cells_at_start=cells_at_start,
                        budget=budget,
                        started=started,
                        sink=sink,
                        metrics=metrics,
                        name=name,
                        index=index,
                        cells_before=cells_before,
                    )
                try:
                    result = self.execute_one(
                        spec,
                        budget=sub_budget,
                        cancellation=cancellation,
                        strict=strict,
                        trace=trace,
                        metrics=metrics,
                        checkpoint=hook,
                        resume_state=resume_loop if resuming else None,
                        cells_before=cells_before if resuming else None,
                    )
                except QueryInterruptedError as exc:
                    partial = exc.partial
                    if isinstance(partial, (TopKResult, FilterResult)):
                        per_query_cells[name] = self._last_cells
                        _emit(
                            sink,
                            _retired_event(name, index, partial, self._last_cells),
                        )
                    raise
                results[name] = result
                per_query_cells[name] = self._last_cells
                completed += 1
                _emit(sink, _retired_event(name, index, result, self._last_cells))
                if self._checkpoint_path is not None:
                    if index + 1 < len(plan.specs):
                        nxt = plan.specs[index + 1]
                        next_in_flight: dict[str, Any] | None = {
                            "name": (
                                nxt.name
                                if nxt.name is not None
                                else f"q{index + 1}"
                            ),
                            "index": index + 1,
                            "cells_before": self._sampler.cells_scanned,
                            "loop": None,
                        }
                    else:
                        next_in_flight = None
                    self._write_checkpoint(
                        plan=plan,
                        results=results,
                        per_query_cells=per_query_cells,
                        cells_at_start=cells_at_start,
                        in_flight=next_in_flight,
                        budget=budget,
                        started=started,
                        sink=sink,
                        metrics=metrics,
                    )
        finally:
            # As above: the event reads the deterministic local, not the
            # wall-clock-tainted stats object (SWP013).
            cells_scanned = self._sampler.cells_scanned - cells_at_start
            stats = PlanStats(
                queries=len(plan.specs),
                queries_completed=completed,
                cells_scanned=cells_scanned,
                per_query_cells=per_query_cells,
                wall_seconds=time.perf_counter() - started,
                sample_floor=self._floor,
                population_size=plan.population_size,
            )
            _emit(
                sink,
                PlanEndEvent(
                    queries_completed=completed,
                    total_queries=len(plan.specs),
                    cells_scanned=cells_scanned,
                    sample_floor=self._floor,
                ),
            )
            if metrics is not None:
                record_plan(metrics, stats=stats)
        return PlanResult(results=results, stats=stats)

    # ------------------------------------------------------------------
    # Durability: checkpointing and resume (repro.durability.checkpoint
    # is imported lazily — it sits above this module in the layer graph).
    # ------------------------------------------------------------------
    @property
    def checkpoint_path(self) -> Path | None:
        """Where :meth:`execute` durably snapshots progress (or ``None``)."""
        return self._checkpoint_path

    @property
    def boundaries_seen(self) -> int:
        """Iteration boundaries crossed under checkpointing so far."""
        return self._boundaries

    def _store_fingerprint(self) -> str:
        if self._fingerprint is None:
            from repro.durability.checkpoint import store_fingerprint

            self._fingerprint = store_fingerprint(self._store)
        return self._fingerprint

    def _boundary_hook(
        self,
        *,
        plan: QueryPlan,
        results: dict[str, QueryResult],
        per_query_cells: dict[str, int],
        cells_at_start: int,
        budget: QueryBudget | None,
        started: float,
        sink: TraceSink | None,
        metrics: MetricsRegistry | None,
        name: str,
        index: int,
        cells_before: int,
    ) -> CheckpointHook:
        """A per-query hook snapshotting every ``checkpoint_every``-th boundary."""

        def hook(state: LoopCheckpoint) -> None:
            self._boundaries += 1
            if self._boundaries % self._checkpoint_every != 0:
                return
            self._write_checkpoint(
                plan=plan,
                results=results,
                per_query_cells=per_query_cells,
                cells_at_start=cells_at_start,
                in_flight={
                    "name": name,
                    "index": index,
                    "cells_before": cells_before,
                    "loop": state,
                },
                budget=budget,
                started=started,
                sink=sink,
                metrics=metrics,
            )

        return hook

    def _write_checkpoint(
        self,
        *,
        plan: QueryPlan,
        results: dict[str, QueryResult],
        per_query_cells: dict[str, int],
        cells_at_start: int,
        in_flight: dict[str, Any] | None,
        budget: QueryBudget | None,
        started: float,
        sink: TraceSink | None,
        metrics: MetricsRegistry | None,
    ) -> None:
        from repro.durability import checkpoint as ckpt

        path = self._checkpoint_path
        if path is None:  # pragma: no cover - callers gate on checkpoint_path
            return
        save_started = time.perf_counter()
        residual = _remaining_budget(budget, started, cells_at_start, self._sampler)
        residual_payload = None
        if residual is not None:
            residual_payload = {
                "deadline_ms": residual.deadline_ms,
                "max_cells": residual.max_cells,
                "max_sample_size": residual.max_sample_size,
            }
        completed = len(results)
        progress: dict[str, Any] = {
            "results": [
                {"name": entry_name, "result": ckpt.result_to_payload(entry)}
                for entry_name, entry in results.items()
            ],
            "per_query_cells": dict(per_query_cells),
            "plan_cells_at_start": cells_at_start,
            "in_flight": (
                None
                if in_flight is None
                else {
                    "name": in_flight["name"],
                    "index": in_flight["index"],
                    "cells_before": in_flight["cells_before"],
                    "loop": (
                        None
                        if in_flight["loop"] is None
                        else ckpt.loop_state_to_payload(in_flight["loop"])
                    ),
                }
            ),
            "residual_budget": residual_payload,
            # Planner metadata: lets resumed_plan() rebuild the *scheduled*
            # QueryPlan (count groups included) without re-running
            # plan_queries — the checkpointed specs are already in
            # execution order, and re-planning them would re-extract the
            # count groups from scratch (and could re-order under a
            # different cost model).
            "plan": {
                "marginal_attributes": list(plan.marginal_attributes),
                "joint_targets": [
                    [target, list(names)]
                    for target, names in plan.joint_targets
                ],
                "population_size": plan.population_size,
                "order": plan.order,
                "submission_names": list(plan.submission_names),
                "estimated_cells": list(plan.estimated_cells),
                "cost_model": plan.cost_model,
            },
        }
        # The residual deadline is wall-clock *by contract*: a resumed run
        # gets the real time remaining, not a replayed duration (see
        # docs/RESILIENCE.md). The envelope's determinism-critical fields
        # (sampler state, results, specs) are unaffected.
        snapshot = ckpt.PlanCheckpoint(  # noqa: SWP013
            dataset={
                "fingerprint": self._store_fingerprint(),
                "num_rows": self._store.num_rows,
            },
            executor={
                "failure_probability": self._failure,
                "sample_floor": self._floor,
                "queries_run": self._queries_run,
                "boundaries_seen": self._boundaries,
                "checkpoint_every": self._checkpoint_every,
            },
            sampler=ckpt.encode_sampler_state(self._sampler.state_snapshot()),
            specs=[asdict(spec) for spec in plan.specs],
            progress=progress,
        )
        payload_bytes = ckpt.save_checkpoint(snapshot, path)
        if metrics is not None:
            record_checkpoint(
                metrics,
                payload_bytes=payload_bytes,
                seconds=time.perf_counter() - save_started,
            )
        _emit(
            sink,
            CheckpointSavedEvent(
                boundary=self._boundaries,
                queries_completed=completed,
                query=None if in_flight is None else in_flight["name"],
            ),
        )

    def _check_resumed_plan(
        self, plan: QueryPlan, specs: tuple[QuerySpec, ...]
    ) -> None:
        if tuple(plan.specs) != tuple(specs):
            raise CheckpointMismatchError(
                "checkpoint was written for a different plan; resume must"
                " re-execute the same specs (use resumed_plan() to recover"
                " them from the checkpoint)"
            )

    def resumed_plan(self) -> QueryPlan:
        """The plan the loaded checkpoint belongs to (resume-built only).

        Only available on an executor built by :meth:`resume`, before
        its :meth:`execute` call consumes the restored state — pass the
        returned plan straight to :meth:`execute`.

        The plan is rebuilt from the checkpoint's planner metadata
        (specs are stored in *scheduled* order along with the extracted
        count groups), not by re-running :func:`plan_queries` — so the
        resumed plan's count-group extraction and schedule are exactly
        the interrupted run's, even if the default cost model changes
        between versions. Checkpoints written before the metadata
        existed fall back to re-planning in submission order.
        """
        if self._restored is None:
            raise ParameterError(
                "resumed_plan() needs an executor built by"
                " PlanExecutor.resume() whose execute() has not run yet"
            )
        meta = self._restored.get("plan")
        if meta is None:
            return plan_queries(
                self._store,
                list(self._restored["specs"]),
                order="submission",
            )
        return QueryPlan(
            specs=tuple(self._restored["specs"]),
            marginal_attributes=tuple(
                str(a) for a in meta["marginal_attributes"]
            ),
            joint_targets=tuple(
                (str(target), tuple(str(n) for n in names))
                for target, names in meta["joint_targets"]
            ),
            population_size=int(meta["population_size"]),
            order=str(meta["order"]),
            submission_names=tuple(
                str(n) for n in meta["submission_names"]
            ),
            estimated_cells=tuple(int(c) for c in meta["estimated_cells"]),
            cost_model=str(meta["cost_model"]),
        )

    @classmethod
    def resume(
        cls,
        path: str | Path,
        store: ColumnSource,
        *,
        backend: str | CountingBackend | None = None,
        trace: TraceSink | None = None,
        metrics: MetricsRegistry | None = None,
        cache: "PlanCache | None" = None,
        cache_dir: str | Path | None = None,
    ) -> "PlanExecutor":
        """Rebuild a mid-plan executor from a checkpoint file.

        The checkpoint is verified (format, schema version, sha256,
        dataset fingerprint against ``store``) and the shared sampler is
        reconstructed with its exact permutation, prefix position, and
        every marginal/joint counter; the next :meth:`execute` call on
        the returned executor restarts the plan at the last checkpointed
        iteration boundary and produces answers bit-identical to an
        uninterrupted run. ``trace``/``metrics`` are fresh run-scoped
        settings (event streams are not replayed); the residual plan
        budget recorded at checkpoint time becomes the executor default.
        """
        from repro.durability import checkpoint as ckpt

        snapshot = ckpt.load_checkpoint(path, store=store)
        try:
            executor_state = snapshot.executor
            failure = float(executor_state["failure_probability"])
            floor = int(executor_state["sample_floor"])
            queries_run = int(executor_state["queries_run"])
            boundaries = int(executor_state["boundaries_seen"])
            every = int(executor_state["checkpoint_every"])
            specs = tuple(
                QuerySpec(**payload) for payload in snapshot.specs
            )
            progress = snapshot.progress
            restored_results = [
                (str(entry["name"]), ckpt.result_from_payload(entry["result"]))
                for entry in progress["results"]
            ]
            per_query_cells = {
                str(key): int(value)
                for key, value in progress["per_query_cells"].items()
            }
            plan_cells_at_start = int(progress["plan_cells_at_start"])
            raw_in_flight = progress["in_flight"]
            in_flight: dict[str, Any] | None = None
            if raw_in_flight is not None:
                raw_loop = raw_in_flight["loop"]
                in_flight = {
                    "name": str(raw_in_flight["name"]),
                    "index": int(raw_in_flight["index"]),
                    "cells_before": int(raw_in_flight["cells_before"]),
                    "loop": (
                        None
                        if raw_loop is None
                        else ckpt.loop_state_from_payload(raw_loop)
                    ),
                }
            residual_payload = progress["residual_budget"]
            budget = None
            if residual_payload is not None:
                budget = QueryBudget(
                    deadline_ms=residual_payload["deadline_ms"],
                    max_cells=residual_payload["max_cells"],
                    max_sample_size=residual_payload["max_sample_size"],
                )
            sampler_state = ckpt.decode_sampler_state(snapshot.sampler)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint {path} has a malformed payload: {exc}"
            ) from exc
        executor = cls(
            store,
            sequential=True,  # placeholder sampler; replaced from state below
            failure_probability=failure,
            budget=budget,
            trace=trace,
            metrics=metrics,
            checkpoint_path=path,
            checkpoint_every=every,
        )
        executor._sampler = PrefixSampler.from_state(
            store, sampler_state, retain=True, backend=backend
        )
        executor._floor = floor
        executor._queries_run = queries_run
        executor._boundaries = boundaries
        executor._fingerprint = snapshot.dataset.get("fingerprint")
        # Bind the cache only now: the partition key includes the shuffle
        # fingerprint, which must come from the *restored* permutation.
        executor._bind_cache(cache, cache_dir)
        executor._restored = {
            "specs": specs,
            "results": restored_results,
            "per_query_cells": per_query_cells,
            "plan_cells_at_start": plan_cells_at_start,
            "in_flight": in_flight,
            "plan": progress.get("plan"),
        }
        return executor
