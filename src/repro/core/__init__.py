"""Core SWOPE algorithms: bounds, schedule, and the four query functions.

The primary contribution of the paper lives here:

* :mod:`repro.core.bounds` — Lemmas 1–4 (bias bound, permutation
  concentration, confidence intervals, sample-size law);
* :mod:`repro.core.schedule` — ``M0``, doubling schedule, failure budgets;
* :mod:`repro.core.engine` — the shared adaptive loop and score providers;
* :mod:`repro.core.plan` — declarative :class:`~repro.core.plan.QuerySpec`
  batches, the planner, and the shared-scan
  :class:`~repro.core.plan.PlanExecutor`;
* :func:`~repro.core.topk.swope_top_k_entropy` — Algorithm 1;
* :func:`~repro.core.filtering.swope_filter_entropy` — Algorithm 2;
* :func:`~repro.core.mi_topk.swope_top_k_mutual_information` — Algorithm 3;
* :func:`~repro.core.mi_filtering.swope_filter_mutual_information` —
  Algorithm 4.
"""

from repro.core.bounds import (
    ConfidenceInterval,
    MutualInformationInterval,
    beta_sensitivity,
    bias_bound,
    entropy_interval,
    entropy_intervals,
    joint_entropy_interval,
    mi_intervals,
    mutual_information_interval,
    permutation_half_width,
    sample_size_for_width,
)
from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import (
    EntropyScoreProvider,
    IterationTrace,
    MutualInformationScoreProvider,
    PhaseTimings,
    QueryTrace,
    default_failure_probability,
)
from repro.core.estimators import (
    entropy_from_counts,
    entropy_from_probabilities,
    jackknife_entropy,
    joint_entropy_from_counter,
    miller_madow_entropy,
    mutual_information_from_counts,
)
from repro.core.filtering import swope_filter_entropy
from repro.core.mi_filtering import swope_filter_mutual_information
from repro.core.mi_topk import swope_top_k_mutual_information
from repro.core.plan import (
    PlanExecutor,
    PlanResult,
    PlanStats,
    QueryPlan,
    QuerySpec,
    load_plan,
    plan_queries,
    run_query_spec,
)
from repro.core.results import (
    AttributeEstimate,
    FilterResult,
    GuaranteeStatus,
    RunStats,
    TopKResult,
)
from repro.core.schedule import SampleSchedule, initial_sample_size, max_iterations
from repro.core.session import QuerySession
from repro.core.topk import swope_top_k_entropy

__all__ = [
    "AttributeEstimate",
    "CancellationToken",
    "ConfidenceInterval",
    "EntropyScoreProvider",
    "FilterResult",
    "GuaranteeStatus",
    "IterationTrace",
    "MutualInformationInterval",
    "PhaseTimings",
    "PlanExecutor",
    "PlanResult",
    "PlanStats",
    "QueryBudget",
    "QueryPlan",
    "QuerySession",
    "QuerySpec",
    "QueryTrace",
    "MutualInformationScoreProvider",
    "RunStats",
    "SampleSchedule",
    "TopKResult",
    "beta_sensitivity",
    "bias_bound",
    "default_failure_probability",
    "entropy_from_counts",
    "entropy_from_probabilities",
    "entropy_interval",
    "entropy_intervals",
    "initial_sample_size",
    "jackknife_entropy",
    "joint_entropy_from_counter",
    "joint_entropy_interval",
    "load_plan",
    "max_iterations",
    "mi_intervals",
    "miller_madow_entropy",
    "mutual_information_from_counts",
    "mutual_information_interval",
    "permutation_half_width",
    "plan_queries",
    "run_query_spec",
    "sample_size_for_width",
    "swope_filter_entropy",
    "swope_filter_mutual_information",
    "swope_top_k_entropy",
    "swope_top_k_mutual_information",
]
