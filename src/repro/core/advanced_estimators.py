"""Bias-reduced entropy estimators beyond the paper's plug-in + bound.

The reproduced paper handles plug-in bias with the explicit Lemma 1
allowance ``b(α)``; the wider literature it cites (Paninski [25], Valiant
& Valiant [30], Jiao et al. [17, 18], Wu & Yang [38]) instead *corrects*
the estimator. This module provides the standard practical correctors so
downstream users can cross-check SWOPE's interval estimates:

* :func:`good_turing_coverage` — the Good–Turing estimate of the sample
  coverage (probability mass of seen values);
* :func:`chao_shen_entropy` — coverage-adjusted Horvitz–Thompson
  estimator (Chao & Shen 2003), strong under severe undersampling;
* :func:`grassberger_entropy` — Grassberger's (2003) digamma-based
  correction, excellent when most values are observed a few times;
* :func:`digamma` — a dependency-free ψ implementation (recurrence +
  asymptotic series) used by the Grassberger estimator.

None of these carry the paper's finite-population confidence bounds —
they are point estimators for i.i.d. samples — which is why the SWOPE
algorithms do not use them; see ``DESIGN.md``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ParameterError

__all__ = [
    "chao_shen_entropy",
    "digamma",
    "good_turing_coverage",
    "grassberger_entropy",
]

#: Euler–Mascheroni constant (ψ(1) = -γ).
_EULER_GAMMA = 0.5772156649015329


def digamma(x: float) -> float:
    """The digamma function ψ(x) for real x > 0.

    Uses the recurrence ψ(x) = ψ(x + 1) − 1/x to push the argument above
    6, then the standard asymptotic series. Accurate to ~1e-12 over the
    positive reals, which is far below the statistical error of any
    entropy estimate this module feeds.
    """
    if x <= 0.0:
        raise ParameterError(f"digamma requires x > 0, got {x}")
    result = 0.0
    while x < 12.0:
        result -= 1.0 / x
        x += 1.0
    inv = 1.0 / x
    inv2 = inv * inv
    # psi(x) ~ ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6)
    #          + 1/(240x^8)  (next term ~ 1/(132 x^10): < 1e-13 at x >= 12)
    result += (
        # The digamma asymptotic series is ψ(x) ≈ ln x − …: natural log.
        math.log(x)  # noqa: SWP001
        - 0.5 * inv
        - inv2
        * (
            1.0 / 12.0
            - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0))
        )
    )
    return result


def _validated(counts: np.ndarray) -> np.ndarray:
    arr = np.asarray(counts)
    if arr.ndim != 1:
        raise ParameterError(f"counts must be 1-D, got shape {arr.shape}")
    if arr.size and int(arr.min()) < 0:
        raise ParameterError("counts must be non-negative")
    return arr[arr > 0].astype(np.float64)


def good_turing_coverage(counts: np.ndarray) -> float:
    """Good–Turing sample coverage ``C = 1 − f₁/M``.

    ``f₁`` is the number of values seen exactly once. ``C`` estimates the
    total probability of the values that have been observed at least
    once; ``1 − C`` is the unseen mass. Returns 1.0 for an empty sample
    (vacuously complete coverage).
    """
    positive = _validated(counts)
    total = positive.sum()
    if total == 0:
        return 1.0
    singletons = float((positive == 1.0).sum())
    coverage = 1.0 - singletons / total
    # With every value a singleton the raw formula gives 0, which breaks
    # the Horvitz-Thompson weights; the customary floor is 1/M.
    return max(coverage, 1.0 / total)


def chao_shen_entropy(counts: np.ndarray) -> float:
    """Chao–Shen coverage-adjusted entropy estimate (bits).

    Deflates the plug-in probabilities by the Good–Turing coverage
    (``p̃ = C·p̂``) and reweights each term by the probability the value
    was observed at all (Horvitz–Thompson):

    ``Ĥ = − Σ p̃ log2(p̃) / (1 − (1 − p̃)^M)``

    Markedly less biased than plug-in when many values are unseen.
    """
    positive = _validated(counts)
    total = positive.sum()
    if total == 0:
        return 0.0
    coverage = good_turing_coverage(positive)
    adjusted = coverage * positive / total
    inclusion = 1.0 - np.power(1.0 - adjusted, total)
    estimate = float(-(adjusted * np.log2(adjusted) / inclusion).sum())
    return max(0.0, estimate)


def grassberger_entropy(counts: np.ndarray) -> float:
    """Grassberger's (2003) entropy estimate (bits).

    ``Ĥ = log2(M) − (1/M) Σ n_i · G(n_i) / ln 2`` with
    ``G(n) = ψ(n) + ½(−1)ⁿ (ψ((n+1)/2) − ψ(n/2))``.

    The correction term vanishes for large counts (G(n) → ln n), so the
    estimate converges to plug-in on well-sampled data while removing
    most of the small-count bias.
    """
    positive = _validated(counts)
    total = positive.sum()
    if total == 0:
        return 0.0
    ln2 = math.log(2.0)
    acc = 0.0
    for n in positive:
        n_int = float(n)
        g = digamma(n_int)
        parity = 1.0 if int(n_int) % 2 == 0 else -1.0
        g += 0.5 * parity * (digamma((n_int + 1.0) / 2.0) - digamma(n_int / 2.0))
        acc += n_int * g
    estimate = math.log2(total) - acc / (total * ln2)
    return max(0.0, estimate)
