"""SWOPE approximate filtering query on empirical mutual info (Algorithm 4).

Identical to the entropy filtering query (Algorithm 2) with the entropy
bounds replaced by the Section 4 mutual-information bounds and the failure
budget tripled per attribute — exactly the substitution Algorithm 4 of the
paper describes. Returns attributes whose ``I(α_t, α)`` clears the
threshold ``η`` per the Definition 6 relaxation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

import numpy as np

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import TraceTarget
from repro.core.plan import QuerySpec, run_query_spec
from repro.core.results import FilterResult
from repro.core.schedule import SampleSchedule
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.data.sampling import PrefixSampler
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import CachePartition, PlanCache

__all__ = ["swope_filter_mutual_information"]


def swope_filter_mutual_information(
    store: ColumnSource,
    target: str,
    threshold: float,
    *,
    epsilon: float = 0.5,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    candidates: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    backend: str | CountingBackend | None = None,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    cache: "PlanCache | CachePartition | None" = None,
) -> FilterResult:
    """Answer an approximate MI filtering query with SWOPE (Algorithm 4).

    Parameters
    ----------
    store:
        The dataset to query.
    target:
        The target attribute ``α_t``.
    threshold:
        The filter threshold ``η`` in bits (the paper varies 0.1–0.5 for
        MI, which typically scores lower than entropy).
    epsilon:
        Error parameter of Definition 6; paper default ``0.5`` for MI.
    failure_probability:
        ``p_f``; defaults to the paper's ``1/N``.
    seed, candidates, schedule, sampler, backend:
        As in :func:`repro.core.mi_topk.swope_top_k_mutual_information`.
    budget, cancellation, strict:
        Resilience controls as in
        :func:`repro.core.filtering.swope_filter_entropy`.
    trace, metrics, cache:
        Observability hooks and the plan cache, as in
        :func:`repro.core.topk.swope_top_k_entropy`.
    """
    spec = QuerySpec(
        kind="filter",
        score="mutual_information",
        threshold=threshold,
        epsilon=epsilon,
        target=target,
        attributes=tuple(candidates) if candidates is not None else None,
    )
    return cast(
        FilterResult,
        run_query_spec(
            store, spec,
            failure_probability=failure_probability, seed=seed,
            schedule=schedule, sampler=sampler, backend=backend,
            trace=trace, budget=budget, cancellation=cancellation,
            strict=strict, metrics=metrics, cache=cache,
        ),
    )
