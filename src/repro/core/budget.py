"""Resource budgets and cooperative cancellation for SWOPE queries.

The adaptive loops of the paper run until their stopping rule fires,
which on adversarial or low-entropy data can mean scanning nearly the
whole table. A production service must instead bound every query by
wall-clock time and by work, and still return *something useful*. The
Lemma 3 confidence intervals make that degradation quantifiable: at any
interruption point the engine holds valid ``[lower, upper]`` bounds for
every live candidate, so a truncated run can report a best-effort answer
together with the guarantee it *actually* achieved (see
:class:`~repro.core.results.GuaranteeStatus`).

Two cooperating primitives implement this:

* :class:`QueryBudget` — declarative per-query limits (wall-clock
  deadline, cells scanned, sample size), checked once per adaptive
  iteration by :func:`~repro.core.engine.adaptive_top_k` and
  :func:`~repro.core.engine.adaptive_filter`;
* :class:`CancellationToken` — a thread-safe flag a caller (another
  thread, a signal handler, a request supervisor) can set to stop an
  in-flight query at its next iteration boundary.

Budget checks happen *between* iterations, so every query completes at
least one iteration and always holds intervals to answer from — the
anytime-estimator contract.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

from repro.exceptions import (
    BudgetExceededError,
    ParameterError,
    QueryCancelledError,
)

__all__ = [
    "QueryBudget",
    "CancellationToken",
    "check_interruption",
    "raise_interrupted",
]


@dataclass(frozen=True)
class QueryBudget:
    """Resource limits for one query (all optional, all positive).

    Parameters
    ----------
    deadline_ms:
        Wall-clock budget in milliseconds, measured from query start.
    max_cells:
        Maximum attribute values the query may read (the same
        machine-independent cost metric as
        :attr:`~repro.core.results.RunStats.cells_scanned`, counted
        relative to the query's start so session-shared samplers are
        budgeted per query).
    max_sample_size:
        Largest sample prefix ``M`` the schedule may grow to. The first
        iteration always runs even if its sample size already exceeds
        the cap (the engine needs at least one set of intervals to
        answer from).
    """

    deadline_ms: float | None = None
    max_cells: int | None = None
    max_sample_size: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline_ms", "max_cells", "max_sample_size"):
            value = getattr(self, name)
            if value is None:
                continue
            if not math.isfinite(value) or value <= 0:
                raise ParameterError(
                    f"{name} must be a finite positive number, got {value}"
                )
        for name in ("max_cells", "max_sample_size"):
            value = getattr(self, name)
            if value is not None and int(value) != value:
                raise ParameterError(f"{name} must be an integer, got {value}")

    @property
    def unlimited(self) -> bool:
        """True when no limit is set (the budget can never fire)."""
        return (
            self.deadline_ms is None
            and self.max_cells is None
            and self.max_sample_size is None
        )

    def exhausted(
        self,
        *,
        elapsed_seconds: float,
        cells_used: int,
        next_sample_size: int,
    ) -> str | None:
        """The stopping reason the budget dictates, or ``None`` to continue.

        Checked by the engine once per adaptive iteration, before
        growing the sample to ``next_sample_size``. Limits are evaluated
        in a fixed precedence order — deadline, then cell budget, then
        sample cap — so a run that violates several reports the same
        reason deterministically.
        """
        if self.deadline_ms is not None and elapsed_seconds * 1000.0 >= self.deadline_ms:
            return "deadline"
        if self.max_cells is not None and cells_used >= self.max_cells:
            return "cell_budget"
        if self.max_sample_size is not None and next_sample_size > self.max_sample_size:
            return "sample_cap"
        return None


class CancellationToken:
    """Cooperative cancellation flag checked once per adaptive iteration.

    Thread-safe: any thread may call :meth:`cancel` while a query runs
    in another. Cancellation is observed at the next iteration boundary
    — the engine never aborts mid-interval — and is sticky (a token
    cannot be un-cancelled; use a fresh token per query attempt).

    >>> token = CancellationToken()
    >>> token.cancelled
    False
    >>> token.cancel("shutting down")
    >>> token.cancelled, token.reason
    (True, 'shutting down')
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._reason: str | None = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        """The reason passed to :meth:`cancel`, if any."""
        return self._reason

    def cancel(self, reason: str | None = None) -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if reason is not None and self._reason is None:
            self._reason = reason
        self._event.set()

    def raise_if_cancelled(self) -> None:
        """Raise :class:`~repro.exceptions.QueryCancelledError` if cancelled."""
        if self.cancelled:
            from repro.exceptions import QueryCancelledError

            detail = f": {self._reason}" if self._reason else ""
            raise QueryCancelledError(
                f"operation cancelled{detail}", stopping_reason="cancelled"
            )


def check_interruption(
    budget: QueryBudget | None,
    cancellation: CancellationToken | None,
    *,
    elapsed_seconds: float,
    cells_used: int,
    next_sample_size: int,
) -> str | None:
    """The per-iteration checkpoint every adaptive loop must call.

    Returns the forced stopping reason (``"cancelled"``, ``"deadline"``,
    ``"cell_budget"``, ``"sample_cap"``) or ``None`` to continue.
    Cancellation is an explicit caller request and takes precedence over
    budget limits. Shared by the SWOPE engine and the exact-stopping
    baselines so that rule SWP003 has a single call signature to verify.
    """
    if cancellation is not None and cancellation.cancelled:
        return "cancelled"
    if budget is None:
        return None
    return budget.exhausted(
        elapsed_seconds=elapsed_seconds,
        cells_used=cells_used,
        next_sample_size=next_sample_size,
    )


def raise_interrupted(reason: str, partial: object) -> None:
    """Strict mode: surface a truncated run as the matching exception.

    ``partial`` is the best-effort result the non-strict path would have
    returned; it rides on the exception so callers can still use it.
    """
    if reason == "cancelled":
        raise QueryCancelledError(
            "query cancelled before its stopping rule fired",
            stopping_reason=reason,
            partial=partial,
        )
    raise BudgetExceededError(
        f"query budget exhausted ({reason}) before the stopping rule fired",
        stopping_reason=reason,
        partial=partial,
    )
