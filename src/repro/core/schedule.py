"""Sample-size schedule: initial size ``M0``, doubling, failure budgets.

All four SWOPE algorithms (and our EntropyRank/EntropyFilter baselines)
share the same adaptive loop skeleton:

1. start from an initial sample size ``M0``;
2. after each unsuccessful iteration grow the sample (doubling by default);
3. split the overall failure probability ``p_f`` uniformly over at most
   ``i_max = ceil(log2(N / M0)) + 1`` iterations and the attributes whose
   bounds are evaluated (``p'_f = p_f / (i_max · h)``; MI queries consume
   three bounds per attribute per iteration, hence the extra factor 3).

The paper's ``M0`` (discussion after Theorem 2) is::

    M0 = ln(h · log2(N) / p_f) · log2(N)² / log2(u_max)²

— the minimum sample justified when the k-th largest entropy takes its
largest possible value ``log2(u_max)`` and ``ε = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ParameterError

__all__ = ["SampleSchedule", "initial_sample_size", "max_iterations"]

#: Smallest initial sample we ever use. The β sensitivity needs ``M ≥ 2``;
#: in practice a handful of records cost nothing and keep the very first
#: bounds meaningful on tiny datasets.
MIN_INITIAL_SAMPLE = 16


def initial_sample_size(
    population_size: int,
    num_attributes: int,
    failure_probability: float,
    max_support_size: int,
) -> int:
    """The paper's initial sample size ``M0``, clamped to ``[16, N]``.

    ``u_max`` is clamped to at least 2 (an all-constant dataset would
    otherwise divide by ``log2(1) = 0``; any positive start is correct
    there since every score is exactly zero).
    """
    if population_size < 1:
        raise ParameterError(f"population size must be >= 1, got {population_size}")
    if num_attributes < 1:
        raise ParameterError(f"num attributes must be >= 1, got {num_attributes}")
    if not 0.0 < failure_probability < 1.0:
        raise ParameterError(
            f"failure probability must be in (0, 1), got {failure_probability}"
        )
    n = population_size
    u_max = max(2, max_support_size)
    log2_n = math.log2(max(n, 2))
    numerator = (
        # The paper's M0 uses ln(h·log2(N)/p_f) — natural log by design.
        math.log(num_attributes * max(log2_n, 1.0) / failure_probability)  # noqa: SWP001
        * log2_n**2
    )
    m0 = math.ceil(numerator / math.log2(u_max) ** 2)
    return max(MIN_INITIAL_SAMPLE, min(n, m0))


def max_iterations(population_size: int, initial_size: int) -> int:
    """``i_max = ceil(log2(N / M0)) + 1`` — the doubling-iteration budget."""
    if not 1 <= initial_size <= population_size:
        raise ParameterError(
            f"initial size must be in [1, {population_size}], got {initial_size}"
        )
    return math.ceil(math.log2(population_size / initial_size)) + 1


@dataclass(frozen=True)
class SampleSchedule:
    """A concrete growth schedule for one query run.

    Parameters
    ----------
    population_size:
        ``N`` of the dataset being queried.
    initial_size:
        First sample size ``M0``.
    growth_factor:
        Multiplier applied after each unsuccessful iteration. The paper
        doubles (factor 2); the ablation benches also exercise 1.5 and 4.
    mode:
        ``"geometric"`` (paper) multiplies by ``growth_factor``;
        ``"linear"`` adds ``initial_size`` each iteration (the batch style
        of the KDD'19 baseline paper).
    """

    population_size: int
    initial_size: int
    growth_factor: float = 2.0
    mode: str = "geometric"
    _sizes: tuple[int, ...] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.initial_size <= self.population_size:
            raise ParameterError(
                f"initial size must be in [1, {self.population_size}],"
                f" got {self.initial_size}"
            )
        if self.mode not in ("geometric", "linear"):
            raise ParameterError(f"unknown schedule mode {self.mode!r}")
        if self.mode == "geometric" and self.growth_factor <= 1.0:
            raise ParameterError(
                f"geometric growth factor must be > 1, got {self.growth_factor}"
            )
        sizes = [self.initial_size]
        while sizes[-1] < self.population_size:
            if self.mode == "geometric":
                nxt = int(math.ceil(sizes[-1] * self.growth_factor))
            else:
                nxt = sizes[-1] + self.initial_size
            nxt = max(nxt, sizes[-1] + 1)
            sizes.append(min(self.population_size, nxt))
        object.__setattr__(self, "_sizes", tuple(sizes))

    @property
    def sizes(self) -> tuple[int, ...]:
        """All sample sizes the schedule can visit, ending at ``N``."""
        return self._sizes

    @property
    def num_iterations(self) -> int:
        """Number of iterations if the loop never stops early."""
        return len(self._sizes)

    def per_round_failure(
        self, overall_failure: float, num_attributes: int, bounds_per_attribute: int = 1
    ) -> float:
        """Split ``p_f`` into the per-bound budget ``p'_f``.

        ``p'_f = p_f / (i_max · h · bounds_per_attribute)`` — entropy
        queries use one bound per attribute per iteration
        (``bounds_per_attribute = 1``); MI queries use three (target,
        candidate, joint — Algorithms 3-4 set ``p'_f = p_f / (3 i_max (h-1))``).
        """
        if not 0.0 < overall_failure < 1.0:
            raise ParameterError(
                f"failure probability must be in (0, 1), got {overall_failure}"
            )
        if num_attributes < 1:
            raise ParameterError(
                f"num attributes must be >= 1, got {num_attributes}"
            )
        if bounds_per_attribute < 1:
            raise ParameterError(
                f"bounds per attribute must be >= 1, got {bounds_per_attribute}"
            )
        budget = self.num_iterations * num_attributes * bounds_per_attribute
        return overall_failure / budget

    @classmethod
    def for_query(
        cls,
        population_size: int,
        num_attributes: int,
        failure_probability: float,
        max_support_size: int,
        *,
        growth_factor: float = 2.0,
        mode: str = "geometric",
        initial_size: int | None = None,
    ) -> "SampleSchedule":
        """Build the paper-default schedule for one query.

        ``initial_size`` overrides the ``M0`` formula when given (used by
        ablations and tests).
        """
        if initial_size is None:
            initial_size = initial_sample_size(
                population_size, num_attributes, failure_probability, max_support_size
            )
        return cls(
            population_size=population_size,
            initial_size=min(initial_size, population_size),
            growth_factor=growth_factor,
            mode=mode,
        )
