"""Shared adaptive-sampling engine behind all four SWOPE algorithms.

Algorithms 1–4 of the paper differ only in (a) which score they bound —
entropy or mutual information — and (b) which stopping rule they apply —
top-k or filtering. This module factors the common structure:

* **Score providers** (:class:`EntropyScoreProvider`,
  :class:`MutualInformationScoreProvider`) turn an attribute name and a
  sample size into a confidence interval, hiding whether one bound (entropy)
  or three bounds (MI: target, candidate, joint) were consumed.
* **Generic loops** (:func:`adaptive_top_k`, :func:`adaptive_filter`)
  implement the doubling iteration, the stopping rules, and the candidate
  pruning exactly as in the paper's pseudo-code, over any provider.

The entropy/MI-specific public entry points in :mod:`repro.core.topk`,
:mod:`repro.core.filtering`, :mod:`repro.core.mi_topk`, and
:mod:`repro.core.mi_filtering` are thin wrappers that build the provider
and schedule, then delegate here. The unifying observation that makes this
factoring exact: for both scores the stopping quantity of the top-k rule,
``2λ + b_max`` (entropy) or ``6λ + b'_max`` (MI), equals the maximum
interval *width* over the current answer set ``R``.
"""

from __future__ import annotations

import heapq
import math
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Callable, Protocol, Union

from repro.core.bounds import (
    ConfidenceInterval,
    MutualInformationInterval,
    entropy_interval,
    entropy_intervals,
    mi_intervals,
)
from repro.core.budget import (
    CancellationToken,
    QueryBudget,
    check_interruption,
    raise_interrupted,
)
from repro.core.estimators import (
    _entropies_from_trusted_counts,
    _entropy_from_trusted_counts,
)
from repro.core.results import (
    AttributeEstimate,
    FilterResult,
    GuaranteeStatus,
    RunStats,
    TopKResult,
)
from repro.core.schedule import SampleSchedule
from repro.data.sampling import PrefixSampler
from repro.exceptions import ParameterError, SchemaError, UnknownAttributeError
from repro.obs.events import (
    BudgetDegradationEvent,
    IterationEvent,
    PruneEvent,
    QueryEndEvent,
    QueryStartEvent,
    TraceEvent,
)
from repro.obs.metrics import MetricsRegistry, record_query
from repro.obs.sinks import TraceSink

__all__ = [
    "EntropyScoreProvider",
    "IterationTrace",
    "LoopCheckpoint",
    "MutualInformationScoreProvider",
    "PhaseTimings",
    "QueryTrace",
    "ScoreProvider",
    "TraceTarget",
    "adaptive_top_k",
    "adaptive_filter",
    "validate_epsilon",
    "validate_failure_probability",
    "validate_k",
    "validate_threshold",
    "default_failure_probability",
]

Interval = Union[ConfidenceInterval, MutualInformationInterval]


# ----------------------------------------------------------------------
# Parameter validation shared by every public query function
# ----------------------------------------------------------------------
def validate_epsilon(epsilon: float) -> float:
    """Check ``0 < ε < 1`` (Definitions 5–6), finite, and return it."""
    if not math.isfinite(epsilon) or not 0.0 < epsilon < 1.0:
        raise ParameterError(f"epsilon must be a finite value in (0, 1), got {epsilon}")
    return float(epsilon)


def validate_failure_probability(failure_probability: float) -> float:
    """Check ``0 < p_f < 1``, finite, and return it."""
    if not math.isfinite(failure_probability) or not 0.0 < failure_probability < 1.0:
        raise ParameterError(
            f"failure probability must be a finite value in (0, 1),"
            f" got {failure_probability}"
        )
    return float(failure_probability)


def validate_k(k: int) -> int:
    """Check ``k >= 1`` and return it."""
    if int(k) != k or k < 1:
        raise ParameterError(f"k must be a positive integer, got {k}")
    return int(k)


def validate_threshold(threshold: float) -> float:
    """Check ``η >= 0`` (scores are non-negative), finite, and return it.

    NaN and infinity are rejected explicitly: ``float("nan") < 0.0`` is
    False, so a bare range check would admit a NaN threshold into the
    filtering loop, where no interval comparison can ever decide an
    attribute against it.
    """
    if not math.isfinite(threshold) or threshold < 0.0:
        raise ParameterError(f"threshold must be finite and >= 0, got {threshold}")
    return float(threshold)


def default_failure_probability(population_size: int) -> float:
    """The paper's default ``p_f = 1/N`` (Section 6.1), floored for tiny N."""
    return min(0.5, 1.0 / max(population_size, 2))


# ----------------------------------------------------------------------
# Score providers
# ----------------------------------------------------------------------
@dataclass
class PhaseTimings:
    """Cumulative wall-clock split of a provider's work, by phase.

    Providers accumulate into one instance over their lifetime; the
    adaptive loops snapshot it at query start and write the per-query
    deltas into :class:`~repro.core.results.RunStats`, so a
    session-shared provider attributes each query only its own time.
    """

    #: Seconds spent gathering sample blocks and histogramming them.
    counting_seconds: float = 0.0
    #: Seconds spent turning counts into entropies and Lemma 1–3 intervals.
    bounds_seconds: float = 0.0

    def snapshot(self) -> tuple[float, float]:
        """Current ``(counting_seconds, bounds_seconds)`` for delta accounting."""
        return (self.counting_seconds, self.bounds_seconds)


class ScoreProvider(Protocol):
    """What the generic loops need from a score implementation."""

    #: How many Lemma 3 bounds one interval consumes (1 entropy, 3 MI) —
    #: used to split the failure budget.
    bounds_per_attribute: int

    #: Cumulative counting/bounds wall-clock, snapshotted by the loops.
    timings: PhaseTimings

    def interval(self, attribute: str, sample_size: int) -> Interval:
        """Confidence interval of the attribute's score at ``sample_size``."""
        ...  # pragma: no cover - protocol

    def intervals(
        self, attributes: Sequence[str], sample_size: int
    ) -> Mapping[str, Interval]:
        """Confidence intervals of a batch of attributes at ``sample_size``.

        One counting pass and one bounds pass for the whole batch; each
        returned interval is bit-identical to the scalar
        :meth:`interval` for the same attribute and sample size.
        """
        ...  # pragma: no cover - protocol


class EntropyScoreProvider:
    """Lemma 3 entropy intervals over a prefix sampler.

    ``beta_mode`` selects the sensitivity form inside λ: the paper's
    tight closed form (default) or the loose ``2 log2(M)/M`` analysis
    bound (ablation A5).
    """

    bounds_per_attribute = 1

    def __init__(
        self,
        sampler: PrefixSampler,
        failure_per_bound: float,
        *,
        beta_mode: str = "tight",
    ) -> None:
        self._sampler = sampler
        self._p = validate_failure_probability(failure_per_bound)
        self._n = sampler.num_rows
        self._beta_mode = beta_mode
        self.timings = PhaseTimings()

    def interval(self, attribute: str, sample_size: int) -> ConfidenceInterval:
        return self.intervals((attribute,), sample_size)[attribute]

    def intervals(
        self, attributes: Sequence[str], sample_size: int
    ) -> dict[str, ConfidenceInterval]:
        counting_start = time.perf_counter()
        counts = self._sampler.marginal_counts_batch(attributes, sample_size)
        bounds_start = time.perf_counter()
        store = self._sampler.store
        names = list(counts)
        ivs = entropy_intervals(
            _entropies_from_trusted_counts([counts[a] for a in names], sample_size),
            [store.support_size(a) for a in names],
            sample_size,
            self._n,
            self._p,
            beta_mode=self._beta_mode,
        )
        done = time.perf_counter()
        self.timings.counting_seconds += bounds_start - counting_start
        self.timings.bounds_seconds += done - bounds_start
        return dict(zip(names, ivs))


class MutualInformationScoreProvider:
    """Section 4 MI intervals ``I(α_t, α)`` over a prefix sampler.

    The target attribute's entropy interval is computed once per sample
    size and shared across all candidates of that iteration (as in
    Algorithm 3, line 3).
    """

    bounds_per_attribute = 3

    def __init__(
        self, sampler: PrefixSampler, target: str, failure_per_bound: float
    ) -> None:
        if target not in sampler.store:
            raise SchemaError(f"unknown target attribute {target!r}")
        self._sampler = sampler
        self._target = target
        self._p = validate_failure_probability(failure_per_bound)
        self._n = sampler.num_rows
        self._target_cache: tuple[int, ConfidenceInterval] | None = None
        self.timings = PhaseTimings()

    @property
    def target(self) -> str:
        """The target attribute ``α_t``."""
        return self._target

    def _target_interval(self, sample_size: int) -> ConfidenceInterval:
        if self._target_cache is not None and self._target_cache[0] == sample_size:
            return self._target_cache[1]
        counting_start = time.perf_counter()
        counts = self._sampler.marginal_counts(self._target, sample_size)
        bounds_start = time.perf_counter()
        sample_entropy = _entropy_from_trusted_counts(counts, sample_size)
        iv = entropy_interval(
            sample_entropy,
            self._sampler.store.support_size(self._target),
            sample_size,
            self._n,
            self._p,
        )
        done = time.perf_counter()
        self.timings.counting_seconds += bounds_start - counting_start
        self.timings.bounds_seconds += done - bounds_start
        self._target_cache = (sample_size, iv)
        return iv

    def interval(self, attribute: str, sample_size: int) -> MutualInformationInterval:
        return self.intervals((attribute,), sample_size)[attribute]

    def intervals(
        self, attributes: Sequence[str], sample_size: int
    ) -> dict[str, MutualInformationInterval]:
        for attribute in attributes:
            if attribute == self._target:
                raise SchemaError(
                    f"candidate equals the target attribute {attribute!r}"
                )
        store = self._sampler.store
        target_iv = self._target_interval(sample_size)
        counting_start = time.perf_counter()
        counts = self._sampler.marginal_counts_batch(attributes, sample_size)
        joints = self._sampler.joint_counts_batch(
            self._target, attributes, sample_size
        )
        bounds_start = time.perf_counter()
        names = list(counts)
        ivs = mi_intervals(
            target_iv,
            _entropies_from_trusted_counts([counts[a] for a in names], sample_size),
            [store.support_size(a) for a in names],
            _entropies_from_trusted_counts(
                [joints[a].nonzero_counts() for a in names], sample_size
            ),
            store.support_size(self._target),
            sample_size,
            self._n,
            self._p,
        )
        done = time.perf_counter()
        self.timings.counting_seconds += bounds_start - counting_start
        self.timings.bounds_seconds += done - bounds_start
        return dict(zip(names, ivs))


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
@dataclass
class IterationTrace:
    """Snapshot of one adaptive iteration (for diagnostics/teaching).

    Attributes
    ----------
    sample_size:
        ``M`` of the iteration.
    candidates:
        Attributes still alive when the iteration started.
    bounds:
        ``{attribute: (lower, upper)}`` of every interval computed.
    decided:
        Attributes retired this iteration (filtering loops; empty for
        top-k, which retires candidates only by pruning).
    stopped:
        Whether the stopping rule fired at this sample size.
    """

    sample_size: int
    candidates: list[str]
    bounds: dict[str, tuple[float, float]]
    decided: list[str] = field(default_factory=list)
    stopped: bool = False


@dataclass
class QueryTrace:
    """Per-iteration history of one adaptive query.

    Pass a fresh instance as ``trace=`` to any SWOPE query function; the
    engine fills ``iterations`` as it runs. Interval widths over
    ``iterations`` visualise how the bounds tighten and exactly when the
    stopping rule fires (see ``examples/bound_convergence.py``).
    """

    iterations: list[IterationTrace] = field(default_factory=list)

    def widths(self, attribute: str) -> list[tuple[int, float]]:
        """``(sample_size, upper - lower)`` wherever ``attribute`` appears.

        Raises
        ------
        UnknownAttributeError
            If ``attribute`` never appears in any recorded iteration —
            neither as a live candidate nor in the computed bounds. A
            silent ``[]`` here used to mask typos in diagnostics code.
        """
        out = []
        known = False
        for snapshot in self.iterations:
            if attribute in snapshot.bounds:
                known = True
                lower, upper = snapshot.bounds[attribute]
                out.append((snapshot.sample_size, upper - lower))
            elif attribute in snapshot.candidates:
                known = True
        if not known:
            raise UnknownAttributeError(
                f"attribute {attribute!r} appears in no recorded iteration"
                " of this trace"
            )
        return out


#: Accepted by every ``trace=`` parameter: the legacy in-process
#: :class:`QueryTrace` recorder, or any :class:`repro.obs.sinks.TraceSink`.
TraceTarget = Union[QueryTrace, TraceSink]


@dataclass(frozen=True)
class LoopCheckpoint:
    """Resumable state of an adaptive loop at one iteration boundary.

    Captured by the ``checkpoint=`` hook of :func:`adaptive_top_k` /
    :func:`adaptive_filter` *after* the boundary's pruning/retiring, so
    a loop restarted from it (``resume_state=``) replays exactly the
    iterations an uninterrupted run would have executed next — the
    shared sampler's counters carry the rest of the state. Everything
    here is deterministic at a fixed seed; serialisation belongs to
    :mod:`repro.durability.checkpoint`.

    Attributes
    ----------
    kind:
        ``"top_k"`` or ``"filter"`` — which loop the state belongs to
        (resuming into the other loop is a :class:`ParameterError`).
    next_index:
        Schedule index the resumed loop runs first.
    iterations:
        Iterations completed so far (feeds ``RunStats.iterations``).
    live:
        Live candidates (top-k) / still-undecided attributes (filter).
    pruned:
        Candidates pruned so far (top-k; feeds
        ``RunStats.candidates_pruned``).
    included:
        Attributes already included (filter only), in decision order.
    estimates:
        Estimates of every retired attribute (filter only), in decision
        order.
    """

    kind: str
    next_index: int
    iterations: int
    live: tuple[str, ...]
    pruned: int = 0
    included: tuple[str, ...] = ()
    estimates: tuple[AttributeEstimate, ...] = ()


#: The per-iteration-boundary hook the plan executor uses to persist state.
CheckpointHook = Callable[[LoopCheckpoint], None]


def _resume_state_for(
    resume_state: LoopCheckpoint | None, kind: str, schedule: SampleSchedule
) -> LoopCheckpoint | None:
    """Validate a ``resume_state`` against the loop it is entering."""
    if resume_state is None:
        return None
    if resume_state.kind != kind:
        raise ParameterError(
            f"cannot resume a {resume_state.kind!r} loop state in a"
            f" {kind!r} loop"
        )
    if not 0 < resume_state.next_index < len(schedule.sizes):
        raise ParameterError(
            f"resume state points at schedule index {resume_state.next_index},"
            f" outside (0, {len(schedule.sizes)})"
        )
    if not resume_state.live:
        raise ParameterError("resume state has no live attributes")
    return resume_state


def _score_name(provider: ScoreProvider) -> str:
    """Human label of the provider's score, for trace/metric dimensions."""
    return "entropy" if provider.bounds_per_attribute == 1 else "mutual_information"


class _TraceState:
    """Routes the loops' observations to a QueryTrace and/or a TraceSink.

    Splits the polymorphic ``trace=`` argument into its two legal shapes
    and pre-computes the only flag the hot loop consults:
    ``active`` — whether structured events must be constructed at all.
    A disabled sink (:class:`repro.obs.sinks.NullSink`) and ``trace=None``
    are indistinguishable here, which is what makes the default path
    zero-overhead: no event objects, no bounds dicts, no emit calls.
    """

    __slots__ = ("legacy", "sink", "active", "events")

    def __init__(self, trace: TraceTarget | None) -> None:
        self.legacy: QueryTrace | None = None
        self.sink: TraceSink | None = None
        if isinstance(trace, QueryTrace):
            self.legacy = trace
        elif trace is not None and getattr(trace, "enabled", True):
            self.sink = trace
        self.active = self.sink is not None
        self.events = 0

    def emit(self, event: TraceEvent) -> None:
        assert self.sink is not None
        self.sink.emit(event)
        self.events += 1


# ----------------------------------------------------------------------
# Generic adaptive loops
# ----------------------------------------------------------------------
@dataclass
class _LoopContext:
    """Bookkeeping shared by the two loops."""

    sampler: PrefixSampler
    provider: ScoreProvider
    stats: RunStats
    started_at: float
    cells_at_start: int = 0
    timings_at_start: tuple[float, float] = (0.0, 0.0)
    saved_at_start: int = 0

    def finish(self, iterations: int, sample_size: int) -> RunStats:
        self.stats.iterations = iterations
        self.stats.final_sample_size = sample_size
        self.stats.population_size = self.sampler.num_rows
        self.stats.cells_scanned = self.sampler.cells_scanned
        # Unlike the cumulative cells meter, saved cells are reported as
        # this query's own delta — that is what cache metrics sum up.
        self.stats.cells_saved = self.sampler.cells_saved - self.saved_at_start
        self.stats.wall_seconds = time.perf_counter() - self.started_at
        counting_before, bounds_before = self.timings_at_start
        timings = self.provider.timings
        self.stats.counting_seconds = timings.counting_seconds - counting_before
        self.stats.bounds_seconds = timings.bounds_seconds - bounds_before
        return self.stats

    def interruption(
        self,
        budget: QueryBudget | None,
        cancellation: CancellationToken | None,
        next_sample_size: int,
    ) -> str | None:
        """Stopping reason forced by cancellation or the budget, if any.

        Called once per adaptive iteration, between completing one
        sample size and growing to the next, so every query completes at
        least one iteration and always holds valid intervals to answer
        from. Cancellation is an explicit caller request and takes
        precedence over budget limits. The cell budget is measured
        against this query's own reads (``cells_at_start`` delta), so a
        session-shared sampler is budgeted per query, not cumulatively.
        Delegates to :func:`repro.core.budget.check_interruption`, the
        checkpoint shared with the exact-stopping baselines.
        """
        return check_interruption(
            budget,
            cancellation,
            elapsed_seconds=time.perf_counter() - self.started_at,
            cells_used=self.sampler.cells_scanned - self.cells_at_start,
            next_sample_size=next_sample_size,
        )


def _estimate_from_interval(
    attribute: str, iv: Interval, sample_size: int
) -> AttributeEstimate:
    return AttributeEstimate(
        attribute=attribute,
        estimate=max(iv.lower, min(iv.upper, iv.midpoint)),
        lower=iv.lower,
        upper=iv.upper,
        sample_size=sample_size,
    )


def _kth_largest(values: list[float], k: int) -> float:
    """The k-th largest element of ``values`` (1-based k, k <= len).

    Heap-based selection: ``O(n log k)`` instead of the ``O(n log n)``
    full sort — this runs every iteration over all live candidates.
    """
    return heapq.nlargest(k, values)[-1]


def adaptive_top_k(
    provider: ScoreProvider,
    sampler: PrefixSampler,
    candidates: list[str],
    k: int,
    epsilon: float,
    schedule: SampleSchedule,
    *,
    prune: bool = True,
    target: str | None = None,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    checkpoint: CheckpointHook | None = None,
    resume_state: LoopCheckpoint | None = None,
) -> TopKResult:
    """Generic SWOPE approximate top-k loop (Algorithms 1 and 3).

    Parameters
    ----------
    provider:
        Score implementation (entropy or MI).
    sampler:
        The prefix sampler over the queried store (also the cost meter).
    candidates:
        Candidate attribute names (for MI: all attributes except the
        target).
    k:
        Number of attributes to return; clamped to ``len(candidates)``.
    epsilon:
        Relative-error parameter of Definition 5.
    schedule:
        Sample-size growth schedule.
    prune:
        Apply the candidate-pruning step (Algorithm 1, lines 15–17). The
        ablation benches switch this off.
    target:
        Recorded on the result for MI queries.
    budget:
        Optional :class:`~repro.core.budget.QueryBudget` checked once
        per iteration; on exhaustion the loop returns a best-effort
        answer built from the current intervals (still valid Lemma 3
        bounds) with ``result.guarantee`` recording why it stopped.
    cancellation:
        Optional :class:`~repro.core.budget.CancellationToken` observed
        at the same per-iteration checkpoint.
    strict:
        Raise :class:`~repro.exceptions.BudgetExceededError` /
        :class:`~repro.exceptions.QueryCancelledError` (carrying the
        best-effort result as ``.partial``) instead of returning a
        degraded answer.
    trace:
        A :class:`QueryTrace` (in-process per-iteration history, the
        legacy shape) or any :class:`~repro.obs.sinks.TraceSink`, which
        receives the structured event stream (``query_start``,
        ``iteration``, ``prune``, ``budget_degradation``, ``query_end``)
        — including for degraded and strict-raised runs. ``None`` or a
        disabled sink costs nothing.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the run's
        accounting feeds the standard instruments via
        :func:`repro.obs.metrics.record_query`.
    checkpoint:
        Optional hook called once per iteration boundary (after pruning,
        only when the loop will continue) with the
        :class:`LoopCheckpoint` a resumed loop needs; the plan executor
        persists it via :mod:`repro.durability.checkpoint`.
    resume_state:
        A previously captured :class:`LoopCheckpoint` to restart from:
        the loop skips the already-completed iterations (their counters
        live in the shared sampler) and emits no ``query_start`` event —
        the interrupted run already emitted it.

    Notes
    -----
    The stopping rule at each iteration is
    ``(Ū_k - w_max) / Ū_k >= 1 - ε`` where ``Ū_k`` is the k-th largest
    upper bound over the candidates and ``w_max`` the largest interval
    width within the current answer set ``R`` — equal to ``2λ + b_max``
    for entropy and ``6λ + b'_max`` for MI. A non-positive ``Ū_k`` means
    every remaining score is exactly zero, so any k attributes satisfy
    Definition 5 and the loop stops.
    """
    epsilon = validate_epsilon(epsilon)
    k = validate_k(k)
    if not candidates:
        raise ParameterError("top-k query needs at least one candidate attribute")
    k_effective = min(k, len(candidates))
    resume_state = _resume_state_for(resume_state, "top_k", schedule)
    ctx = _LoopContext(
        sampler,
        provider,
        RunStats(),
        time.perf_counter(),
        sampler.cells_scanned,
        provider.timings.snapshot(),
        sampler.cells_saved,
    )
    tracer = _TraceState(trace)
    if tracer.active and resume_state is None:
        tracer.emit(
            QueryStartEvent(
                kind="top_k",
                score=_score_name(provider),
                candidates=tuple(candidates),
                population_size=sampler.num_rows,
                epsilon=epsilon,
                k=k,
                target=target,
                schedule=tuple(schedule.sizes),
            )
        )
    live = list(candidates)
    iterations = 0
    start_index = 0
    if resume_state is not None:
        live = list(resume_state.live)
        iterations = resume_state.iterations
        start_index = resume_state.next_index
        ctx.stats.candidates_pruned = resume_state.pruned
    answer: list[tuple[str, Interval]] = []
    stop_reason: str | None = None
    sample_size = schedule.sizes[start_index]
    for index in range(start_index, len(schedule.sizes)):
        sample_size = schedule.sizes[index]
        iterations += 1
        intervals = provider.intervals(live, sample_size)
        by_upper = sorted(live, key=lambda a: intervals[a].upper, reverse=True)
        answer = [(a, intervals[a]) for a in by_upper[:k_effective]]
        upper_k = answer[-1][1].upper
        width_max = max(iv.width for _, iv in answer)
        stopped = upper_k <= 0.0 or (
            (upper_k - width_max) / upper_k >= 1.0 - epsilon
        )
        if tracer.legacy is not None:
            tracer.legacy.iterations.append(
                IterationTrace(
                    sample_size=sample_size,
                    candidates=list(live),
                    bounds={a: (iv.lower, iv.upper) for a, iv in intervals.items()},
                    stopped=stopped,
                )
            )
        if tracer.active:
            tracer.emit(
                IterationEvent(
                    index=index,
                    sample_size=sample_size,
                    candidates=tuple(live),
                    bounds={a: (iv.lower, iv.upper) for a, iv in intervals.items()},
                    stopped=stopped,
                )
            )
        if stopped:
            stop_reason = "converged"
            break
        if index == len(schedule.sizes) - 1:
            # M reached N: λ = b = 0 so the condition above must have fired
            # unless upper_k <= 0, which also fired. Defensive only.
            break  # pragma: no cover
        stop_reason = ctx.interruption(budget, cancellation, schedule.sizes[index + 1])
        if stop_reason is not None:
            if tracer.active:
                tracer.emit(
                    BudgetDegradationEvent(
                        sample_size=sample_size, reason=stop_reason
                    )
                )
            break
        if prune and len(live) > k_effective:
            lower_k = _kth_largest([intervals[a].lower for a in live], k_effective)
            survivors = [a for a in live if intervals[a].upper >= lower_k]
            gone = [a for a in live if intervals[a].upper < lower_k]
            for attribute in gone:
                ctx.stats.candidates_pruned += 1
                sampler.release(attribute)
            if gone and tracer.active:
                tracer.emit(
                    PruneEvent(
                        sample_size=sample_size,
                        pruned=tuple(gone),
                        survivors=len(survivors),
                    )
                )
            live = survivors
        if checkpoint is not None:
            checkpoint(
                LoopCheckpoint(
                    kind="top_k",
                    next_index=index + 1,
                    iterations=iterations,
                    live=tuple(live),
                    pruned=ctx.stats.candidates_pruned,
                )
            )
    stats = ctx.finish(iterations, sample_size)
    estimates = [
        _estimate_from_interval(a, iv, sample_size) for a, iv in answer
    ]
    reason = stop_reason if stop_reason is not None else "converged"
    # Back-solve the achieved ε from the stopping quantity: the answer
    # satisfies Definition 5 with ε' = w_max / Ū_k (0 when every
    # remaining score is exactly zero).
    upper_k = answer[-1][1].upper
    width_max = max(iv.width for _, iv in answer)
    achieved = 0.0 if upper_k <= 0.0 else width_max / upper_k
    guarantee = GuaranteeStatus(
        guarantee_met=reason == "converged",
        stopping_reason=reason,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
    )
    result = TopKResult(
        attributes=[a for a, _ in answer],
        estimates=estimates,
        stats=stats,
        k=k,
        target=target,
        guarantee=guarantee,
    )
    if tracer.active:
        tracer.emit(
            QueryEndEvent(
                stopping_reason=reason,
                guarantee_met=guarantee.guarantee_met,
                requested_epsilon=epsilon,
                achieved_epsilon=achieved,
                iterations=iterations,
                final_sample_size=sample_size,
                cells_scanned=stats.cells_scanned,
                answer=tuple(a for a, _ in answer),
            )
        )
    stats.trace_event_count = tracer.events
    if metrics is not None:
        record_query(
            metrics,
            kind="top_k",
            score=_score_name(provider),
            stats=stats,
            guarantee=guarantee,
        )
    if strict and not guarantee.guarantee_met:
        raise_interrupted(reason, result)
    return result


def adaptive_filter(
    provider: ScoreProvider,
    sampler: PrefixSampler,
    candidates: list[str],
    threshold: float,
    epsilon: float,
    schedule: SampleSchedule,
    *,
    target: str | None = None,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    checkpoint: CheckpointHook | None = None,
    resume_state: LoopCheckpoint | None = None,
) -> FilterResult:
    """Generic SWOPE approximate filtering loop (Algorithms 2 and 4).

    For each undecided attribute at each sample size, in the paper's order:

    1. if the interval width ``< 2εη``, decide by comparing the interval
       midpoint against ``η`` and retire the attribute;
    2. else if the lower bound ``>= (1 - ε)η``, include and retire;
    3. else if the upper bound ``< (1 + ε)η``, exclude and retire.

    The loop ends when no attribute is undecided or the sample is the whole
    dataset (at which point widths are zero and rule 1 or 2 retires
    everything). ``budget``/``cancellation``/``strict``/``trace``/
    ``metrics``/``checkpoint``/``resume_state`` behave as in
    :func:`adaptive_top_k`; a truncated run resolves the still-undecided
    attributes best-effort by interval midpoint and lists them in
    ``result.guarantee.undecided``. A filter checkpoint additionally
    carries the already-included attributes and retired estimates, in
    decision order, so a resumed run's final ordering is bit-identical.
    """
    epsilon = validate_epsilon(epsilon)
    threshold = validate_threshold(threshold)
    if not candidates:
        raise ParameterError("filtering query needs at least one candidate attribute")
    resume_state = _resume_state_for(resume_state, "filter", schedule)
    ctx = _LoopContext(
        sampler,
        provider,
        RunStats(),
        time.perf_counter(),
        sampler.cells_scanned,
        provider.timings.snapshot(),
        sampler.cells_saved,
    )
    tracer = _TraceState(trace)
    if tracer.active and resume_state is None:
        tracer.emit(
            QueryStartEvent(
                kind="filter",
                score=_score_name(provider),
                candidates=tuple(candidates),
                population_size=sampler.num_rows,
                epsilon=epsilon,
                threshold=threshold,
                target=target,
                schedule=tuple(schedule.sizes),
            )
        )
    undecided = list(candidates)
    included: list[str] = []
    estimates: dict[str, AttributeEstimate] = {}
    last_intervals: dict[str, Interval] = {}
    iterations = 0
    start_index = 0
    if resume_state is not None:
        undecided = list(resume_state.live)
        included = list(resume_state.included)
        estimates = {e.attribute: e for e in resume_state.estimates}
        iterations = resume_state.iterations
        start_index = resume_state.next_index
    stop_reason: str | None = None
    sample_size = schedule.sizes[start_index]
    for index in range(start_index, len(schedule.sizes)):
        sample_size = schedule.sizes[index]
        iterations += 1
        still: list[str] = []
        decided_now: list[str] = []
        snapshot = (
            IterationTrace(
                sample_size=sample_size,
                candidates=list(undecided),
                bounds={},
            )
            if tracer.legacy is not None
            else None
        )
        intervals = provider.intervals(undecided, sample_size)
        for attribute in undecided:
            iv = intervals[attribute]
            last_intervals[attribute] = iv
            if snapshot is not None:
                snapshot.bounds[attribute] = (iv.lower, iv.upper)
            decided = True
            if iv.width < 2.0 * epsilon * threshold:
                if iv.midpoint >= threshold:
                    included.append(attribute)
            elif iv.lower >= (1.0 - epsilon) * threshold:
                included.append(attribute)
            elif iv.upper < (1.0 + epsilon) * threshold:
                pass  # excluded
            else:
                decided = False
                still.append(attribute)
            if decided:
                decided_now.append(attribute)
                estimates[attribute] = _estimate_from_interval(
                    attribute, iv, sample_size
                )
                sampler.release(attribute)
        undecided = still
        if snapshot is not None and tracer.legacy is not None:
            snapshot.decided.extend(decided_now)
            snapshot.stopped = not undecided
            tracer.legacy.iterations.append(snapshot)
        if tracer.active:
            tracer.emit(
                IterationEvent(
                    index=index,
                    sample_size=sample_size,
                    candidates=tuple(intervals),
                    bounds={a: (iv.lower, iv.upper) for a, iv in intervals.items()},
                    decided=tuple(decided_now),
                    stopped=not undecided,
                )
            )
        if not undecided:
            stop_reason = "converged"
            break
        if index < len(schedule.sizes) - 1:
            stop_reason = ctx.interruption(
                budget, cancellation, schedule.sizes[index + 1]
            )
            if stop_reason is not None:
                if tracer.active:
                    tracer.emit(
                        BudgetDegradationEvent(
                            sample_size=sample_size, reason=stop_reason
                        )
                    )
                break
            if checkpoint is not None:
                checkpoint(
                    LoopCheckpoint(
                        kind="filter",
                        next_index=index + 1,
                        iterations=iterations,
                        live=tuple(undecided),
                        included=tuple(included),
                        estimates=tuple(estimates[a] for a in estimates),
                    )
                )
    if stop_reason is None:
        # At M = N all widths are 0, so rule 1 (η > 0) or rule 2 (η = 0)
        # retires every attribute; reaching here with undecided attributes
        # would indicate a bounds bug.
        assert not undecided, "filtering loop ended with undecided attributes"
        stop_reason = "converged"
    undecided_at_stop = tuple(undecided)
    for attribute in undecided_at_stop:
        # Best-effort resolution of the attributes the budget cut off:
        # decide by midpoint, keep the (still valid) current interval.
        iv = last_intervals[attribute]
        if iv.midpoint >= threshold:
            included.append(attribute)
        estimates[attribute] = _estimate_from_interval(attribute, iv, sample_size)
    achieved = epsilon
    if undecided_at_stop:
        if threshold > 0.0:
            # Smallest ε' whose width rule (width < 2ε'η) would have
            # decided every remaining attribute at the final intervals.
            worst = max(last_intervals[a].width for a in undecided_at_stop)
            achieved = max(epsilon, worst / (2.0 * threshold))
        else:  # pragma: no cover - η = 0 decides every attribute instantly
            achieved = float("inf")
    guarantee = GuaranteeStatus(
        guarantee_met=stop_reason == "converged",
        stopping_reason=stop_reason,
        requested_epsilon=epsilon,
        achieved_epsilon=achieved,
        undecided=undecided_at_stop,
    )
    included.sort(key=lambda a: estimates[a].estimate, reverse=True)
    stats = ctx.finish(iterations, sample_size)
    result = FilterResult(
        attributes=included,
        estimates=estimates,
        stats=stats,
        threshold=threshold,
        target=target,
        guarantee=guarantee,
    )
    if tracer.active:
        tracer.emit(
            QueryEndEvent(
                stopping_reason=stop_reason,
                guarantee_met=guarantee.guarantee_met,
                requested_epsilon=epsilon,
                achieved_epsilon=achieved,
                iterations=iterations,
                final_sample_size=sample_size,
                cells_scanned=stats.cells_scanned,
                answer=tuple(included),
                undecided=undecided_at_stop,
            )
        )
    stats.trace_event_count = tracer.events
    if metrics is not None:
        record_query(
            metrics,
            kind="filter",
            score=_score_name(provider),
            stats=stats,
            guarantee=guarantee,
        )
    if strict and not guarantee.guarantee_met:
        raise_interrupted(stop_reason, result)
    return result
