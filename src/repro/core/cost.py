"""Analytic (and optionally trace-calibrated) per-query cost estimates.

The planner's scheduling decision — which query of a batch to run first —
needs a *deterministic* prediction of each query's cost, because a
cache-warm rerun must schedule exactly like the cold run it reuses (the
bit-identity gate of ``docs/PLANNER.md``). This module provides that
prediction without looking at the data:

* Lemma 3's concentration half-width ``λ(M)`` and bias allowance
  ``b(α, M)`` are pure functions of the sample size, the population
  size, the per-bound failure probability, and the attribute's support
  size — no counts involved. :class:`CostModel` evaluates them over a
  query's actual :class:`~repro.core.schedule.SampleSchedule` to find
  the first sample size at which the paper's *guaranteed* decision rule
  would fire (filter rule 1: ``width < 2εη``; for top-k a scale proxy
  ``width <= ε·ĥ`` with ``ĥ`` the score's data-independent ceiling),
  and charges the per-row cell cost of the query shape (1 cell/row for
  an entropy candidate, 3 for an MI candidate: one marginal plus a
  two-cell joint).
* :meth:`CostModel.fit_from_trace` optionally calibrates the analytic
  prediction against the retirement sizes a previous run's trace
  recorded (``query_start``/``query_end`` event pairs, the JSONL shape
  :mod:`repro.obs` writes). Calibration is *opt-in* precisely because a
  fitted model depends on history — two sessions with different
  histories would schedule differently, which the default analytic
  model never does.

The predictions are heuristics, not guarantees: the true retirement
size depends on the data (an attribute near a filter threshold retires
by rule 1, one far from it retires earlier by rule 2/3). They only need
to *rank* queries consistently; :func:`repro.core.plan.plan_queries`
orders a batch cheapest-first so later, more expensive queries join the
shared scan at a frontier the cheap ones already paid for.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.bounds import entropy_interval
from repro.core.engine import (
    default_failure_probability,
    validate_failure_probability,
)
from repro.core.schedule import SampleSchedule
from repro.data.column_store import ColumnSource
from repro.exceptions import ParameterError

__all__ = ["CostEstimate", "CostModel"]


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one query over a concrete schedule.

    ``predicted_sample_size`` is the schedule size at which the model
    expects the query to retire; ``predicted_cells`` is the cell cost of
    scanning every candidate (at its per-row rate) up to that size.
    Both are deterministic functions of the query shape and the store's
    *schema* (row count and support sizes), never of its values.
    """

    predicted_sample_size: int
    predicted_cells: int


def _interval_parts(
    support: int, sample_size: int, population: int, per_bound: float
) -> tuple[float, float]:
    """``(λ, b)`` of one entropy bound — data-independent Lemma 3 terms."""
    iv = entropy_interval(0.0, support, sample_size, population, per_bound)
    return iv.half_width, iv.width - 2.0 * iv.half_width


@dataclass(frozen=True)
class CostModel:
    """Deterministic per-query cost predictor for the planner.

    The default instance is purely analytic. ``calibration`` maps a
    ``(kind, score)`` query shape to a multiplicative correction on the
    predicted retirement sample size; :meth:`fit_from_trace` builds one
    from recorded trace events. A calibrated model is still
    deterministic *given its calibration*, but two differently calibrated
    models may order a plan differently — pass the same model to both
    runs (or none) when bit-identical scheduling matters.
    """

    calibration: Mapping[tuple[str, str], float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """``"analytic"`` or ``"fitted"`` — recorded in the plan trace."""
        return "fitted" if self.calibration else "analytic"

    # ------------------------------------------------------------------
    def estimate(
        self,
        store: ColumnSource,
        *,
        kind: str,
        score: str,
        epsilon: float,
        candidates: Sequence[str],
        target: str | None = None,
        threshold: float | None = None,
        failure_probability: float | None = None,
        initial_size: int | None = None,
    ) -> CostEstimate:
        """Predict retirement size and cell cost of one query shape.

        The schedule is built exactly as the executor builds it (same
        ``M0``, same doubling, same per-round failure split), so the
        widths evaluated here are the widths the run will actually see.
        """
        if not candidates:
            raise ParameterError("cost estimate needs at least one candidate")
        if failure_probability is None:
            failure_probability = default_failure_probability(store.num_rows)
        validate_failure_probability(failure_probability)
        mutual = score == "mutual_information"
        names = list(candidates)
        all_names = [target, *names] if mutual and target is not None else names
        num_attributes = len(names) + 1 if mutual else len(names)
        population = store.num_rows
        supports = {
            name: store.support_size(name) for name in all_names if name is not None
        }
        schedule = SampleSchedule.for_query(
            population,
            num_attributes,
            failure_probability,
            max(supports.values()),
            initial_size=initial_size,
        )
        per_bound = schedule.per_round_failure(
            failure_probability,
            len(names),
            bounds_per_attribute=3 if mutual else 1,
        )
        scale = self.calibration.get((kind, score), 1.0)
        target_support = supports.get(target or "", 2)
        predicted_m = 0
        cells = 0
        for name in names:
            retire = self._retirement_size(
                schedule,
                population,
                per_bound,
                kind=kind,
                mutual=mutual,
                support=supports[name],
                target_support=target_support,
                epsilon=epsilon,
                threshold=threshold,
            )
            retire = self._calibrated(retire, scale, schedule, population)
            predicted_m = max(predicted_m, retire)
            cells += (3 if mutual else 1) * retire
        if mutual:
            # The target's marginal is scanned to the query's final size.
            cells += predicted_m
        return CostEstimate(
            predicted_sample_size=predicted_m, predicted_cells=cells
        )

    def _retirement_size(
        self,
        schedule: SampleSchedule,
        population: int,
        per_bound: float,
        *,
        kind: str,
        mutual: bool,
        support: int,
        target_support: int,
        epsilon: float,
        threshold: float | None,
    ) -> int:
        """First schedule size where the guaranteed decision width holds."""
        if kind == "filter" and threshold is not None:
            goal = 2.0 * epsilon * threshold
        elif mutual:
            # MI is bounded by min(H(α_t), H(α)) <= log2 of either support.
            ceiling = math.log2(max(2, min(support, target_support)))
            goal = epsilon * ceiling
        else:
            goal = epsilon * math.log2(max(2, support))
        for size in schedule.sizes:
            if size >= population:
                break
            lam, bias = _interval_parts(support, size, population, per_bound)
            if mutual:
                _, bias_t = _interval_parts(
                    target_support, size, population, per_bound
                )
                _, bias_j = _interval_parts(
                    support * target_support, size, population, per_bound
                )
                width = 6.0 * lam + bias_t + bias + bias_j
            else:
                width = 2.0 * lam + bias
            if width < goal:
                return size
        return population

    @staticmethod
    def _calibrated(
        retire: int, scale: float, schedule: SampleSchedule, population: int
    ) -> int:
        if scale == 1.0:
            return retire
        corrected = retire * scale
        # Snap to the schedule so calibrated predictions stay comparable
        # to the sizes the run can actually stop at.
        for size in schedule.sizes:
            if size >= corrected:
                return size
        return population

    # ------------------------------------------------------------------
    @classmethod
    def fit_from_trace(
        cls,
        store: ColumnSource,
        events: Iterable[Mapping[str, object]],
        *,
        failure_probability: float | None = None,
    ) -> "CostModel":
        """Calibrate against the retirement sizes a trace recorded.

        ``events`` is the parsed JSONL stream :mod:`repro.obs` writes
        (dicts with an ``"event"`` key). Each ``query_start`` is paired
        with the next ``query_end``; the calibration factor for a
        ``(kind, score)`` shape is the median ratio of the observed
        final sample size to this model's analytic prediction for the
        same query. Events from other stores produce garbage factors —
        calibrate only with traces of the same dataset.
        """
        base = cls()
        ratios: dict[tuple[str, str], list[float]] = {}
        pending: Mapping[str, object] | None = None
        for record in events:
            event = record.get("event")
            if event == "query_start":
                pending = record
            elif event == "query_end" and pending is not None:
                start, pending = pending, None
                kind = str(start.get("kind"))
                score = str(start.get("score"))
                candidates = [str(a) for a in start.get("candidates", ())]
                if not candidates or not all(a in store for a in candidates):
                    continue
                target = start.get("target")
                epsilon = float(start.get("epsilon", 0.0))
                if not 0.0 < epsilon < 1.0:
                    continue
                threshold = start.get("threshold")
                schedule = start.get("schedule")
                initial = None
                if isinstance(schedule, Sequence) and schedule:
                    initial = int(schedule[0])
                predicted = base.estimate(
                    store,
                    kind=kind,
                    score=score,
                    epsilon=epsilon,
                    candidates=candidates,
                    target=None if target is None else str(target),
                    threshold=None if threshold is None else float(threshold),
                    failure_probability=failure_probability,
                    initial_size=initial,
                ).predicted_sample_size
                observed = int(record.get("final_sample_size", 0))  # type: ignore[call-overload]
                if predicted > 0 and observed > 0:
                    ratios.setdefault((kind, score), []).append(
                        observed / predicted
                    )
        calibration: dict[tuple[str, str], float] = {}
        for shape, values in ratios.items():
            ordered = sorted(values)
            mid = len(ordered) // 2
            if len(ordered) % 2:
                calibration[shape] = ordered[mid]
            else:
                calibration[shape] = (ordered[mid - 1] + ordered[mid]) / 2.0
        return cls(calibration=calibration)
