"""Conditional mutual information and three-way entropy (exact).

Feature-selection criteria beyond mRMR — notably Fleuret's CMIM (paper
ref [13]) — score candidates by *conditional* mutual information
``I(X; Y | Z) = H(X, Z) + H(Y, Z) − H(Z) − H(X, Y, Z)``, which needs
triple-wise counts. The SWOPE bounds do not extend to CMI (the paper
bounds pairwise joint entropy only, and the pair-support trick
``u_t · u_α`` becomes hopeless for triples), so this module computes CMI
*exactly* by streaming triple codes through ``bincount``/hash counting —
it is the exact substrate the CMIM application builds on, and a natural
extension point for future sampled variants.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimators import entropy_from_counts
from repro.data.column_store import ColumnStore
from repro.exceptions import ParameterError, SchemaError

__all__ = [
    "conditional_mutual_information",
    "joint_entropy_of",
]

#: Largest combined support for which a dense count array is allocated.
_DENSE_LIMIT = 4_000_000


def _codes(store: ColumnStore, attributes: list[str]) -> tuple[np.ndarray, int]:
    """Mixed-radix code of each record over ``attributes``; plus the radix."""
    total = 1
    for name in attributes:
        total *= store.support_size(name)
    codes = np.zeros(store.num_rows, dtype=np.int64)
    for name in attributes:
        # Exact CMI is a deliberate full scan (no sampled variant exists
        # for triples); whole-column reads are its substrate.
        codes = codes * store.support_size(name) + store.column(  # noqa: SWP018
            name
        ).astype(np.int64)
    return codes, total


def _entropy_of_codes(codes: np.ndarray, radix: int) -> float:
    """Empirical entropy of an integer code column."""
    if codes.size == 0:
        return 0.0
    if radix <= _DENSE_LIMIT:
        # Histogram of derived composite codes (conditioning groups),
        # not a sample prefix — outside the backend seam.
        counts = np.bincount(codes, minlength=0)  # noqa: SWP009
        return entropy_from_counts(counts[counts > 0], total=codes.size)
    _, counts = np.unique(codes, return_counts=True)
    return entropy_from_counts(counts, total=codes.size)


def joint_entropy_of(store: ColumnStore, attributes: list[str]) -> float:
    """Exact empirical joint entropy (bits) of any set of attributes.

    Generalises the pairwise joint entropy of Definition 1 to arbitrary
    arity by mixed-radix coding. Duplicated attribute names are rejected
    (they would silently not change the value but indicate a caller bug).
    """
    if not attributes:
        raise ParameterError("need at least one attribute")
    if len(set(attributes)) != len(attributes):
        raise ParameterError(f"duplicate attributes in {attributes}")
    unknown = [a for a in attributes if a not in store]
    if unknown:
        raise SchemaError(f"unknown attributes: {unknown}")
    codes, radix = _codes(store, list(attributes))
    return _entropy_of_codes(codes, radix)


def conditional_mutual_information(
    store: ColumnStore, first: str, second: str, given: str
) -> float:
    """Exact ``I(first; second | given)`` in bits.

    Computed by the four-entropy identity
    ``I(X;Y|Z) = H(X,Z) + H(Y,Z) − H(Z) − H(X,Y,Z)``; clamped at 0
    against floating-point residue (CMI is non-negative).
    """
    names = {first, second, given}
    if len(names) != 3:
        raise ParameterError(
            f"first/second/given must be three distinct attributes, got"
            f" ({first!r}, {second!r}, {given!r})"
        )
    h_xz = joint_entropy_of(store, [first, given])
    h_yz = joint_entropy_of(store, [second, given])
    h_z = joint_entropy_of(store, [given])
    h_xyz = joint_entropy_of(store, [first, second, given])
    return max(0.0, h_xz + h_yz - h_z - h_xyz)
