"""SWOPE approximate filtering query on empirical entropy (Algorithm 2).

Given a threshold ``η``, return a set ``X`` of attributes such that, with
probability at least ``1 - p_f`` (Definition 6):

* every attribute with ``H(α) >= (1 + ε)η`` is in ``X``;
* no attribute with ``H(α) < (1 - ε)η`` is in ``X``;
* attributes in the ``[(1 - ε)η, (1 + ε)η)`` band may go either way.

Expected running time
``O(min{hN, h log(h log N / p_f) log² N / (ε² η²)})`` (Theorem 4) —
dependent on the user's threshold rather than on the data-dependent
smallest gap ``δ`` that dominates the exact EntropyFilter baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

import numpy as np

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import TraceTarget
from repro.core.plan import QuerySpec, run_query_spec
from repro.core.results import FilterResult
from repro.core.schedule import SampleSchedule
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.data.sampling import PrefixSampler
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import CachePartition, PlanCache

__all__ = ["swope_filter_entropy"]


def swope_filter_entropy(
    store: ColumnSource,
    threshold: float,
    *,
    epsilon: float = 0.05,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    attributes: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    backend: str | CountingBackend | None = None,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    cache: "PlanCache | CachePartition | None" = None,
) -> FilterResult:
    """Answer an approximate entropy filtering query with SWOPE (Algorithm 2).

    Parameters
    ----------
    store:
        The dataset to query.
    threshold:
        The filter threshold ``η`` in bits.
    epsilon:
        Error parameter of Definition 6. The paper's evaluation default
        for entropy filtering queries is ``0.05``.
    failure_probability:
        ``p_f``; defaults to the paper's ``1/N``.
    seed:
        Seed or generator controlling the random shuffle.
    attributes:
        Restrict the query to these attributes (default: all).
    schedule:
        Override the sample-size schedule.
    sampler:
        Provide a pre-built sampler (sequential sampling, shared counters).
    backend:
        Counting backend for a freshly built sampler, as in
        :func:`repro.core.topk.swope_top_k_entropy` (mutually exclusive
        with ``sampler=``).
    budget, cancellation, strict:
        Resilience controls as in
        :func:`repro.core.topk.swope_top_k_entropy`; a truncated run
        resolves still-undecided attributes by interval midpoint and
        lists them in ``result.guarantee.undecided``.
    trace, metrics:
        Observability hooks as in
        :func:`repro.core.topk.swope_top_k_entropy` — a
        :class:`~repro.obs.sinks.TraceSink` receives the structured
        event stream, a :class:`~repro.obs.metrics.MetricsRegistry`
        aggregates counters and latency histograms.
    cache:
        Plan cache (or pre-bound partition) as in
        :func:`repro.core.topk.swope_top_k_entropy` — note semantic
        reuse here: a stored answer at threshold ``η`` can serve any
        ``η′ ≥ η`` whose decisions its history proves.

    Returns
    -------
    FilterResult
        The included attributes ordered by decreasing estimate, estimates
        for every examined attribute, run statistics, and the
        :class:`~repro.core.results.GuaranteeStatus` of the run.
    """
    spec = QuerySpec(
        kind="filter",
        score="entropy",
        threshold=threshold,
        epsilon=epsilon,
        attributes=tuple(attributes) if attributes is not None else None,
    )
    return cast(
        FilterResult,
        run_query_spec(
            store, spec,
            failure_probability=failure_probability, seed=seed,
            schedule=schedule, sampler=sampler, backend=backend,
            trace=trace, budget=budget, cancellation=cancellation,
            strict=strict, metrics=metrics, cache=cache,
        ),
    )
