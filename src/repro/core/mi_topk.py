"""SWOPE approximate top-k query on empirical mutual information (Alg. 3).

Given a target attribute ``α_t``, return the ``k`` candidate attributes
with (approximately) the largest ``I(α_t, α)`` — the core primitive of
entropy-based feature selection. The guarantees and machinery mirror the
entropy top-k query (Definition 5, Theorem 5) with three differences:

* each candidate consumes three Lemma 3 bounds per iteration (target
  entropy, candidate entropy, joint entropy), so the per-bound failure
  budget is ``p_f / (3 · i_max · (h - 1))``;
* the interval width is ``6λ + b'(α)`` with
  ``b'(α) = b(α_t) + b(α) + b(α_t, α)``;
* the unknown pair support ``u_{t,α}`` is upper-bounded by ``u_t · u_α``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, cast

import numpy as np

from repro.core.budget import CancellationToken, QueryBudget
from repro.core.engine import TraceTarget
from repro.core.plan import QuerySpec, run_query_spec
from repro.core.results import TopKResult
from repro.core.schedule import SampleSchedule
from repro.data.backends import CountingBackend
from repro.data.column_store import ColumnSource
from repro.data.sampling import PrefixSampler
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.cache sits above)
    from repro.cache import CachePartition, PlanCache

__all__ = ["swope_top_k_mutual_information"]


def swope_top_k_mutual_information(
    store: ColumnSource,
    target: str,
    k: int,
    *,
    epsilon: float = 0.5,
    failure_probability: float | None = None,
    seed: int | np.random.Generator | None = None,
    candidates: list[str] | None = None,
    schedule: SampleSchedule | None = None,
    sampler: PrefixSampler | None = None,
    backend: str | CountingBackend | None = None,
    prune: bool = True,
    trace: TraceTarget | None = None,
    budget: QueryBudget | None = None,
    cancellation: CancellationToken | None = None,
    strict: bool = False,
    metrics: MetricsRegistry | None = None,
    cache: "PlanCache | CachePartition | None" = None,
) -> TopKResult:
    """Answer an approximate MI top-k query with SWOPE (Algorithm 3).

    Parameters
    ----------
    store:
        The dataset to query.
    target:
        The target attribute ``α_t`` (excluded from the candidates).
    k:
        Number of candidates to return.
    epsilon:
        Error parameter of Definition 5. The paper's evaluation default
        for MI queries is ``0.5``.
    failure_probability:
        ``p_f``; defaults to the paper's ``1/N``.
    seed:
        Seed or generator controlling the random shuffle.
    candidates:
        Restrict the candidate set (default: all attributes except
        ``target``).
    schedule, sampler, backend, prune, budget, cancellation, strict:
        As in :func:`repro.core.topk.swope_top_k_entropy`.
    trace, metrics, cache:
        Observability hooks and the plan cache, as in
        :func:`repro.core.topk.swope_top_k_entropy`.

    Returns
    -------
    TopKResult
        ``result.target`` records the target attribute.
    """
    spec = QuerySpec(
        kind="top_k",
        score="mutual_information",
        k=k,
        epsilon=epsilon,
        target=target,
        attributes=tuple(candidates) if candidates is not None else None,
        prune=prune,
    )
    return cast(
        TopKResult,
        run_query_spec(
            store, spec,
            failure_probability=failure_probability, seed=seed,
            schedule=schedule, sampler=sampler, backend=backend,
            trace=trace, budget=budget, cancellation=cancellation,
            strict=strict, metrics=metrics, cache=cache,
        ),
    )
